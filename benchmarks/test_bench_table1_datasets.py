"""Table 1 benchmark: dataset generation and size verification."""

from repro.datasets import load
from repro.experiments import table1
from repro.graph import compute_statistics


def test_table1_generate_wwc2019(benchmark):
    dataset = benchmark(lambda: load("wwc2019", cache=False))
    stats = compute_statistics(dataset.graph)
    assert stats.as_table1_row() == ("WWC2019", 2468, 14799, 5, 9)


def test_table1_generate_cybersecurity(benchmark):
    dataset = benchmark(lambda: load("cybersecurity", cache=False))
    stats = compute_statistics(dataset.graph)
    assert stats.as_table1_row() == ("Cybersecurity", 953, 4838, 7, 16)


def test_table1_generate_twitter(benchmark, run_once):
    dataset = run_once(benchmark, load, "twitter", cache=False)
    stats = compute_statistics(dataset.graph)
    assert stats.as_table1_row() == ("Twitter", 43325, 56493, 6, 8)


def test_table1_print(capsys):
    """Regenerate and print the paper's Table 1."""
    table = table1.build()
    assert table1.verify()
    with capsys.disabled():
        print("\n\n" + table.render() + "\n")
