"""Shared benchmark fixtures.

Contexts (dataset + encoding + window set + vector index) are built once
per session so that each benchmark measures the pipeline stage it names,
not dataset generation.
"""

from __future__ import annotations

import pytest

from repro.datasets import load
from repro.mining import PipelineContext, RAGPipeline, SlidingWindowPipeline


@pytest.fixture(scope="session")
def contexts():
    return {
        name: PipelineContext.build(load(name))
        for name in ("wwc2019", "cybersecurity", "twitter")
    }


@pytest.fixture(scope="session")
def swa_pipelines(contexts):
    pipelines = {
        name: SlidingWindowPipeline(context)
        for name, context in contexts.items()
    }
    for pipeline in pipelines.values():
        pipeline.warm()  # pre-chunk so benches measure mining
    return pipelines


@pytest.fixture(scope="session")
def rag_pipelines(contexts):
    pipelines = {
        name: RAGPipeline(context) for name, context in contexts.items()
    }
    for pipeline in pipelines.values():
        pipeline.warm()  # pre-embed so benches measure mining
    return pipelines


@pytest.fixture()
def run_once():
    """Benchmark a deterministic, expensive call with a single round."""

    def runner(benchmark, func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return runner
