"""§4.5 fragmentation benchmark: broken patterns per dataset."""

from repro.experiments import figures
from repro.mining.runner import ExperimentRunner


def test_broken_patterns(benchmark, run_once, capsys):
    runner = ExperimentRunner(base_seed=0)
    table = run_once(benchmark, figures.broken_patterns, runner)
    with capsys.disabled():
        print("\n\n" + table.render() + "\n")
    # paper: 6 / 11 / 6 — small relative to the window count
    for _dataset, broken, windows in (
        (row[0], int(row[1]), int(row[2])) for row in table.rows
    ):
        assert 0 <= broken <= 25
        assert broken < windows
