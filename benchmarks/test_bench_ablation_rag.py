"""Ablation: RAG retrieval depth (top-k) and diversity.

The paper attributes RAG's weakness to incomplete/irrelevant retrieval;
this sweep quantifies how much context the retriever must return before
rule counts approach the sliding-window pipeline's.
"""

import pytest

from repro.mining import RAGPipeline, SlidingWindowPipeline

TOP_KS = (4, 16, 64)


@pytest.mark.parametrize("top_k", TOP_KS)
def test_ablation_rag_topk(benchmark, run_once, contexts, top_k, capsys):
    pipeline = RAGPipeline(contexts["cybersecurity"], top_k=top_k)
    run = run_once(benchmark, pipeline.mine, "llama3", "zero_shot")
    with capsys.disabled():
        print(
            f"\ntop_k={top_k}: rules={run.rule_count} "
            f"chunks={run.retrieved_chunks}/{run.total_chunks} "
            f"conf={run.aggregate_metrics().avg_confidence:.1f}"
        )
    assert run.retrieved_chunks == min(top_k, run.total_chunks)


def test_ablation_more_context_not_fewer_rules(contexts):
    shallow = RAGPipeline(contexts["cybersecurity"], top_k=4).mine(
        "llama3", "zero_shot"
    )
    deep = RAGPipeline(contexts["cybersecurity"], top_k=64).mine(
        "llama3", "zero_shot"
    )
    assert deep.rule_count >= shallow.rule_count


def test_ablation_rag_still_cheaper_even_at_depth(contexts):
    deep = RAGPipeline(contexts["cybersecurity"], top_k=64).mine(
        "llama3", "zero_shot"
    )
    swa = SlidingWindowPipeline(contexts["cybersecurity"]).mine(
        "llama3", "zero_shot"
    )
    assert deep.mining_seconds < swa.mining_seconds
