"""Table 2 benchmark: the WWC2019 metric grid.

Each benchmark regenerates one cell (model x method, zero-shot); the
printing test assembles the full table with both prompt modes.
"""

import pytest

from repro.experiments import metric_tables
from repro.mining.runner import ExperimentRunner

DATASET = "wwc2019"


@pytest.mark.parametrize("model", ["llama3", "mixtral"])
def test_table2_swa_cell(benchmark, run_once, swa_pipelines, model):
    run = run_once(
        benchmark, swa_pipelines[DATASET].mine, model, "zero_shot"
    )
    assert 4 <= run.rule_count <= 12
    metrics = run.aggregate_metrics()
    assert metrics.avg_support > 100       # WWC supports are in the 100s+
    assert metrics.avg_confidence > 50


@pytest.mark.parametrize("model", ["llama3", "mixtral"])
def test_table2_rag_cell(benchmark, swa_pipelines, rag_pipelines, model):
    run = benchmark.pedantic(
        rag_pipelines[DATASET].mine, args=(model, "zero_shot"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert run.rule_count >= 1
    swa = swa_pipelines[DATASET].mine(model, "zero_shot")
    assert run.mining_seconds < swa.mining_seconds / 20


def test_table2_print(capsys):
    runner = ExperimentRunner(base_seed=0)
    table = metric_tables.build(runner, DATASET)
    with capsys.disabled():
        print("\n\n" + table.render() + "\n")
