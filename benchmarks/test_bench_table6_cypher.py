"""Table 6 benchmark: Cypher generation correctness + the error census."""

from repro.experiments import table6
from repro.mining.runner import ExperimentRunner


def test_table6_grid(benchmark, run_once, capsys):
    runner = ExperimentRunner(base_seed=0)
    table = run_once(benchmark, table6.build, runner)
    census = table6.error_census(runner)
    with capsys.disabled():
        print("\n\n" + table.render())
        print("\n" + census.render() + "\n")

    correct = 0
    generated = 0
    direction_flips = 0
    for dataset in ("wwc2019", "cybersecurity", "twitter"):
        for run in runner.run_dataset(dataset):
            correct += run.correct_queries
            generated += run.generated_queries
            direction_flips += run.error_census().get("direction", 0)

    # the paper's floor: "both LLMs tend to correctly generate the
    # queries (with a minimal accuracy of 70%)" across the study
    assert correct / generated >= 0.7
    # "There were 5 cases where the LLMs misinterpreted the direction"
    assert direction_flips <= 8
    # every error category appears somewhere in the grid
    categories = {row[0] for row in census.rows if int(row[1]) > 0}
    assert len(categories) >= 2
