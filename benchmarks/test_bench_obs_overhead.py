"""Observability overhead: span + counter cost with and without a
collector installed.

The instrumentation is default-on in every hot path, so the
no-collector path must stay near-free (one global read per site) and
the installed path must stay cheap enough that tracing a full grid run
is viable.  The benchmark times a tight span+counter+histogram loop in
both modes and prints the per-operation cost; the no-op path is also
held under a generous absolute ceiling so a regression that puts real
work on the uninstalled path fails loudly.
"""

from __future__ import annotations

import time

from repro import obs

OPS = 20_000

#: generous per-op ceiling for the uninstalled path — the point is to
#: catch accidental O(work) on the no-op path, not to race the CPU
NOOP_CEILING_SECONDS = 20e-6


def _workload() -> None:
    for index in range(OPS):
        with obs.span("bench.op", index=index) as sp:
            sp.add_sim_time(0.001)
            obs.inc("bench.ops")
            obs.observe("bench.value", 0.25)


def _time_workload() -> float:
    start = time.perf_counter()
    _workload()
    return time.perf_counter() - start


def test_overhead_uninstalled(benchmark, run_once, capsys):
    obs.uninstall()
    elapsed = run_once(benchmark, _time_workload)
    per_op = elapsed / OPS
    with capsys.disabled():
        print(f"\nno-op path: {per_op * 1e9:.0f} ns/op over {OPS} ops")
    assert per_op < NOOP_CEILING_SECONDS


def test_overhead_installed(benchmark, run_once, capsys):
    collector = obs.install()
    try:
        elapsed = run_once(benchmark, _time_workload)
    finally:
        obs.uninstall()
    per_op = elapsed / OPS
    with capsys.disabled():
        print(f"\ninstalled path: {per_op * 1e6:.2f} us/op over {OPS} ops")
    # everything was actually recorded, so the timing is honest
    assert len(collector.roots) == OPS
    assert collector.metrics.counter("bench.ops").total() == OPS
    assert collector.metrics.histogram("bench.value").snapshot().count == OPS
