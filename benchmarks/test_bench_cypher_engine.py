"""Micro-benchmarks for the Cypher substrate itself.

These quantify the engine the whole evaluation stands on: parsing,
index-backed matching, multi-hop joins and grouped aggregation on the
WWC2019 graph.
"""

import pytest

from repro.cypher import execute, parse
from repro.datasets import load


@pytest.fixture(scope="module")
def graph():
    return load("wwc2019").graph


def test_parse_throughput(benchmark):
    query = (
        "MATCH (p:Person)-[g:SCORED_GOAL]->(m:Match) "
        "WHERE g.minute > 10 AND m.stage IN ['Group', 'Final'] "
        "WITH m.id AS match_id, count(*) AS goals WHERE goals > 1 "
        "RETURN match_id, goals ORDER BY goals DESC LIMIT 5"
    )
    benchmark(parse, query)


def test_label_scan_count(benchmark, graph):
    result = benchmark(
        execute, graph, "MATCH (p:Person) RETURN count(*) AS c"
    )
    assert result.scalar() == 2367


def test_one_hop_match(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person)-[:SCORED_GOAL]->(m:Match) RETURN count(*) AS c",
    )
    assert result.scalar() == 148


def test_two_hop_join(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person)-[:IN_SQUAD]->(s:Squad)-[:FOR]->(t:Tournament) "
        "RETURN count(*) AS c",
    )
    assert result.scalar() > 0


def test_grouped_aggregation(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person)-[:PLAYED_IN]->(m:Match) "
        "WITH m.id AS match_id, count(*) AS players "
        "RETURN max(players) AS biggest",
    )
    assert result.scalar() > 0


def test_uniqueness_check_query(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person) WHERE p.id IS NOT NULL "
        "WITH p.id AS value, count(*) AS occurrences "
        "WHERE occurrences = 1 RETURN count(*) AS support",
    )
    assert result.scalar() == 2367


def test_pattern_predicate_filter(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (s:Squad) WHERE NOT (s)-[:FOR]->(:Tournament) "
        "RETURN count(*) AS orphans",
    )
    assert result.scalar() == 1  # the injected orphan squad
