"""Micro-benchmarks for the Cypher substrate itself.

These quantify the engine the whole evaluation stands on: parsing,
index-backed matching, multi-hop joins and grouped aggregation on the
WWC2019 graph.
"""

import pytest

from repro.cypher import execute, parse
from repro.datasets import load


@pytest.fixture(scope="module")
def graph():
    return load("wwc2019").graph


def test_parse_throughput(benchmark):
    query = (
        "MATCH (p:Person)-[g:SCORED_GOAL]->(m:Match) "
        "WHERE g.minute > 10 AND m.stage IN ['Group', 'Final'] "
        "WITH m.id AS match_id, count(*) AS goals WHERE goals > 1 "
        "RETURN match_id, goals ORDER BY goals DESC LIMIT 5"
    )
    benchmark(parse, query)


def test_label_scan_count(benchmark, graph):
    result = benchmark(
        execute, graph, "MATCH (p:Person) RETURN count(*) AS c"
    )
    assert result.scalar() == 2367


def test_one_hop_match(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person)-[:SCORED_GOAL]->(m:Match) RETURN count(*) AS c",
    )
    assert result.scalar() == 148


def test_two_hop_join(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person)-[:IN_SQUAD]->(s:Squad)-[:FOR]->(t:Tournament) "
        "RETURN count(*) AS c",
    )
    assert result.scalar() > 0


def test_grouped_aggregation(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person)-[:PLAYED_IN]->(m:Match) "
        "WITH m.id AS match_id, count(*) AS players "
        "RETURN max(players) AS biggest",
    )
    assert result.scalar() > 0


def test_uniqueness_check_query(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (p:Person) WHERE p.id IS NOT NULL "
        "WITH p.id AS value, count(*) AS occurrences "
        "WHERE occurrences = 1 RETURN count(*) AS support",
    )
    assert result.scalar() == 2367


def test_pattern_predicate_filter(benchmark, graph):
    result = benchmark(
        execute, graph,
        "MATCH (s:Squad) WHERE NOT (s)-[:FOR]->(:Tournament) "
        "RETURN count(*) AS orphans",
    )
    assert result.scalar() == 1  # the injected orphan squad


# ----------------------------------------------------------------------
# cost-based planner A/B
# ----------------------------------------------------------------------
AB_QUERY = (
    "MATCH (p:Person)-[:SCORED_GOAL]->(m:Match) "
    "WHERE p.id = 7 RETURN count(*) AS c"
)


def _run(graph, text, planner):
    from repro.cypher import Executor

    return Executor(graph, planner=planner).run(parse(text))


def _expansions(graph, text, planner):
    """(rows, matcher.seeds, matcher.expansions) for one execution."""
    from repro import obs
    from repro.cypher import Executor, clear_plan_caches

    clear_plan_caches()
    collector = obs.install()
    try:
        result = Executor(graph, planner=planner).run(parse(text))
        seeds = collector.metrics.counter("matcher.seeds").total()
        expansions = collector.metrics.counter("matcher.expansions").total()
    finally:
        obs.uninstall()
    return result, seeds, expansions


def test_planner_ab_selective_filter_planned(benchmark, graph):
    from repro.cypher import default_planner

    result = benchmark(_run, graph, AB_QUERY, default_planner())
    assert result.scalar() is not None


def test_planner_ab_selective_filter_unplanned(benchmark, graph):
    result = benchmark(_run, graph, AB_QUERY, None)
    assert result.scalar() is not None


def test_planner_ab_reorder_join(benchmark, graph):
    # written worst-first: the planner must run the indexed Squad
    # lookup before the Person scan
    query = (
        "MATCH (p:Person), (s:Squad {id: 3}) "
        "WHERE p.id = s.id RETURN count(*) AS c"
    )
    from repro.cypher import default_planner

    result = benchmark(_run, graph, query, default_planner())
    assert result.scalar() is not None


def test_planner_halves_expansions(graph):
    """The ISSUE acceptance bar: >=2x fewer node expansions with the
    planner on, measured through the obs counters."""
    from repro.cypher import default_planner

    on, on_seeds, on_exp = _expansions(graph, AB_QUERY, default_planner())
    off, off_seeds, off_exp = _expansions(graph, AB_QUERY, None)
    assert on.scalar() == off.scalar()
    assert off_seeds >= 2 * max(on_seeds, 1)
    assert off_exp >= 2 * max(on_exp, 1)


def test_plan_cache_amortizes_planning(benchmark, graph):
    from repro.cypher import clear_plan_caches, default_planner

    clear_plan_caches()
    planner = default_planner()
    _run(graph, AB_QUERY, planner)  # warm the plan cache

    result = benchmark(_run, graph, AB_QUERY, planner)
    assert result.scalar() is not None


JOIN3_QUERY = (
    "MATCH (p:Person)-[:IN_SQUAD]->(s:Squad), "
    "(s)-[:FOR]->(t:Tournament), "
    "(p)-[:SCORED_GOAL]->(m:Match) "
    "WHERE p.id = 482 RETURN count(*) AS c"
)


def test_planner_ab_three_clause_join_planned(benchmark, graph):
    from repro.cypher import default_planner

    result = benchmark(_run, graph, JOIN3_QUERY, default_planner())
    assert result.scalar() is not None


def test_planner_ab_three_clause_join_unplanned(benchmark, graph):
    result = benchmark(_run, graph, JOIN3_QUERY, None)
    assert result.scalar() is not None


def test_planner_halves_expansions_three_clause_join(graph):
    """The acceptance workload: a high-selectivity property predicate
    over a 3-pattern join must cut matcher expansions >=2x."""
    from repro.cypher import default_planner

    on, on_seeds, on_exp = _expansions(graph, JOIN3_QUERY, default_planner())
    off, off_seeds, off_exp = _expansions(graph, JOIN3_QUERY, None)
    assert on.scalar() == off.scalar()
    assert off_seeds >= 2 * max(on_seeds, 1)
    assert off_exp >= 2 * max(on_exp, 1)


# ----------------------------------------------------------------------
# columnar CSR matcher A/B
# ----------------------------------------------------------------------
def _visits(graph, text, columnar):
    """(rows, matcher.visits, csr frontier expansions) for one run."""
    from repro import obs
    from repro.cypher import Executor, clear_plan_caches

    clear_plan_caches()
    collector = obs.install()
    try:
        result = Executor(graph, columnar=columnar).run(parse(text))
        visits = collector.metrics.counter("matcher.visits").total()
        frontiers = collector.metrics.counter(
            "matcher.csr.frontier_expansions"
        ).total()
    finally:
        obs.uninstall()
    return result, visits, frontiers


def _run_columnar(graph, text, columnar):
    from repro.cypher import Executor

    return Executor(graph, columnar=columnar).run(parse(text))


def test_columnar_ab_selective_filter_on(benchmark, graph):
    graph.columnar()  # compile outside the timed region
    result = benchmark(_run_columnar, graph, AB_QUERY, True)
    assert result.scalar() is not None


def test_columnar_ab_selective_filter_off(benchmark, graph):
    result = benchmark(_run_columnar, graph, AB_QUERY, False)
    assert result.scalar() is not None


def test_columnar_ab_three_clause_join_on(benchmark, graph):
    graph.columnar()
    result = benchmark(_run_columnar, graph, JOIN3_QUERY, True)
    assert result.scalar() is not None


def test_columnar_ab_three_clause_join_off(benchmark, graph):
    result = benchmark(_run_columnar, graph, JOIN3_QUERY, False)
    assert result.scalar() is not None


def test_columnar_cuts_candidate_visits(graph):
    """The ISSUE acceptance bar: the CSR frontier touches >=3x fewer
    Python-level adjacency candidates than the legacy object walk on
    the selective-filter workload (typed slices skip non-matching
    edge types entirely instead of filtering row by row)."""
    on, on_visits, on_frontiers = _visits(graph, AB_QUERY, True)
    off, off_visits, off_frontiers = _visits(graph, AB_QUERY, False)
    assert on.scalar() == off.scalar()
    assert on_frontiers > 0          # the CSR path actually ran
    assert off_frontiers == 0        # and the legacy path did not
    assert off_visits >= 3 * max(on_visits, 1)


def test_columnar_cuts_candidate_visits_three_clause_join(graph):
    """Same bar on the 3-pattern-join workload."""
    on, on_visits, on_frontiers = _visits(graph, JOIN3_QUERY, True)
    off, off_visits, off_frontiers = _visits(graph, JOIN3_QUERY, False)
    assert on.scalar() == off.scalar()
    assert on_frontiers > 0
    assert off_frontiers == 0
    assert off_visits >= 3 * max(on_visits, 1)
