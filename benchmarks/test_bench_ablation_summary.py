"""Ablation: graph-summarization mining (§5's second future-work item).

Compares the three context strategies — full graph via windows, top-k
retrieval, stratified summary — on cost and rule yield, quantifying the
"prompt a single LLM with the most relevant subgraphs" idea.
"""

from repro.mining import RAGPipeline, SlidingWindowPipeline, SummaryPipeline


def test_ablation_context_strategies(benchmark, run_once, contexts, capsys):
    context = contexts["wwc2019"]

    def run_all():
        return {
            "swa": SlidingWindowPipeline(context).mine(
                "llama3", "zero_shot"
            ),
            "rag": RAGPipeline(context).mine("llama3", "zero_shot"),
            "summary": SummaryPipeline(context).mine(
                "llama3", "zero_shot"
            ),
        }

    runs = run_once(benchmark, run_all)
    with capsys.disabled():
        for name, run in runs.items():
            metrics = run.aggregate_metrics()
            print(
                f"\n{name:8s}: rules={run.rule_count:2d} "
                f"simulated={run.mining_seconds:7.1f}s "
                f"cov={metrics.avg_coverage:5.1f} "
                f"conf={metrics.avg_confidence:5.1f}"
            )

    # cost ordering: summary and RAG are single calls, SWA is per-window
    assert runs["summary"].mining_seconds < runs["swa"].mining_seconds / 5
    assert runs["rag"].mining_seconds < runs["swa"].mining_seconds / 5
    # yield ordering: stratified summary sees every label, so it should
    # not fall behind similarity-driven retrieval
    assert runs["summary"].rule_count >= runs["rag"].rule_count - 1
