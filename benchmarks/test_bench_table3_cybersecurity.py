"""Table 3 benchmark: the Cybersecurity metric grid."""

import pytest

from repro.experiments import metric_tables
from repro.mining.runner import ExperimentRunner

DATASET = "cybersecurity"


@pytest.mark.parametrize("model", ["llama3", "mixtral"])
@pytest.mark.parametrize("prompt_mode", ["zero_shot", "few_shot"])
def test_table3_swa_cell(
    benchmark, run_once, swa_pipelines, model, prompt_mode
):
    run = run_once(
        benchmark, swa_pipelines[DATASET].mine, model, prompt_mode
    )
    assert 4 <= run.rule_count <= 12
    assert run.aggregate_metrics().avg_confidence > 50


@pytest.mark.parametrize("model", ["llama3", "mixtral"])
def test_table3_rag_cell(benchmark, run_once, rag_pipelines, model):
    run = run_once(
        benchmark, rag_pipelines[DATASET].mine, model, "zero_shot"
    )
    assert run.rule_count >= 1
    assert run.mining_seconds < 10


def test_table3_print(capsys):
    runner = ExperimentRunner(base_seed=0)
    table = metric_tables.build(runner, DATASET)
    with capsys.disabled():
        print("\n\n" + table.render() + "\n")
