"""Ablation: window size and overlap (the paper fixes 8000/500).

Sweeps the sliding-window parameters on the Cybersecurity dataset and
reports the trade-off DESIGN.md calls out: smaller windows mean more
LLM calls (slower) and more fragmentation, without better rules.
"""

import pytest

from repro.mining import SlidingWindowPipeline

WINDOW_SIZES = (2000, 4000, 8000)


@pytest.mark.parametrize("window_size", WINDOW_SIZES)
def test_ablation_window_size(
    benchmark, run_once, contexts, window_size, capsys
):
    pipeline = SlidingWindowPipeline(
        contexts["cybersecurity"], window_size=window_size, overlap=500
        if window_size > 500 else 100,
    )
    run = run_once(benchmark, pipeline.mine, "llama3", "zero_shot")
    with capsys.disabled():
        print(
            f"\nwindow={window_size}: windows={run.window_count} "
            f"rules={run.rule_count} simulated={run.mining_seconds:.0f}s "
            f"broken={run.broken_patterns}"
        )
    assert run.rule_count >= 4


def test_ablation_smaller_windows_cost_more(contexts):
    small = SlidingWindowPipeline(
        contexts["cybersecurity"], window_size=2000, overlap=500
    ).mine("llama3", "zero_shot")
    large = SlidingWindowPipeline(
        contexts["cybersecurity"], window_size=8000, overlap=500
    ).mine("llama3", "zero_shot")
    assert small.window_count > large.window_count
    assert small.mining_seconds > large.mining_seconds


def test_ablation_overlap_controls_fragmentation(contexts):
    tight = SlidingWindowPipeline(
        contexts["cybersecurity"], window_size=8000, overlap=50
    )
    loose = SlidingWindowPipeline(
        contexts["cybersecurity"], window_size=8000, overlap=2000
    )
    assert tight.window_set.broken_pattern_count >= \
        loose.window_set.broken_pattern_count
