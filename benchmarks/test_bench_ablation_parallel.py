"""Ablation: parallel prompting (§4.3's future-work proposal).

Measures the simulated makespan of the sliding-window pipeline as the
number of LLM replicas grows, on the WWC2019 graph.  The speedup is
near-linear because windows are embarrassingly parallel; rule output is
bit-identical to the sequential run by construction.
"""

import pytest

from repro.mining import ParallelSlidingWindowPipeline, SlidingWindowPipeline

WORKER_COUNTS = (1, 2, 4, 8)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_ablation_parallel_workers(
    benchmark, run_once, contexts, workers, capsys
):
    pipeline = ParallelSlidingWindowPipeline(
        contexts["wwc2019"], workers=workers
    )
    run = run_once(benchmark, pipeline.mine, "llama3", "zero_shot")
    with capsys.disabled():
        print(
            f"\nworkers={workers}: makespan={run.mining_seconds:.1f}s "
            f"speedup={pipeline.speedup_over_sequential(run):.2f}x "
            f"rules={run.rule_count}"
        )
    assert run.rule_count >= 4


def test_parallel_output_identical_to_sequential(contexts):
    sequential = SlidingWindowPipeline(contexts["wwc2019"]).mine(
        "llama3", "zero_shot"
    )
    parallel = ParallelSlidingWindowPipeline(
        contexts["wwc2019"], workers=8
    ).mine("llama3", "zero_shot")
    assert [r.text for r in parallel.rules] == \
        [r.text for r in sequential.rules]
    assert parallel.mining_seconds < sequential.mining_seconds / 6
