"""Streaming A/B benchmark: incremental maintenance vs full re-eval.

The headline claim: for a small delta batch (≤1% of edges) touching a
narrow slice of the vocabulary, footprint pruning re-evaluates at least
5x fewer rules than re-mining's full metric recompute — with metrics
that are value-identical to the from-scratch answer.

The datasets in the registry cache graph instances in-process, so the
benchmark mutates a snapshot round-trip *copy*, never the shared graph.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.datasets import load
from repro.datasets.snapshot import dataset_from_dict, dataset_to_dict
from repro.graph import GraphChangeLog
from repro.mining import PipelineContext, SlidingWindowPipeline
from repro.stream import IncrementalMaintainer

DATASET = "cybersecurity"

#: floor asserted by the gate (the observed ratio is ~12x: one CAN_RDP
#: rule re-evaluated out of twelve evaluable)
MIN_EVAL_SAVINGS = 5.0


def _fresh_copy():
    return dataset_from_dict(dataset_to_dict(load(DATASET)))


def _narrow_batch(graph) -> int:
    """Apply a ≤1%-of-edges delta batch touching rare vocabulary.

    GP_LINK edges (Domain/OU → GPO) appear in no mined rule's footprint;
    one CAN_RDP edge drags exactly one rule into the re-eval set.
    """
    total_edges = len(list(graph.edges()))
    ous = sorted(n.id for n in graph.nodes() if "OU" in n.labels)
    gpos = sorted(n.id for n in graph.nodes() if "GPO" in n.labels)
    users = sorted(n.id for n in graph.nodes() if "User" in n.labels)
    computers = sorted(
        n.id for n in graph.nodes() if "Computer" in n.labels
    )
    applied = 0
    with graph.batch():
        for index in range(24):
            graph.add_edge(
                f"bench_gp_{index}", "GP_LINK",
                ous[index % len(ous)], gpos[index % len(gpos)],
            )
            applied += 1
        graph.add_edge("bench_rdp", "CAN_RDP", users[0], computers[0])
        applied += 1
    assert applied <= total_edges * 0.01
    return applied


@pytest.fixture()
def maintained():
    """(maintainer, changelog) over a freshly mined private copy."""
    dataset = _fresh_copy()
    context = PipelineContext.build(dataset)
    run = SlidingWindowPipeline(context).mine("llama3", "zero_shot")
    maintainer = IncrementalMaintainer(run, dataset.graph)
    for result, metrics in zip(run.results, maintainer.recompute()):
        result.metrics = metrics
    changelog = GraphChangeLog().attach(dataset.graph)
    return maintainer, changelog


def _evals_during(func):
    collector = obs.install()
    try:
        func()
        return collector.metrics.counter("metrics.rules_evaluated").total()
    finally:
        obs.uninstall()


def test_bench_stream_incremental(benchmark, run_once, maintained):
    maintainer, changelog = maintained
    _narrow_batch(maintainer.graph)
    deltas = list(changelog.deltas())

    report = run_once(benchmark, maintainer.apply, deltas)
    assert not report.full_fallback
    assert report.reevaluated >= 1            # the CAN_RDP rule moved in
    assert report.pruned >= report.total_rules - report.constant_rules - 2
    # value-identical to the from-scratch answer
    assert [r.metrics for r in maintainer.run.results] \
        == maintainer.recompute()


def test_bench_stream_full_recompute(benchmark, run_once, maintained):
    maintainer, changelog = maintained
    _narrow_batch(maintainer.graph)
    run_once(benchmark, maintainer.recompute)


def test_stream_eval_savings_floor(maintained, capsys):
    """The gated claim: ≥5x fewer rule evaluations than full re-eval."""
    maintainer, changelog = maintained
    applied = _narrow_batch(maintainer.graph)
    deltas = list(changelog.deltas())

    incremental = _evals_during(lambda: maintainer.apply(deltas))
    full = _evals_during(maintainer.recompute)

    assert incremental >= 1
    assert full >= MIN_EVAL_SAVINGS * incremental
    with capsys.disabled():
        print(
            f"\nstream A/B ({DATASET}): {applied} mutations "
            f"(≤1% of edges) -> {incremental} incremental evals vs "
            f"{full} full evals ({full / incremental:.1f}x savings)\n"
        )
