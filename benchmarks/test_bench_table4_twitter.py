"""Table 4 benchmark: the Twitter metric grid.

Twitter is the large graph (43k nodes); its sliding-window cells are the
most expensive in the study, so each one is benchmarked with a single
round.
"""

import pytest

from repro.experiments import metric_tables
from repro.mining.runner import ExperimentRunner

DATASET = "twitter"


@pytest.mark.parametrize("model", ["llama3", "mixtral"])
def test_table4_swa_cell(benchmark, run_once, swa_pipelines, model):
    run = run_once(
        benchmark, swa_pipelines[DATASET].mine, model, "zero_shot"
    )
    assert 4 <= run.rule_count <= 12
    metrics = run.aggregate_metrics()
    assert metrics.avg_support > 1000   # Twitter supports are in the 1000s


@pytest.mark.parametrize("model", ["llama3", "mixtral"])
def test_table4_rag_cell(benchmark, run_once, rag_pipelines, model):
    run = run_once(
        benchmark, rag_pipelines[DATASET].mine, model, "zero_shot"
    )
    assert run.rule_count >= 1
    assert run.mining_seconds < 10


def test_table4_print(capsys):
    runner = ExperimentRunner(base_seed=0)
    table = metric_tables.build(runner, DATASET)
    with capsys.disabled():
        print("\n\n" + table.render() + "\n")
