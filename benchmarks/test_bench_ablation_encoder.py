"""Ablation: incident vs. adjacency encoder.

The paper adopts the incident encoder on Fatemi et al.'s evidence; this
ablation shows the mechanism: the adjacency encoding is cheaper in
tokens, but its edge statements carry no endpoint labels, so
endpoint-dependent rules can only be induced when both node statements
happen to be co-visible.
"""

from repro.datasets import load
from repro.encoding import AdjacencyEncoder, IncidentEncoder, count_tokens
from repro.mining import PipelineContext, SlidingWindowPipeline
from repro.rules.model import RuleKind


def _endpoint_rule_count(run):
    return sum(
        1 for rule in run.rules
        if rule.kind in (RuleKind.ENDPOINT, RuleKind.MANDATORY_EDGE,
                         RuleKind.PATTERN, RuleKind.TEMPORAL_ORDER)
    )


def test_ablation_encoders(benchmark, run_once, capsys):
    dataset = load("cybersecurity")

    def run_both():
        results = {}
        for encoder in (IncidentEncoder(), AdjacencyEncoder()):
            context = PipelineContext.build(dataset, encoder=encoder)
            pipeline = SlidingWindowPipeline(context)
            results[encoder.name] = (
                sum(count_tokens(s.text) for s in context.statements),
                pipeline.mine("llama3", "zero_shot"),
            )
        return results

    results = run_once(benchmark, run_both)
    with capsys.disabled():
        for name, (tokens, run) in results.items():
            print(
                f"\n{name}: tokens={tokens} windows={run.window_count} "
                f"rules={run.rule_count} "
                f"structural={_endpoint_rule_count(run)} "
                f"simulated={run.mining_seconds:.0f}s"
            )

    incident_tokens, incident_run = results["incident"]
    adjacency_tokens, adjacency_run = results["adjacency"]
    # adjacency is cheaper but weaker on structural rules
    assert adjacency_tokens < incident_tokens
    assert adjacency_run.mining_seconds < incident_run.mining_seconds
    assert _endpoint_rule_count(adjacency_run) <= \
        _endpoint_rule_count(incident_run)
