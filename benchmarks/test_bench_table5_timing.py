"""Table 5 benchmark: rule-mining times across the whole grid.

The benchmark measures the *wall-clock* of regenerating the timing table;
the assertions verify the *simulated* LLM seconds reproduce the paper's
shape: SWA in the hundreds of seconds and growing with the encoding, RAG
in single digits, few-shot faster than zero-shot under SWA.
"""

from repro.experiments import table5
from repro.mining.runner import ExperimentRunner


def test_table5_grid(benchmark, run_once, capsys):
    runner = ExperimentRunner(base_seed=0)
    table = run_once(benchmark, table5.build, runner)
    with capsys.disabled():
        print("\n\n" + table.render() + "\n")

    def seconds(dataset, model, method, prompt):
        return runner.run(dataset, model, method, prompt).mining_seconds

    for dataset in ("wwc2019", "cybersecurity", "twitter"):
        for model in ("llama3", "mixtral"):
            swa_zero = seconds(dataset, model, "sliding_window",
                               "zero_shot")
            swa_few = seconds(dataset, model, "sliding_window", "few_shot")
            rag_zero = seconds(dataset, model, "rag", "zero_shot")
            rag_few = seconds(dataset, model, "rag", "few_shot")
            # RAG is orders of magnitude faster (paper: ~50-140x)
            assert swa_zero > 20 * rag_zero
            # few-shot speeds SWA up (paper: 251->227 etc.)
            assert swa_few < swa_zero
            assert rag_zero < 10 and rag_few < 10

    # SWA grows with the encoded-graph size: Twitter > WWC > Cyber
    assert seconds("twitter", "llama3", "sliding_window", "zero_shot") > \
        seconds("wwc2019", "llama3", "sliding_window", "zero_shot") > \
        seconds("cybersecurity", "llama3", "sliding_window", "zero_shot")

    # WWC2019 absolute numbers land in the paper's band (~200-300 s)
    wwc = seconds("wwc2019", "llama3", "sliding_window", "zero_shot")
    assert 150 < wwc < 400
