"""Relational-data audit: mine graph rules from tables, emit SQL (§5).

Builds a small e-commerce database with planted integrity problems,
converts it to a property graph via its key/foreign-key structure, mines
consistency rules with the simulated LLM, and renders the minable rules
back as SQL constraint DDL — the workflow §5 sketches for "flat
relational data organised following key-foreign key relationships".

Run:  python examples/relational_audit.py
"""

from __future__ import annotations

from repro.datasets.base import Dataset, DirtReport
from repro.graph import infer_schema
from repro.interactive import explain_rule
from repro.mining import PipelineContext, SlidingWindowPipeline
from repro.relational import (
    ForeignKey,
    RelationalDatabase,
    Table,
    database_to_graph,
    rule_to_sql,
)


def build_shop() -> RelationalDatabase:
    db = RelationalDatabase("shop")
    customers = db.add_table(Table(
        "Customer", ("id", "email", "country"), "id",
    ))
    products = db.add_table(Table(
        "Product", ("id", "sku", "price"), "id",
    ))
    orders = db.add_table(Table(
        "Orders", ("id", "customer_id", "product_id", "status"), "id",
        (
            ForeignKey("customer_id", "Customer", "PLACED_BY"),
            ForeignKey("product_id", "Product", "OF_PRODUCT"),
        ),
    ))
    for index in range(40):
        customers.insert({
            "id": index,
            "email": f"user{index}@example.com",
            "country": ("FR", "DE", "IT")[index % 3],
        })
    for index in range(20):
        products.insert({
            "id": index, "sku": f"SKU-{1000 + index}",
            "price": 5.0 + index,
        })
    for index in range(120):
        orders.insert({
            "id": index,
            "customer_id": index % 40,
            "product_id": index % 20,
            "status": ("open", "paid", "shipped")[index % 3],
        })
    # planted problems: duplicate SKU, bogus status, dangling FK
    products.rows[5]["sku"] = products.rows[4]["sku"]
    orders.rows[7]["status"] = "???"
    orders.rows[11]["customer_id"] = 9999
    return db


def main() -> None:
    db = build_shop()
    print("Referential problems found by the relational layer:")
    for problem in db.validate_references():
        print(f"  - {problem}")

    graph = database_to_graph(db)
    print(f"\nConverted to a property graph: {graph.node_count()} nodes, "
          f"{graph.edge_count()} edges, labels {graph.node_labels()}")

    dataset = Dataset(graph=graph, true_rules=[], dirt=DirtReport())
    context = PipelineContext.build(dataset)
    run = SlidingWindowPipeline(
        context, window_size=2000, overlap=200
    ).mine("llama3", "zero_shot")

    schema = infer_schema(graph)
    print(f"\nMined {run.rule_count} rules; as SQL constraints:\n")
    for result in run.results:
        sql = rule_to_sql(result.rule)
        marker = "OK " if result.metrics.confidence == 100 else "!! "
        print(f"{marker}{result.rule.text}")
        if sql:
            print(f"    {sql}")
        if result.metrics.confidence < 100:
            explanation = explain_rule(graph, schema, result.rule)
            print(f"    evidence: {explanation.rationale}")
        print()


if __name__ == "__main__":
    main()
