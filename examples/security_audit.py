"""Security audit: find Active-Directory inconsistencies with mined rules.

Loads the Cybersecurity dataset (a BloodHound-style AD environment with
injected dirt), mines consistency rules with both simulated models, and
then runs each rule's *violation query* to surface the actual offending
elements — the workflow a data steward would follow.

Run:  python examples/security_audit.py
"""

from __future__ import annotations

from repro.cypher import execute
from repro.datasets import load
from repro.mining import PipelineContext, SlidingWindowPipeline


def main() -> None:
    dataset = load("cybersecurity")
    context = PipelineContext.build(dataset)
    pipeline = SlidingWindowPipeline(context)

    print("Injected inconsistencies (ground truth):")
    for kind, count in sorted(dataset.dirt.injected.items()):
        print(f"  {count:3d}x {kind}")
    print()

    seen_rules: set[tuple] = set()
    total_violations = 0
    for model in ("llama3", "mixtral"):
        run = pipeline.mine(model, "zero_shot")
        print(f"=== {model}: {run.rule_count} rules, "
              f"{run.mining_seconds:.0f}s simulated ===")
        for result in run.results:
            if result.rule.signature() in seen_rules:
                continue
            seen_rules.add(result.rule.signature())
            queries = result.outcome.metric_queries
            if queries is None or queries.violations is None:
                continue
            try:
                violations = execute(context.graph, queries.violations)
            except Exception:
                continue
            if len(violations) == 0:
                continue
            total_violations += len(violations)
            print(f"\n  VIOLATED: {result.rule.text}")
            print(f"  query:    {queries.violations}")
            for row in violations.rows[:5]:
                print(f"    offender: {row}")
            if len(violations) > 5:
                print(f"    ... and {len(violations) - 5} more")
        print()

    print(f"Total violating elements surfaced: {total_violations}")


if __name__ == "__main__":
    main()
