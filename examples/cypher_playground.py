"""Cypher playground: run the paper's own queries on the engine.

Demonstrates the from-scratch Cypher interpreter directly — including
the three §4.4 error cases: the flipped-direction query, the
hallucinated-property query, and the '=' vs '=~' syntax error — and
shows how the linter classifies and the corrector repairs them.

Run:  python examples/cypher_playground.py
"""

from __future__ import annotations

from repro.correction import QueryCorrector
from repro.cypher import execute, lint
from repro.datasets import load
from repro.graph import infer_schema
from repro.rules import ConsistencyRule, RuleKind, to_natural_language

# the paper's flipped-direction example (Tournament->Match is backwards)
FLIPPED_QUERY = """
MATCH (t:Tournament)-[:IN_TOURNAMENT]->(m:Match)
WITH t.id AS tournament_id, m.id AS match_id, COUNT(*) AS count
WHERE count = 1
RETURN COUNT(*) AS support
"""

# the paper's hallucinated-property example (Match has no 'score',
# 'penaltyScore' or 'minute' property)
HALLUCINATED_QUERY = """
MATCH (p:Person)-[:SCORED_GOAL]->(m:Match)
WITH m.id AS match_id, p.id AS person_id,
COLLECT(DISTINCT p.name + ':' + toString(m.score) + ':'
 + toString(m.penaltyScore) + ':' + toString(m.minute)) AS minutes
WHERE Size(minutes) > 1
RETURN match_id, person_id, minutes
"""

# the paper's syntax-error example ('=' where '=~' was needed)
REGEX_EQ_QUERY = """
MATCH (n)
WHERE n.name IS NOT NULL AND n.name = '^([a-zA-Z0-9-]+\\\\.)+[a-zA-Z]{2,}$'
RETURN COUNT(*) AS valid_domains
"""


def show(title: str, query: str, schema) -> None:
    print(f"--- {title}")
    report = lint(query, schema)
    if report.is_correct:
        print("  linter: OK")
    else:
        for issue in report.issues:
            print(f"  linter [{issue.category.value}]: {issue.message}")
    print()


def main() -> None:
    dataset = load("wwc2019")
    graph = dataset.graph
    schema = infer_schema(graph)

    print("A few live queries against the WWC2019 graph:\n")
    for query in (
        "MATCH (m:Match)-[:IN_TOURNAMENT]->(t:Tournament) "
        "RETURN t.name AS tournament, count(*) AS matches",
        "MATCH (p:Person)-[g:SCORED_GOAL]->(m:Match) "
        "WHERE g.penalty = true RETURN count(*) AS penalty_goals",
        "MATCH (t:Team) RETURN t.name AS team ORDER BY t.name LIMIT 3",
    ):
        result = execute(graph, query)
        print(f"  {query}")
        print(f"    -> {result.rows}\n")

    print("The paper's three error categories, as seen by the linter:\n")
    show("wrong direction (paper §4.4, category 1)", FLIPPED_QUERY, schema)
    show("hallucinated properties (category 2)", HALLUCINATED_QUERY, schema)
    show("regex compared with '=' (category 3)", REGEX_EQ_QUERY, schema)

    print("Correction protocol on the flipped query:")
    rule = ConsistencyRule(
        kind=RuleKind.PRIMARY_KEY, text="", label="Match",
        properties=("id",), scope_label="Tournament",
        scope_edge_label="IN_TOURNAMENT",
    )
    rule = ConsistencyRule(
        kind=rule.kind, text=to_natural_language(rule), label=rule.label,
        properties=rule.properties, scope_label=rule.scope_label,
        scope_edge_label=rule.scope_edge_label,
    )
    outcome = QueryCorrector(schema).correct(rule, FLIPPED_QUERY.strip())
    print(f"  rule:      {rule.text}")
    print(f"  generated: {' '.join(outcome.generated_query.split())}")
    print(f"  corrected: {outcome.final_query}")
    support = execute(graph, outcome.final_query).scalar()
    print(f"  support after correction: {support}")


if __name__ == "__main__":
    main()
