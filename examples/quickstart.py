"""Quickstart: mine consistency rules from a small property graph.

Builds a toy social graph, runs the full sliding-window pipeline with
the simulated LLaMA-3, and prints each mined rule with its Cypher query
and its support / coverage / confidence.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.datasets.base import Dataset, DirtReport
from repro.graph import PropertyGraph
from repro.mining import PipelineContext, SlidingWindowPipeline


def build_demo_graph() -> PropertyGraph:
    """A miniature Twitter-like graph with one planted inconsistency."""
    graph = PropertyGraph("demo")
    for index in range(1, 21):
        graph.add_node(f"user{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
    for index in range(1, 41):
        graph.add_node(f"tweet{index}", "Tweet", {
            "id": index,
            "text": f"hello world {index}",
            "created_at": f"2021-01-{(index % 28) + 1:02d}T12:00:00",
        })
        graph.add_edge(
            f"posts{index}", "POSTS",
            f"user{(index % 20) + 1}", f"tweet{index}",
        )
    for index in range(1, 11):
        graph.add_edge(
            f"follows{index}", "FOLLOWS",
            f"user{index}", f"user{index + 5}",
        )
    # planted inconsistency: two tweets share an id
    graph.update_node("tweet40", {"id": 1})
    return graph


def main() -> None:
    graph = build_demo_graph()
    dataset = Dataset(graph=graph, true_rules=[], dirt=DirtReport())
    context = PipelineContext.build(dataset)

    pipeline = SlidingWindowPipeline(context, window_size=2000, overlap=200)
    run = pipeline.mine("llama3", "zero_shot")

    print(f"Mined {run.rule_count} rules from {graph.name!r} "
          f"({run.window_count} windows, "
          f"{run.mining_seconds:.1f}s simulated LLM time):\n")
    for result in run.results:
        metrics = result.metrics
        print(f"RULE    {result.rule.text}")
        print(f"CYPHER  {result.outcome.final_query}")
        print(
            f"SCORES  support={metrics.support}  "
            f"coverage={metrics.coverage:.1f}%  "
            f"confidence={metrics.confidence:.1f}%"
        )
        if not result.outcome.classification.is_correct:
            issues = ", ".join(
                issue.message
                for issue in result.outcome.classification.report.issues
            )
            print(f"ISSUES  {issues}")
        print()

    aggregate = run.aggregate_metrics()
    print(
        f"Aggregate: {aggregate.rule_count} rules, "
        f"avg support {aggregate.avg_support:.0f}, "
        f"avg coverage {aggregate.avg_coverage:.1f}%, "
        f"avg confidence {aggregate.avg_confidence:.1f}%"
    )


if __name__ == "__main__":
    main()
