"""LLM pipeline vs. classical miners on the WWC2019 graph.

Contrasts the three rule sources the paper discusses:

* the LLM pipeline (simulated LLaMA-3, sliding windows) — selective,
  natural-language rules of many kinds;
* the schema profiler — exact and complete over schema constraints, but
  verbose ("an overwhelming number of constraints");
* the AMIE-style Horn-rule miner — relation co-occurrence rules only,
  no property constraints at all.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from collections import Counter

from repro.baselines import AmieConfig, AmieMiner, SchemaProfiler
from repro.datasets import load
from repro.mining import PipelineContext, SlidingWindowPipeline


def main() -> None:
    dataset = load("wwc2019")
    context = PipelineContext.build(dataset)

    # 1) LLM pipeline
    run = SlidingWindowPipeline(context).mine("llama3", "zero_shot")
    llm_rules = run.rules
    print(f"LLM pipeline (llama3, SWA, zero-shot): {len(llm_rules)} rules")
    for kind, count in Counter(r.kind.value for r in llm_rules).items():
        print(f"  {count:2d}x {kind}")

    # 2) schema profiler
    profiler_rules = SchemaProfiler().mine(context.graph, context.schema)
    print(f"\nSchema profiler: {len(profiler_rules)} rules")
    for kind, count in Counter(
        r.kind.value for r in profiler_rules
    ).items():
        print(f"  {count:2d}x {kind}")

    # 3) AMIE-style Horn rules
    horn_rules = AmieMiner(
        AmieConfig(min_support=20, min_confidence=0.5)
    ).mine(context.graph)
    print(f"\nAMIE-style miner: {len(horn_rules)} Horn rules "
          "(top 5 by confidence)")
    for rule in horn_rules[:5]:
        print(f"  {rule.describe()}")

    # overlap: which LLM rules did the profiler also find?
    profiler_signatures = {rule.signature() for rule in profiler_rules}
    overlap = [
        rule for rule in llm_rules
        if rule.signature() in profiler_signatures
    ]
    print(
        f"\n{len(overlap)}/{len(llm_rules)} LLM rules are exactly "
        "reproduced by the profiler;"
    )
    print("the rest are either multi-hop/temporal rules outside the "
          "profiler's language, or LLM hallucinations.")


if __name__ == "__main__":
    main()
