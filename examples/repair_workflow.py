"""Full governance loop: mine → explain → review → repair → re-score.

The end-to-end workflow the library enables on top of the paper's
pipeline: mine rules from the Twitter graph, let a (scripted) domain
expert review them with grounded explanations, then enforce the accepted
rules with the repair engine and measure the improvement.

Run:  python examples/repair_workflow.py
"""

from __future__ import annotations

from repro.datasets import load
from repro.interactive import RefinementSession, explain_rule
from repro.mining import PipelineContext, SlidingWindowPipeline
from repro.repair import RepairEngine


def main() -> None:
    # a private copy: repair mutates the graph
    dataset = load("twitter", cache=False)
    context = PipelineContext.build(dataset)

    print("Step 1 — mine rules (sliding windows, llama3, zero-shot)...")
    run = SlidingWindowPipeline(context).mine("llama3", "zero_shot")
    print(f"  {run.rule_count} rules mined in "
          f"{run.mining_seconds:.0f} simulated seconds\n")

    print("Step 2 — review with grounded explanations:")
    session = RefinementSession.from_rules(
        context.graph, context.schema, run.rules
    )
    for index in session.pending():
        entry = session.entries[index]
        explanation = explain_rule(
            context.graph, context.schema, entry.rule
        )
        confidence = entry.metrics.confidence if entry.metrics else 0.0
        # scripted expert: keep clean or near-clean rules, reject the rest
        if confidence >= 95.0:
            session.accept(index)
            verdict = "ACCEPT"
        else:
            session.reject(index, "too weak for enforcement")
            verdict = "REJECT"
        print(f"  [{verdict}] ({confidence:5.1f}%) {entry.rule.text}")
        print(f"           {explanation.rationale}")
    print(f"\n  review tally: {session.summary()}\n")

    print("Step 3 — enforce the accepted rules:")
    engine = RepairEngine(context.graph, context.schema)
    total_stats: dict[str, int] = {}
    for rule, _query, metrics_before in session.export():
        report = engine.repair(rule)
        if not report.stats:
            continue
        for key, value in report.stats.items():
            total_stats[key] = total_stats.get(key, 0) + value
        print(f"  {rule.text}")
        print(f"    actions: {[a.description for a in report.applied]}")
        print(f"    effects: {report.stats}  "
              f"confidence {report.metrics_before.confidence:.2f}% -> "
              f"{report.metrics_after.confidence:.2f}%")
    print(f"\nTotal repair effects: {total_stats}")


if __name__ == "__main__":
    main()
