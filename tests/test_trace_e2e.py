"""End-to-end trace acceptance: jobs through MiningService with obs
installed must yield one connected span tree per job (no orphan roots
from worker threads), and profile-style cost attribution must agree
with the MiningRun token totals."""

from __future__ import annotations

import pytest

from repro import obs
from repro.service import MiningService, RetryPolicy
from tests.test_service_e2e import build_dataset

CELLS = [
    ("tiny-a", "llama3", "rag", "zero_shot"),
    ("tiny-b", "llama3", "sliding_window", "zero_shot"),
    ("tiny-c", "mixtral", "rag", "few_shot"),
]


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


@pytest.fixture()
def recorded(tmp_path):
    """Run CELLS through the service, one client span per submit, and
    hand back (parsed trace, {job span name -> MiningRun})."""
    collector = obs.install()
    runs = {}
    with MiningService(
        loader=build_dataset, workers=2,
        retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
    ) as service:
        for index, cell in enumerate(CELLS):
            with obs.span(f"client-{index}"):
                job_id = service.submit(*cell)
                runs[f"client-{index}"] = service.result(job_id, timeout=60)
    path = tmp_path / "trace.jsonl"
    obs.write_jsonl(collector, str(path))
    obs.uninstall()
    return obs.load_trace(str(path)), runs


class TestSingleTreePerJob:
    def test_one_connected_tree_per_client_span(self, recorded):
        trace, runs = recorded
        # exactly one root per client span: the worker-thread job spans
        # attached under the submitters instead of becoming orphans
        assert sorted(root.name for root in trace.roots) == sorted(runs)
        for root in trace.roots:
            names = {span.name for span in root.walk()}
            assert "service.job" in names
            assert "service.attempt" in names
            assert "llm.call" in names

    def test_job_spans_crossed_a_thread_boundary(self, recorded):
        trace, _runs = recorded
        for root in trace.roots:
            job = next(
                span for span in root.walk() if span.name == "service.job"
            )
            assert job.thread != root.thread
            assert job.thread.startswith("miner-")


class TestTokenConservation:
    def test_rule_attribution_matches_mining_run_totals(self, recorded):
        trace, runs = recorded
        expected = sum(
            run.prompt_tokens + run.completion_tokens
            for run in runs.values()
        )
        rows = obs.attribute_costs(trace, by="rule")
        assert sum(row.tokens for row in rows) == expected

    def test_per_job_attribution_matches_each_run(self, recorded):
        trace, runs = recorded
        for root in trace.roots:
            run = runs[root.name]
            rows = obs.attribute_costs(root, by="stage")
            assert sum(row.tokens for row in rows) == (
                run.prompt_tokens + run.completion_tokens
            )
            assert sum(row.calls for row in rows) == run.llm_calls

    def test_trace_counters_agree_with_runs(self, recorded):
        trace, runs = recorded
        expected = sum(
            run.prompt_tokens + run.completion_tokens
            for run in runs.values()
        )
        assert (
            trace.counter_value("llm.prompt_tokens")
            + trace.counter_value("llm.completion_tokens")
        ) == expected
