"""Unit tests for the pipeline machinery (combination, contexts)."""

import random

import pytest

from repro.datasets.base import Dataset, DirtReport
from repro.llm import LLAMA3_PROFILE, MIXTRAL_PROFILE
from repro.mining import PipelineContext, combine_and_cap
from repro.rules import ConsistencyRule, RuleKind


def rule(label, prop, kind=RuleKind.PROPERTY_EXISTS):
    return ConsistencyRule(
        kind=kind, text=f"{label}.{prop}", label=label, properties=(prop,),
    )


def rng():
    return random.Random(7)


class TestCombineAndCap:
    def test_dedup_by_signature(self):
        calls = [[rule("A", "x")], [rule("A", "x")], [rule("A", "x")]]
        combined = combine_and_cap(calls, LLAMA3_PROFILE, "zero_shot", rng())
        assert len(combined.rules) == 1

    def test_floor_drops_one_off_rules(self):
        calls = [[rule("A", "x")] for _ in range(10)]
        calls[0] = [rule("A", "x"), rule("B", "oneoff")]
        combined = combine_and_cap(calls, LLAMA3_PROFILE, "zero_shot", rng())
        labels = {r.label for r in combined.rules}
        assert "B" not in labels or len(combined.rules) <= 2

    def test_single_call_keeps_everything_under_cap(self):
        calls = [[rule("A", "x"), rule("B", "y"),
                  rule("C", "z", RuleKind.UNIQUENESS)]]
        combined = combine_and_cap(calls, LLAMA3_PROFILE, "zero_shot", rng())
        assert len(combined.rules) == 3

    def test_property_rules_fused_per_label(self):
        calls = [
            [rule("Match", "date"), rule("Match", "stage")],
            [rule("Match", "date"), rule("Match", "stage")],
        ]
        combined = combine_and_cap(calls, LLAMA3_PROFILE, "zero_shot", rng())
        assert len(combined.rules) == 1
        assert set(combined.rules[0].properties) == {"date", "stage"}

    def test_rare_property_not_fused_into_merged_rule(self):
        # 'ghost' appears twice in 40 calls; 'date' in all 40 — the
        # 30%-of-max member filter must exclude 'ghost'
        calls = [[rule("Match", "date")] for _ in range(40)]
        calls[0].append(rule("Match", "ghost"))
        calls[1].append(rule("Match", "ghost"))
        combined = combine_and_cap(calls, LLAMA3_PROFILE, "zero_shot", rng())
        merged = next(
            r for r in combined.rules
            if r.kind is RuleKind.PROPERTY_EXISTS
        )
        assert "ghost" not in merged.properties

    def test_cap_respected(self):
        calls = [
            [rule(f"L{i}", "p") for i in range(30)]
            for _ in range(3)
        ]
        combined = combine_and_cap(calls, MIXTRAL_PROFILE, "zero_shot", rng())
        assert len(combined.rules) <= MIXTRAL_PROFILE.swa_rule_cap

    def test_few_shot_cap_lower(self):
        calls = [
            [rule(f"L{i}", "p") for i in range(30)]
            for _ in range(3)
        ]
        zero = combine_and_cap(calls, LLAMA3_PROFILE, "zero_shot", rng())
        few = combine_and_cap(calls, LLAMA3_PROFILE, "few_shot", rng())
        assert len(few.rules) < len(zero.rules)

    def test_diversity_prevents_label_flooding(self):
        # 12 uniqueness rules on label A (freq 5) + rules on other
        # labels (freq 3): selection must include other labels
        calls = []
        for _ in range(5):
            calls.append([
                rule("A", f"p{i}", RuleKind.UNIQUENESS) for i in range(12)
            ])
        for _ in range(3):
            calls.append([rule("B", "x"), rule("C", "y"),
                          rule("D", "z", RuleKind.UNIQUENESS)])
        combined = combine_and_cap(calls, LLAMA3_PROFILE, "zero_shot", rng())
        labels = {r.label for r in combined.rules}
        assert {"B", "C", "D"} <= labels

    def test_empty_input(self):
        combined = combine_and_cap([], LLAMA3_PROFILE, "zero_shot", rng())
        assert combined.rules == []
        combined = combine_and_cap([[]], LLAMA3_PROFILE, "zero_shot", rng())
        assert combined.rules == []


class TestPipelineContext:
    def test_build_encodes_once(self, social_graph):
        dataset = Dataset(
            graph=social_graph, true_rules=[], dirt=DirtReport()
        )
        context = PipelineContext.build(dataset)
        assert context.name == "social"
        assert len(context.statements) == 10  # 5 nodes + 5 edges
        assert "User" in context.schema_summary
        assert context.graph is social_graph

    def test_custom_encoder(self, social_graph):
        from repro.encoding import AdjacencyEncoder

        dataset = Dataset(
            graph=social_graph, true_rules=[], dirt=DirtReport()
        )
        context = PipelineContext.build(dataset, encoder=AdjacencyEncoder())
        assert any(
            s.text.startswith("Edge ") for s in context.statements
        )
