"""Unit tests for the property-graph element types."""

import pytest

from repro.graph import InvalidPropertyError, Node, Edge
from repro.graph.model import validate_property_value


class TestValidateProperty:
    def test_primitives_pass_through(self):
        for value in ("x", 3, 2.5, True, None):
            assert validate_property_value("k", value) == value

    def test_list_of_primitives_normalised_to_list(self):
        assert validate_property_value("k", (1, 2)) == [1, 2]
        assert validate_property_value("k", ["a", "b"]) == ["a", "b"]

    def test_nested_list_rejected(self):
        with pytest.raises(InvalidPropertyError):
            validate_property_value("k", [[1], [2]])

    def test_dict_rejected(self):
        with pytest.raises(InvalidPropertyError):
            validate_property_value("k", {"a": 1})

    def test_error_carries_key_and_value(self):
        with pytest.raises(InvalidPropertyError) as excinfo:
            validate_property_value("weird", object())
        assert excinfo.value.key == "weird"


class TestNode:
    def test_create_normalises_single_label(self):
        node = Node.create("n1", "Person", {"name": "x"})
        assert node.labels == frozenset({"Person"})
        assert node.has_label("Person")
        assert not node.has_label("Animal")

    def test_create_with_multiple_labels(self):
        node = Node.create("n1", ["A", "B"])
        assert node.sorted_labels() == ["A", "B"]

    def test_id_coerced_to_string(self):
        node = Node.create(42, "X")
        assert node.id == "42"

    def test_get_with_default(self):
        node = Node.create("n", "X", {"a": 1})
        assert node.get("a") == 1
        assert node.get("b") is None
        assert node.get("b", 7) == 7

    def test_with_properties_returns_new_node(self):
        node = Node.create("n", "X", {"a": 1})
        updated = node.with_properties({"b": 2})
        assert updated.properties == {"a": 1, "b": 2}
        assert node.properties == {"a": 1}  # original untouched

    def test_without_property(self):
        node = Node.create("n", "X", {"a": 1, "b": 2})
        assert node.without_property("a").properties == {"b": 2}
        assert node.without_property("zz").properties == {"a": 1, "b": 2}

    def test_invalid_property_at_creation(self):
        with pytest.raises(InvalidPropertyError):
            Node.create("n", "X", {"bad": object()})


class TestEdge:
    def test_create(self):
        edge = Edge.create("e1", "KNOWS", "a", "b", {"w": 1})
        assert (edge.label, edge.src, edge.dst) == ("KNOWS", "a", "b")
        assert edge.get("w") == 1

    def test_other_end(self):
        edge = Edge.create("e1", "KNOWS", "a", "b")
        assert edge.other_end("a") == "b"
        assert edge.other_end("b") == "a"
        with pytest.raises(ValueError):
            edge.other_end("c")

    def test_with_properties(self):
        edge = Edge.create("e1", "KNOWS", "a", "b", {"w": 1})
        updated = edge.with_properties({"w": 2, "x": 3})
        assert updated.properties == {"w": 2, "x": 3}
        assert edge.properties == {"w": 1}
