"""Tests for mining-run JSON persistence."""

import pytest

from repro.mining import (
    FORMAT_VERSION,
    PipelineContext,
    SlidingWindowPipeline,
    UnsupportedFormatError,
    load_runs,
    rule_from_dict,
    rule_to_dict,
    run_from_dict,
    run_to_dict,
    save_runs,
)
from repro.rules import ConsistencyRule, RuleKind


@pytest.fixture(scope="module")
def run(cyber_dataset):
    context = PipelineContext.build(cyber_dataset)
    return SlidingWindowPipeline(context).mine("mixtral", "zero_shot")


class TestRuleRoundTrip:
    def test_all_fields_preserved(self):
        rule = ConsistencyRule(
            kind=RuleKind.PRIMARY_KEY, text="t", label="Match",
            properties=("id",), scope_label="Tournament",
            scope_edge_label="IN_TOURNAMENT", provenance="w3",
        )
        rebuilt = rule_from_dict(rule_to_dict(rule))
        assert rebuilt == rule

    def test_allowed_values_types_preserved(self):
        rule = ConsistencyRule(
            kind=RuleKind.VALUE_DOMAIN, text="t", label="U",
            properties=("owned",), allowed_values=(True, False),
        )
        rebuilt = rule_from_dict(rule_to_dict(rule))
        assert rebuilt.allowed_values == (True, False)


class TestRunRoundTrip:
    def test_preserves_table_cells(self, run):
        rebuilt = run_from_dict(run_to_dict(run))
        assert rebuilt.key() == run.key()
        assert rebuilt.rule_count == run.rule_count
        assert rebuilt.correct_queries == run.correct_queries
        assert rebuilt.error_census() == run.error_census()
        original = run.aggregate_metrics()
        restored = rebuilt.aggregate_metrics()
        assert restored.avg_support == original.avg_support
        assert restored.avg_coverage == original.avg_coverage
        assert restored.avg_confidence == original.avg_confidence
        assert rebuilt.mining_seconds == run.mining_seconds

    def test_preserves_queries_and_outcomes(self, run):
        rebuilt = run_from_dict(run_to_dict(run))
        for old, new in zip(run.results, rebuilt.results):
            assert new.rule.signature() == old.rule.signature()
            assert new.outcome.final_query == old.outcome.final_query
            assert new.outcome.corrected == old.outcome.corrected
            assert (new.outcome.classification.is_correct
                    == old.outcome.classification.is_correct)

    def test_file_round_trip(self, run, tmp_path):
        path = tmp_path / "runs.json"
        save_runs([run, run], path)
        restored = load_runs(path)
        assert len(restored) == 2
        assert restored[0].key() == run.key()

    def test_version_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "runs": []}')
        with pytest.raises(ValueError):
            load_runs(path)


class TestFormatVersionGuard:
    def test_newer_run_rejected_before_deserialization(self):
        # deliberately malformed body: a clear version error must win
        # over the KeyError a field-by-field load would hit
        payload = {"format_version": FORMAT_VERSION + 1, "garbage": True}
        with pytest.raises(UnsupportedFormatError, match="upgrade"):
            run_from_dict(payload)

    def test_newer_archive_rejected_with_upgrade_hint(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            '{"format_version": %d, "runs": [{"nonsense": 1}]}'
            % (FORMAT_VERSION + 1)
        )
        with pytest.raises(UnsupportedFormatError, match="upgrade"):
            load_runs(path)

    def test_non_integer_version_rejected(self):
        with pytest.raises(UnsupportedFormatError, match="non-integer"):
            run_from_dict({"format_version": "2.0"})

    def test_other_unsupported_version_rejected(self):
        with pytest.raises(UnsupportedFormatError, match="unsupported"):
            run_from_dict({"format_version": 0})

    def test_guard_is_a_value_error(self):
        # callers catching the old ValueError keep working
        assert issubclass(UnsupportedFormatError, ValueError)

    def test_restored_metric_queries_still_execute(self, run,
                                                   cyber_dataset):
        from repro.metrics import evaluate_rule

        rebuilt = run_from_dict(run_to_dict(run))
        for old, new in zip(run.results, rebuilt.results):
            if new.outcome.metric_queries is None:
                continue
            metrics = evaluate_rule(
                cyber_dataset.graph, new.outcome.metric_queries
            )
            assert metrics == old.metrics
