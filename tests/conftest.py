"""Shared fixtures.

The three full datasets are session-scoped (generation is deterministic
but the Twitter graph takes a couple of seconds); most tests use the
small hand-built graphs below instead.
"""

from __future__ import annotations

import pytest

from repro.datasets import load
from repro.graph import PropertyGraph, infer_schema


@pytest.fixture()
def social_graph() -> PropertyGraph:
    """A small Twitter-like graph with known facts.

    2 users, 3 tweets; u1 posts t1 and t3, u2 posts t2; t3 retweets t1;
    u1 follows u2; t2 has a duplicate id with t1.
    """
    graph = PropertyGraph("social")
    graph.add_node("u1", "User", {"id": 1, "name": "alice", "active": True})
    graph.add_node("u2", "User", {"id": 2, "name": "bob", "active": False})
    graph.add_node("t1", "Tweet", {
        "id": 10, "text": "first", "created_at": "2021-01-01T10:00:00",
    })
    graph.add_node("t2", "Tweet", {
        "id": 10, "text": "second", "created_at": "2021-01-02T10:00:00",
    })
    graph.add_node("t3", "Tweet", {
        "id": 12, "text": "third", "created_at": "2021-01-03T10:00:00",
    })
    graph.add_edge("p1", "POSTS", "u1", "t1")
    graph.add_edge("p2", "POSTS", "u2", "t2")
    graph.add_edge("p3", "POSTS", "u1", "t3")
    graph.add_edge("r1", "RETWEETS", "t3", "t1")
    graph.add_edge("f1", "FOLLOWS", "u1", "u2", {"since": "2020-05-01"})
    return graph


@pytest.fixture()
def social_schema(social_graph):
    return infer_schema(social_graph)


@pytest.fixture()
def sports_graph() -> PropertyGraph:
    """A miniature WWC-like graph for translator/endpoint tests."""
    graph = PropertyGraph("sports")
    graph.add_node("tour", "Tournament", {"id": "T1", "name": "Cup"})
    graph.add_node("m1", "Match", {"id": 1, "date": "2019-06-01",
                                   "stage": "Group"})
    graph.add_node("m2", "Match", {"id": 2, "date": "2019-06-02",
                                   "stage": "Final"})
    graph.add_node("sq1", "Squad", {"id": 1, "name": "A squad"})
    graph.add_node("p1", "Person", {"id": 1, "name": "Ada"})
    graph.add_node("p2", "Person", {"id": 2, "name": "Bea"})
    graph.add_edge("it1", "IN_TOURNAMENT", "m1", "tour")
    graph.add_edge("it2", "IN_TOURNAMENT", "m2", "tour")
    graph.add_edge("fo1", "FOR", "sq1", "tour")
    graph.add_edge("is1", "IN_SQUAD", "p1", "sq1")
    graph.add_edge("is2", "IN_SQUAD", "p2", "sq1")
    graph.add_edge("g1", "SCORED_GOAL", "p1", "m1",
                   {"minute": 12, "penalty": False})
    graph.add_edge("g2", "SCORED_GOAL", "p1", "m1",
                   {"minute": 12, "penalty": True})   # same-minute pair
    graph.add_edge("g3", "SCORED_GOAL", "p2", "m2",
                   {"minute": 40, "penalty": False})
    return graph


@pytest.fixture(scope="session")
def wwc_dataset():
    return load("wwc2019")


@pytest.fixture(scope="session")
def cyber_dataset():
    return load("cybersecurity")


@pytest.fixture(scope="session")
def twitter_dataset():
    return load("twitter")
