"""End-to-end tests for the two mining pipelines on a small dataset."""

import pytest

from repro.datasets.base import Dataset, DirtReport
from repro.graph import PropertyGraph
from repro.mining import (
    PipelineContext,
    RAGPipeline,
    SlidingWindowPipeline,
)


@pytest.fixture(scope="module")
def small_context():
    """A dirty mid-sized graph: enough statements for several windows."""
    graph = PropertyGraph("mini")
    for index in range(60):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
    for index in range(120):
        graph.add_node(f"t{index}", "Tweet", {
            "id": index,
            "text": f"tweet number {index}",
            "created_at": f"2021-02-{(index % 28) + 1:02d}T08:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index % 60}", f"t{index}")
    for index in range(30):
        graph.add_edge(f"f{index}", "FOLLOWS",
                       f"u{index}", f"u{(index + 7) % 60}")
    # dirt: duplicate tweet ids + one self-follow
    graph.update_node("t119", {"id": 0})
    graph.remove_edge("f29")
    graph.add_edge("f29", "FOLLOWS", "u3", "u3")
    dataset = Dataset(graph=graph, true_rules=[], dirt=DirtReport())
    return PipelineContext.build(dataset)


class TestSlidingWindowPipeline:
    def test_run_produces_rules_and_metrics(self, small_context):
        pipeline = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150
        )
        run = pipeline.mine("llama3", "zero_shot")
        assert run.method == "sliding_window"
        assert run.window_count >= 3
        assert run.rule_count >= 3
        assert run.mining_seconds > 0
        assert run.cypher_seconds > 0
        for result in run.results:
            assert result.rule.text
            assert result.outcome.final_query
            assert 0 <= result.metrics.coverage <= 100

    def test_deterministic_across_runs(self, small_context):
        pipeline = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150
        )
        first = pipeline.mine("llama3", "zero_shot")
        second = pipeline.mine("llama3", "zero_shot")
        assert [r.rule.text for r in first.results] == \
            [r.rule.text for r in second.results]
        assert first.mining_seconds == second.mining_seconds

    def test_seed_changes_runs(self, small_context):
        run_a = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150, base_seed=1
        ).mine("mixtral", "zero_shot")
        run_b = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150, base_seed=2
        ).mine("mixtral", "zero_shot")
        # different seeds may change rule selection or faults; at minimum
        # both still produce valid runs
        assert run_a.rule_count >= 1
        assert run_b.rule_count >= 1

    def test_uniqueness_rule_detects_planted_duplicate(self, small_context):
        pipeline = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150
        )
        run = pipeline.mine("llama3", "zero_shot")
        uniq = [
            r for r in run.results
            if r.rule.kind.value == "uniqueness" and r.rule.label == "Tweet"
        ]
        assert uniq
        # 120 tweets, ids 0 and 119 collide -> 118 unique values
        assert uniq[0].metrics.support == 118

    def test_aggregate_metrics_bounds(self, small_context):
        run = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150
        ).mine("mixtral", "few_shot")
        metrics = run.aggregate_metrics()
        assert metrics.rule_count == run.rule_count
        assert 0 <= metrics.avg_coverage <= 100
        assert 0 <= metrics.avg_confidence <= 100


class TestRAGPipeline:
    def test_run_uses_single_call_context(self, small_context):
        pipeline = RAGPipeline(small_context, chunk_tokens=200, top_k=4)
        run = pipeline.mine("llama3", "zero_shot")
        assert run.method == "rag"
        assert run.retrieved_chunks == 4
        assert run.total_chunks > 4
        assert run.rule_count >= 1

    def test_rag_faster_than_swa(self, small_context):
        swa = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150
        ).mine("llama3", "zero_shot")
        rag = RAGPipeline(
            small_context, chunk_tokens=200, top_k=4
        ).mine("llama3", "zero_shot")
        assert rag.mining_seconds < swa.mining_seconds

    def test_rag_sees_fewer_rules_or_equal(self, small_context):
        swa = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150
        ).mine("llama3", "zero_shot")
        rag = RAGPipeline(
            small_context, chunk_tokens=200, top_k=4
        ).mine("llama3", "zero_shot")
        assert rag.rule_count <= swa.rule_count

    def test_index_built_once(self, small_context):
        pipeline = RAGPipeline(small_context, chunk_tokens=200, top_k=4)
        pipeline.mine("llama3", "zero_shot")
        chunks_after_first = pipeline.retriever._chunk_count
        pipeline.mine("mixtral", "zero_shot")
        assert pipeline.retriever._chunk_count == chunks_after_first


class TestTable6Accounting:
    def test_correctness_counts(self, small_context):
        run = SlidingWindowPipeline(
            small_context, window_size=1500, overlap=150
        ).mine("mixtral", "zero_shot")
        assert run.generated_queries == run.rule_count
        assert 0 <= run.correct_queries <= run.generated_queries
        census = run.error_census()
        assert sum(census.values()) == \
            run.generated_queries - run.correct_queries
