"""Semantic tests for rule → Cypher translation.

Each rule kind is translated and *executed* on the sports fixture graph,
asserting the counts against hand-computed ground truth.

The fixture's facts: 2 matches in 1 tournament, 1 squad FOR the
tournament, 2 persons in the squad; goals g1 (p1→m1, minute 12),
g2 (p1→m1, minute 12, duplicate minute) and g3 (p2→m2, minute 40).
"""

import pytest

from repro.cypher import execute
from repro.graph import infer_schema
from repro.rules import (
    ConsistencyRule,
    RuleKind,
    RuleTranslator,
    UntranslatableRuleError,
)


@pytest.fixture()
def translator(sports_graph):
    return RuleTranslator(infer_schema(sports_graph))


def counts(graph, queries):
    return (
        execute(graph, queries.relevant).scalar(),
        execute(graph, queries.body).scalar(),
        execute(graph, queries.satisfy).scalar(),
    )


def test_property_exists(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.PROPERTY_EXISTS, "", label="Match",
        properties=("date", "stage"),
    )
    queries = translator.translate(rule)
    assert counts(sports_graph, queries) == (2, 2, 2)
    sports_graph.remove_node_property("m1", "stage")
    assert counts(sports_graph, queries) == (2, 2, 1)
    violations = execute(sports_graph, queries.violations)
    assert violations.values("id") == [1]


def test_edge_prop_exists(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.EDGE_PROP_EXISTS, "", edge_label="SCORED_GOAL",
        properties=("minute",),
    )
    assert counts(sports_graph, translator.translate(rule)) == (3, 3, 3)


def test_uniqueness(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.UNIQUENESS, "", label="Person", properties=("id",),
    )
    assert counts(sports_graph, translator.translate(rule)) == (2, 2, 2)
    sports_graph.update_node("p2", {"id": 1})
    assert counts(sports_graph, translator.translate(rule)) == (2, 2, 0)


def test_primary_key_orients_against_schema(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.PRIMARY_KEY, "", label="Match", properties=("id",),
        scope_label="Tournament", scope_edge_label="IN_TOURNAMENT",
    )
    queries = translator.translate(rule)
    # the data's direction is Match->Tournament; the pattern must match
    assert "(m:Match)-[:IN_TOURNAMENT]->(s:Tournament)" in queries.satisfy
    assert counts(sports_graph, queries) == (2, 2, 2)
    sports_graph.update_node("m2", {"id": 1})
    assert counts(sports_graph, queries) == (2, 2, 0)


def test_value_domain(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.VALUE_DOMAIN, "", label="Match", properties=("stage",),
        allowed_values=("Group", "Final"),
    )
    assert counts(sports_graph, translator.translate(rule)) == (2, 2, 2)
    sports_graph.update_node("m1", {"stage": "Knockout"})
    relevant, body, satisfy = counts(
        sports_graph, translator.translate(rule)
    )
    assert (relevant, body, satisfy) == (2, 2, 1)


def test_value_format(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.VALUE_FORMAT, "", label="Match", properties=("date",),
        pattern_regex=r"\d{4}-\d{2}-\d{2}",
    )
    assert counts(sports_graph, translator.translate(rule)) == (2, 2, 2)
    sports_graph.update_node("m1", {"date": "June first"})
    assert counts(sports_graph, translator.translate(rule)) == (2, 2, 1)


def test_endpoint(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.ENDPOINT, "", edge_label="SCORED_GOAL",
        src_label="Person", dst_label="Match",
    )
    assert counts(sports_graph, translator.translate(rule)) == (3, 3, 3)


def test_mandatory_edge_incoming(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.MANDATORY_EDGE, "", label="Squad",
        edge_label="IN_SQUAD", src_label="Person", dst_label="Squad",
    )
    assert counts(sports_graph, translator.translate(rule)) == (1, 1, 1)


def test_mandatory_edge_outgoing_with_violation(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.MANDATORY_EDGE, "", label="Person",
        edge_label="SCORED_GOAL", src_label="Person", dst_label="Match",
    )
    queries = translator.translate(rule)
    assert counts(sports_graph, queries) == (2, 2, 2)
    # remove p2's only goal: p2 violates
    sports_graph.remove_edge("g3")
    assert counts(sports_graph, queries) == (2, 2, 1)
    violations = execute(sports_graph, queries.violations)
    assert violations.values("id") == [2]


def test_no_self_loop(sports_graph, translator):
    sports_graph.add_edge("f1", "KNOWS", "p1", "p2")
    sports_graph.add_edge("f2", "KNOWS", "p2", "p2")
    schema = infer_schema(sports_graph)
    rule = ConsistencyRule(
        RuleKind.NO_SELF_LOOP, "", label="Person", edge_label="KNOWS",
    )
    queries = RuleTranslator(schema).translate(rule)
    assert counts(sports_graph, queries) == (2, 2, 1)


def test_temporal_order(sports_graph, translator):
    sports_graph.add_edge("n1", "NEXT", "m2", "m1")  # m2 later than m1
    schema = infer_schema(sports_graph)
    rule = ConsistencyRule(
        RuleKind.TEMPORAL_ORDER, "", edge_label="NEXT",
        src_label="Match", dst_label="Match", time_property="date",
    )
    queries = RuleTranslator(schema).translate(rule)
    assert counts(sports_graph, queries) == (1, 1, 1)
    # flip the dates: violation
    sports_graph.update_node("m2", {"date": "2019-05-01"})
    assert counts(sports_graph, queries) == (1, 1, 0)


def test_temporal_unique_catches_same_minute(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.TEMPORAL_UNIQUE, "", edge_label="SCORED_GOAL",
        src_label="Person", dst_label="Match", time_property="minute",
    )
    queries = translator.translate(rule)
    relevant, body, satisfy = counts(sports_graph, queries)
    # 3 goals; (p1, m1, 12) has two goals -> only (p2, m2, 40) is unique
    assert (relevant, body, satisfy) == (3, 3, 1)
    violations = execute(sports_graph, queries.violations)
    assert violations.rows[0]["occurrences"] == 2


def test_pattern_two_hop(sports_graph, translator):
    rule = ConsistencyRule(
        RuleKind.PATTERN, "", label="Person", edge_label="IN_SQUAD",
        dst_label="Squad", scope_label="Tournament",
        scope_edge_label="FOR",
    )
    queries = translator.translate(rule)
    assert counts(sports_graph, queries) == (2, 2, 2)
    # orphan the squad: both memberships now violate
    sports_graph.remove_edge("fo1")
    assert counts(sports_graph, queries) == (2, 2, 0)


def test_missing_fields_raise(translator):
    with pytest.raises(UntranslatableRuleError):
        translator.translate(
            ConsistencyRule(RuleKind.PROPERTY_EXISTS, "", label="X")
        )
    with pytest.raises(UntranslatableRuleError):
        translator.translate(
            ConsistencyRule(RuleKind.ENDPOINT, "", edge_label="E")
        )


def test_all_queries_lint_clean(sports_graph):
    """Ground-truth translations must pass the linter for real rules."""
    from repro.cypher import lint

    schema = infer_schema(sports_graph)
    translator = RuleTranslator(schema)
    rules = [
        ConsistencyRule(RuleKind.PROPERTY_EXISTS, "", label="Match",
                        properties=("date",)),
        ConsistencyRule(RuleKind.UNIQUENESS, "", label="Person",
                        properties=("id",)),
        ConsistencyRule(RuleKind.ENDPOINT, "", edge_label="SCORED_GOAL",
                        src_label="Person", dst_label="Match"),
        ConsistencyRule(RuleKind.TEMPORAL_UNIQUE, "",
                        edge_label="SCORED_GOAL", src_label="Person",
                        dst_label="Match", time_property="minute"),
    ]
    for rule in rules:
        queries = translator.translate(rule)
        for query in (queries.check, queries.relevant, queries.body,
                      queries.satisfy):
            report = lint(query, schema)
            assert report.is_correct, (rule.kind, query, report.issues)
