"""Perf-regression gate (repro.experiments.perf): profile comparison
semantics plus the CLI exit-code contract against the checked-in
baseline."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro import obs
from repro.experiments.perf import (
    IGNORED_METRICS,
    collect_profile,
    compare,
    perf_main,
    profile_from_trace,
)

BASELINE = Path(__file__).resolve().parent.parent / (
    "benchmarks/baselines/perf_smoke.json"
)


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def make_profile() -> dict:
    return {
        "format": 1,
        "ignore": ["wall.seconds"],
        "counters": {
            "llm.calls": {"model=llama3": 10},
            "wall.seconds": {"": 1.23},
        },
        "histograms": {
            "latency": {"": {"count": 5, "sum": 2.5}},
        },
        "spans": {
            "window": {"count": 4, "sim_seconds": 8.0},
        },
    }


class TestCompare:
    def test_identical_profiles_pass(self):
        regressions, notes = compare(make_profile(), make_profile())
        assert regressions == []
        assert notes == []

    def test_counter_increase_is_a_regression(self):
        current = make_profile()
        current["counters"]["llm.calls"]["model=llama3"] = 12
        regressions, _notes = compare(make_profile(), current)
        assert len(regressions) == 1
        assert "llm.calls" in regressions[0]

    def test_decrease_is_also_a_regression(self):
        # the workload is deterministic: fewer calls means work silently
        # stopped happening, not a speedup
        current = make_profile()
        current["spans"]["window"]["count"] = 2
        regressions, _notes = compare(make_profile(), current)
        assert any("span window" in item for item in regressions)

    def test_missing_metric_is_a_regression(self):
        current = make_profile()
        del current["histograms"]["latency"]
        regressions, _notes = compare(make_profile(), current)
        assert any("missing" in item for item in regressions)

    def test_ignored_metrics_never_gate(self):
        current = make_profile()
        current["counters"]["wall.seconds"][""] = 99.0
        regressions, _notes = compare(make_profile(), current)
        assert regressions == []

    def test_builtin_wall_metrics_always_ignored(self):
        baseline = make_profile()
        current = make_profile()
        for name in IGNORED_METRICS:
            baseline["histograms"][name] = {"": {"count": 1, "sum": 1.0}}
            current["histograms"][name] = {"": {"count": 9, "sum": 9.0}}
        regressions, _notes = compare(baseline, current)
        assert regressions == []

    def test_drift_inside_tolerance_band_passes(self):
        current = make_profile()
        current["histograms"]["latency"][""]["sum"] = 2.52   # +0.8%
        regressions, _notes = compare(
            make_profile(), current, tolerance=0.02
        )
        assert regressions == []
        regressions, _notes = compare(
            make_profile(), current, tolerance=0.001
        )
        assert len(regressions) == 1

    def test_new_metric_is_a_note_not_a_failure(self):
        current = make_profile()
        current["counters"]["shiny.new"] = {"": 1}
        regressions, notes = compare(make_profile(), current)
        assert regressions == []
        assert any("shiny.new" in note for note in notes)


class TestCheckedInBaseline:
    def test_baseline_exists_and_ignores_wall_time(self):
        baseline = json.loads(BASELINE.read_text())
        assert set(IGNORED_METRICS) <= set(baseline["ignore"])
        assert baseline["counters"] and baseline["spans"]

    def test_workload_matches_baseline_exactly(self):
        # the deterministic-simulation claim the whole gate rests on
        baseline = json.loads(BASELINE.read_text())
        current = collect_profile(seed=baseline["seed"])
        regressions, _notes = compare(baseline, current)
        assert regressions == []


class TestPerfMain:
    def test_compare_ok_exits_zero(self):
        assert perf_main(["--compare", str(BASELINE)]) == 0

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        tampered = json.loads(BASELINE.read_text())
        name, series = next(iter(tampered["counters"].items()))
        key = next(iter(series))
        series[key] = series[key] * 2 + 1
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(tampered))
        assert perf_main(["--compare", str(path)]) == 1
        out = capsys.readouterr().out
        assert "PERF GATE FAILED" in out
        assert name in out

    def test_record_then_compare_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        assert perf_main(["--record", str(path)]) == 0
        assert perf_main(["--compare", str(path)]) == 0

    def test_unreadable_baseline_exits_nonzero(self, tmp_path):
        assert perf_main(
            ["--compare", str(tmp_path / "absent.json")]
        ) == 1

    def test_from_trace_profile(self, tmp_path):
        collector = obs.install()
        with obs.span("window"):
            obs.inc("llm.calls", 2, model="llama3")
        obs.write_jsonl(collector, str(tmp_path / "t.jsonl"))
        obs.uninstall()
        profile = profile_from_trace(
            obs.load_trace(str(tmp_path / "t.jsonl"))
        )
        assert profile["counters"]["llm.calls"]["model=llama3"] == 2
        assert profile["spans"]["window"]["count"] == 1
