"""Unit tests for the data-model linter (Table 6 machinery)."""

import pytest

from repro.cypher import ErrorCategory, lint, looks_like_regex


class TestCorrectQueries:
    @pytest.mark.parametrize("query", [
        "MATCH (u:User)-[:POSTS]->(t:Tweet) RETURN count(*) AS c",
        "MATCH (t:Tweet) WHERE t.id IS NOT NULL RETURN t.id AS i",
        "MATCH (u:User) WHERE NOT (u)-[:FOLLOWS]->(u) RETURN u",
        "MATCH (a:Tweet)-[:RETWEETS]->(b:Tweet) "
        "WHERE a.created_at >= b.created_at RETURN count(*) AS c",
    ])
    def test_clean_queries_pass(self, social_schema, query):
        assert lint(query, social_schema).is_correct


class TestSyntaxCategory:
    def test_parse_failure(self, social_schema):
        report = lint("MATCH (u:User RETURN u", social_schema)
        assert report.parse_failed
        assert report.has(ErrorCategory.SYNTAX)

    def test_regex_with_equals(self, social_schema):
        report = lint(
            "MATCH (u:User) WHERE u.name = '^[a-z]+$' RETURN u",
            social_schema,
        )
        assert report.has(ErrorCategory.SYNTAX)

    def test_plain_string_equality_ok(self, social_schema):
        report = lint(
            "MATCH (u:User) WHERE u.name = 'alice' RETURN u",
            social_schema,
        )
        assert report.is_correct


class TestDirectionCategory:
    def test_flipped_direction_flagged(self, social_schema):
        report = lint(
            "MATCH (t:Tweet)-[:POSTS]->(u:User) RETURN count(*) AS c",
            social_schema,
        )
        assert report.has(ErrorCategory.DIRECTION)

    def test_incoming_arrow_also_checked(self, social_schema):
        report = lint(
            "MATCH (u:User)<-[:POSTS]-(t:Tweet) RETURN count(*) AS c",
            social_schema,
        )
        assert report.has(ErrorCategory.DIRECTION)

    def test_unlabeled_endpoint_not_judged(self, social_schema):
        report = lint(
            "MATCH (x)-[:POSTS]->(y) RETURN count(*) AS c", social_schema
        )
        assert report.is_correct

    def test_nonexistent_pair_is_hallucination_not_direction(
        self, social_schema
    ):
        report = lint(
            "MATCH (u:User)-[:RETWEETS]->(t:Tweet) RETURN count(*) AS c",
            social_schema,
        )
        assert report.has(ErrorCategory.HALLUCINATED_PROPERTY)
        assert not report.has(ErrorCategory.DIRECTION)


class TestHallucinationCategory:
    def test_unknown_node_property(self, social_schema):
        report = lint(
            "MATCH (t:Tweet) WHERE t.score > 1 RETURN t", social_schema
        )
        assert report.has(ErrorCategory.HALLUCINATED_PROPERTY)
        assert any(i.subject == "score" for i in report.issues)

    def test_unknown_property_in_pattern_map(self, social_schema):
        report = lint(
            "MATCH (t:Tweet {score: 1}) RETURN t", social_schema
        )
        assert report.has(ErrorCategory.HALLUCINATED_PROPERTY)

    def test_unknown_edge_property(self, social_schema):
        report = lint(
            "MATCH ()-[r:FOLLOWS]->() WHERE r.weight > 1 RETURN r",
            social_schema,
        )
        assert report.has(ErrorCategory.HALLUCINATED_PROPERTY)

    def test_unknown_label(self, social_schema):
        report = lint("MATCH (x:Ghost) RETURN x", social_schema)
        assert report.has(ErrorCategory.HALLUCINATED_PROPERTY)

    def test_unknown_relationship_type(self, social_schema):
        report = lint(
            "MATCH ()-[:LIKES]->() RETURN count(*) AS c", social_schema
        )
        assert report.has(ErrorCategory.HALLUCINATED_PROPERTY)

    def test_property_on_unlabeled_variable_not_judged(self, social_schema):
        report = lint(
            "MATCH (x) WHERE x.anything = 1 RETURN x", social_schema
        )
        assert report.is_correct

    def test_property_valid_on_one_of_two_labels(self, social_schema):
        # 'since' exists on FOLLOWS
        report = lint(
            "MATCH ()-[r:FOLLOWS]->() WHERE r.since > '2019' RETURN r",
            social_schema,
        )
        assert report.is_correct


class TestRegexHeuristic:
    @pytest.mark.parametrize("text,expected", [
        ("^abc$", True),
        ("[a-z]+", True),
        ("a{2,}", True),
        (r"\d+", True),
        ("alice", False),
        ("hello world", False),
    ])
    def test_looks_like_regex(self, text, expected):
        assert looks_like_regex(text) is expected
