"""Unit tests for the §4.4 classification and correction protocol."""

import pytest

from repro.correction import QueryClassifier, QueryCorrector
from repro.cypher import ErrorCategory, execute
from repro.rules import (
    ConsistencyRule,
    RuleKind,
    RuleTranslator,
    to_natural_language,
)


def named(rule: ConsistencyRule) -> ConsistencyRule:
    return ConsistencyRule(
        kind=rule.kind, text=to_natural_language(rule), label=rule.label,
        properties=rule.properties, edge_label=rule.edge_label,
        src_label=rule.src_label, dst_label=rule.dst_label,
        allowed_values=rule.allowed_values,
        pattern_regex=rule.pattern_regex,
        scope_edge_label=rule.scope_edge_label,
        scope_label=rule.scope_label, time_property=rule.time_property,
    )


class TestClassifier:
    def test_correct_query(self, social_schema):
        verdict = QueryClassifier(social_schema).classify(
            "MATCH (t:Tweet) RETURN count(*) AS c"
        )
        assert verdict.is_correct
        assert verdict.primary_category is None

    def test_syntax_primary_over_hallucination(self, social_schema):
        # both a parse problem and, hypothetically, bad props: parse
        # failure short-circuits
        verdict = QueryClassifier(social_schema).classify(
            "MATCH (t:Tweet RETURN t.score"
        )
        assert verdict.primary_category is ErrorCategory.SYNTAX

    def test_direction_primary(self, social_schema):
        verdict = QueryClassifier(social_schema).classify(
            "MATCH (t:Tweet)-[:POSTS]->(u:User) RETURN count(*) AS c"
        )
        assert verdict.primary_category is ErrorCategory.DIRECTION

    def test_direction_before_syntax_is_direction_primary(
        self, social_schema
    ):
        # regression: a wrong-direction pattern that *precedes* the
        # syntax problem in the query text is the primary category —
        # syntax-primary only wins when the parse error comes first
        verdict = QueryClassifier(social_schema).classify(
            "MATCH (t:Tweet)-[:POSTS]->(u:User) "
            "WHERE u.name = '^ali' RETURN count(*) AS c"
        )
        assert verdict.primary_category is ErrorCategory.DIRECTION

    def test_syntax_before_direction_stays_syntax_primary(
        self, social_schema
    ):
        verdict = QueryClassifier(social_schema).classify(
            "MATCH (u:User) WHERE u.name = '^ali' "
            "MATCH (t:Tweet)-[:POSTS]->(v:User) RETURN count(*) AS c"
        )
        assert verdict.primary_category is ErrorCategory.SYNTAX

    def test_parse_failure_stays_syntax_primary(self, social_schema):
        # a genuine parse failure produces no direction findings (there
        # is no AST), so the tie-break cannot demote it
        verdict = QueryClassifier(social_schema).classify(
            "MATCH (t:Tweet)-[:POSTS]->(u:User RETURN t"
        )
        assert verdict.primary_category is ErrorCategory.SYNTAX

    def test_hallucination_category(self, social_schema):
        verdict = QueryClassifier(social_schema).classify(
            "MATCH (t:Tweet) WHERE t.penaltyScore > 0 RETURN t"
        )
        assert verdict.primary_category is (
            ErrorCategory.HALLUCINATED_PROPERTY
        )
        assert verdict.category_name == "hallucinated_property"


class TestCorrector:
    @pytest.fixture()
    def corrector(self, social_schema):
        return QueryCorrector(social_schema)

    def test_correct_query_passes_through(self, corrector):
        rule = named(ConsistencyRule(
            RuleKind.UNIQUENESS, "", label="Tweet", properties=("id",),
        ))
        generated = (
            "MATCH (n:Tweet) WHERE n.id IS NOT NULL "
            "WITH n.id AS value, count(*) AS occurrences "
            "WHERE occurrences = 1 RETURN count(*) AS support"
        )
        outcome = corrector.correct(rule, generated)
        assert outcome.final_query == generated
        assert not outcome.corrected
        assert not outcome.left_uncorrected

    def test_direction_error_regenerated(self, corrector, social_graph):
        rule = named(ConsistencyRule(
            RuleKind.ENDPOINT, "", edge_label="POSTS",
            src_label="User", dst_label="Tweet",
        ))
        flipped = "MATCH (a:Tweet)-[r:POSTS]->(b:User) " \
                  "RETURN count(*) AS support"
        outcome = corrector.correct(rule, flipped)
        assert outcome.corrected
        assert execute(social_graph, outcome.final_query).scalar() == 3

    def test_syntax_error_regenerated(self, corrector, social_graph):
        rule = named(ConsistencyRule(
            RuleKind.PROPERTY_EXISTS, "", label="Tweet",
            properties=("text",),
        ))
        broken = "MATCH (n:Tweet WHERE n.text IS NOT NULL " \
                 "RETURN count(*) AS support"
        outcome = corrector.correct(rule, broken)
        assert outcome.corrected
        assert execute(social_graph, outcome.final_query).scalar() == 3

    def test_hallucination_left_uncorrected(self, corrector):
        rule = named(ConsistencyRule(
            RuleKind.PROPERTY_EXISTS, "", label="Tweet",
            properties=("score",),     # rule-level hallucination
        ))
        generated = (
            "MATCH (n:Tweet) WHERE n.score IS NOT NULL "
            "RETURN count(*) AS support"
        )
        outcome = corrector.correct(rule, generated)
        assert outcome.left_uncorrected
        assert outcome.final_query == generated

    def test_regenerated_query_preserves_rule_hallucination(
        self, corrector
    ):
        """A hallucinated rule with a *syntax* fault gets its syntax
        fixed but keeps the nonexistent property (the paper's rule-level
        vs translation-level distinction)."""
        rule = named(ConsistencyRule(
            RuleKind.PROPERTY_EXISTS, "", label="Tweet",
            properties=("score",),
        ))
        broken = "MATCH (n:Tweet WHERE n.score IS NOT NULL RETURN 1"
        outcome = corrector.correct(rule, broken)
        assert outcome.corrected
        assert "n.score" in outcome.final_query
