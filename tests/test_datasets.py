"""Tests for the three dataset generators (Table 1 + dirt + schemas)."""

import pytest

from repro.cypher import execute
from repro.datasets import DATASET_NAMES, load
from repro.datasets import registry
from repro.graph import compute_statistics, infer_schema
from repro.metrics import evaluate_rule
from repro.rules import RuleTranslator

TABLE1 = {
    "wwc2019": (2468, 14799, 5, 9),
    "cybersecurity": (953, 4838, 7, 16),
    "twitter": (43325, 56493, 6, 8),
}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_table1_sizes_exact(name, request):
    dataset = load(name)
    stats = compute_statistics(dataset.graph)
    assert (stats.nodes, stats.edges, stats.node_labels,
            stats.edge_labels) == TABLE1[name]


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_dirt_report_nonempty(name):
    assert load(name).dirt.total() > 0


def test_registry_cache_and_unknown():
    first = load("wwc2019")
    second = load("wwc2019")
    assert first is second
    fresh = load("wwc2019", cache=False)
    assert fresh is not first
    with pytest.raises(KeyError):
        load("imaginary")


def test_registry_clear_cache():
    first = load("cybersecurity")
    registry.clear_cache()
    second = load("cybersecurity")
    assert first is not second


def test_determinism_same_seed():
    from repro.graph import graph_to_dict

    a = load("cybersecurity", seed=99, cache=False)
    b = load("cybersecurity", seed=99, cache=False)
    assert graph_to_dict(a.graph) == graph_to_dict(b.graph)


def test_different_seed_changes_data():
    a = load("cybersecurity", seed=1, cache=False)
    b = load("cybersecurity", seed=2, cache=False)
    # structure targets identical...
    assert a.graph.node_count() == b.graph.node_count()
    # ...but property values differ
    name_a = a.graph.node("user1").properties["name"]
    name_b = b.graph.node("user1").properties["name"]
    assert name_a != name_b


class TestWWC2019:
    def test_schema_labels(self, wwc_dataset):
        schema = infer_schema(wwc_dataset.graph)
        assert schema.node_labels() == [
            "Match", "Person", "Squad", "Team", "Tournament",
        ]
        assert schema.edge_connects("Match", "IN_TOURNAMENT", "Tournament")
        assert schema.edge_connects("Person", "SCORED_GOAL", "Match")

    def test_true_rules_mostly_hold(self, wwc_dataset):
        translator = RuleTranslator(infer_schema(wwc_dataset.graph))
        for rule in wwc_dataset.true_rules:
            metrics = evaluate_rule(
                wwc_dataset.graph, translator.translate(rule)
            )
            assert metrics.relevant > 0, rule.text
            assert metrics.confidence >= 60.0, (rule.text, metrics)

    def test_dirt_breaks_some_rule(self, wwc_dataset):
        translator = RuleTranslator(infer_schema(wwc_dataset.graph))
        confidences = [
            evaluate_rule(
                wwc_dataset.graph, translator.translate(rule)
            ).confidence
            for rule in wwc_dataset.true_rules
        ]
        assert any(confidence < 100.0 for confidence in confidences)

    def test_same_minute_duplicate_goal_exists(self, wwc_dataset):
        result = execute(
            wwc_dataset.graph,
            "MATCH (p:Person)-[g:SCORED_GOAL]->(m:Match) "
            "WITH p, m, g.minute AS minute, count(*) AS c WHERE c > 1 "
            "RETURN count(*) AS pairs",
        )
        assert result.scalar() >= 1


class TestCybersecurity:
    def test_owned_domain_violation_present(self, cyber_dataset):
        result = execute(
            cyber_dataset.graph,
            "MATCH (u:User) WHERE NOT u.owned IN [true, false] "
            "RETURN count(*) AS bad",
        )
        assert result.scalar() == 5

    def test_group_self_membership_exists(self, cyber_dataset):
        result = execute(
            cyber_dataset.graph,
            "MATCH (g:Group)-[:MEMBER_OF]->(g) RETURN count(*) AS c",
        )
        assert result.scalar() == 1

    def test_domain_names_match_format(self, cyber_dataset):
        result = execute(
            cyber_dataset.graph,
            "MATCH (d:Domain) WHERE d.name =~ "
            "'([a-z0-9-]+\\\\.)+[a-z]{2,}' RETURN count(*) AS ok",
        )
        assert result.scalar() == 2

    def test_malformed_cve_present(self, cyber_dataset):
        result = execute(
            cyber_dataset.graph,
            "MATCH (v:Vulnerability) WHERE NOT v.cve =~ "
            "'CVE-\\\\d{4}-\\\\d{4,5}' RETURN count(*) AS bad",
        )
        assert result.scalar() == 1


class TestTwitter:
    def test_duplicate_tweet_ids(self, twitter_dataset):
        result = execute(
            twitter_dataset.graph,
            "MATCH (t:Tweet) WITH t.id AS id, count(*) AS c WHERE c > 1 "
            "RETURN count(*) AS groups",
        )
        assert result.scalar() >= 1

    def test_self_follows_planted(self, twitter_dataset):
        result = execute(
            twitter_dataset.graph,
            "MATCH (u:User)-[:FOLLOWS]->(u) RETURN count(*) AS c",
        )
        assert result.scalar() == 8

    def test_retweet_temporal_violations(self, twitter_dataset):
        result = execute(
            twitter_dataset.graph,
            "MATCH (a:Tweet)-[:RETWEETS]->(b:Tweet) "
            "WHERE a.created_at < b.created_at RETURN count(*) AS bad",
        )
        assert result.scalar() >= 10

    def test_orphan_tweets(self, twitter_dataset):
        result = execute(
            twitter_dataset.graph,
            "MATCH (t:Tweet) WHERE NOT (t)<-[:POSTS]-(:User) "
            "RETURN count(*) AS orphans",
        )
        assert result.scalar() == 10

    def test_every_tweet_has_id_and_text(self, twitter_dataset):
        result = execute(
            twitter_dataset.graph,
            "MATCH (t:Tweet) WHERE t.id IS NULL OR t.text IS NULL "
            "RETURN count(*) AS missing",
        )
        assert result.scalar() == 0


def test_generation_independent_of_hash_seed():
    """Dataset generation must not leak set-iteration order (which
    varies with PYTHONHASHSEED) into the graph — regression test for a
    bug where WWC2019's dirt placement depended on hash randomisation."""
    import json
    import os
    import subprocess
    import sys

    script = (
        "import json;"
        "from repro.datasets import load;"
        "from repro.graph.io import graph_to_dict;"
        "print(json.dumps(graph_to_dict(load('wwc2019').graph),"
        "sort_keys=True, default=str)[:2000])"
    )
    outputs = set()
    for seed in ("0", "31337"):
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True,
            env={
                "PYTHONHASHSEED": seed,
                "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
                # the subprocess must find 'repro' however this test
                # process found it (src layout, editable install, …)
                "PYTHONPATH": os.pathsep.join(sys.path),
            },
        )
        assert result.returncode == 0, result.stderr
        outputs.add(result.stdout)
    assert len(outputs) == 1
