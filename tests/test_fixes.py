"""Unit + property tests for analyzer-guided fix synthesis
(repro.analysis.fixes): every accepted rewrite must be re-verified by
the analyzer, and a successful repair must leave a sound query."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import FixSynthesizer, StaticAnalyzer, Verdict
from repro.analysis.fixes import DIRECTION_CODE, FIX_KINDS
from repro.graph import PropertyGraph, infer_schema


@pytest.fixture()
def synthesizer(social_schema) -> FixSynthesizer:
    return FixSynthesizer(schema=social_schema)


class TestDropConjunct:
    def test_contradiction_dropped(self, synthesizer):
        fix = synthesizer.repair(
            "MATCH (u:User) WHERE u.id > 100 AND u.id < 0 "
            "RETURN count(*) AS c"
        )
        assert fix is not None
        assert fix.verdict_before is Verdict.UNSAT
        assert not fix.verdict_after.dooms_execution
        after = synthesizer.analyzer.analyze(fix.fixed)
        assert not after.verdict.dooms_execution

    def test_null_comparison_dropped(self, synthesizer):
        fix = synthesizer.repair(
            "MATCH (u:User) WHERE u.id < null RETURN count(*) AS c",
        )
        assert fix is not None
        assert "unsatisfiable-predicate" in fix.addresses
        assert "null" not in fix.fixed.lower()

    def test_healthy_query_needs_no_repair(self, synthesizer):
        assert synthesizer.repair(
            "MATCH (u:User) WHERE u.id > 0 RETURN count(*) AS c"
        ) is None

    def test_parse_error_is_unfixable(self, synthesizer):
        assert synthesizer.repair("MATCH (u:User RETURN u") is None


class TestFlipDirection:
    def test_backward_edge_flipped(self, synthesizer):
        candidates = synthesizer.synthesize(
            "MATCH (t:Tweet)-[:POSTS]->(u:User) RETURN count(*) AS c"
        )
        kinds = [c.kind for c in candidates]
        assert "flip-direction" in kinds
        flipped = candidates[kinds.index("flip-direction")]
        assert DIRECTION_CODE in flipped.addresses
        assert synthesizer._bad_triple_count(flipped.fixed) == 0

    def test_correct_direction_untouched(self, synthesizer):
        candidates = synthesizer.synthesize(
            "MATCH (u:User)-[:POSTS]->(t:Tweet) RETURN count(*) AS c"
        )
        assert all(c.kind != "flip-direction" for c in candidates)


class TestRetypeComparison:
    def test_stringified_number_recoerced(self, synthesizer):
        fix = synthesizer.repair(
            "MATCH (u:User) WHERE u.id = '1' RETURN count(*) AS c",
            target_codes=frozenset({"type-confused-comparison"}),
        )
        assert fix is not None
        assert fix.kind == "retype-comparison"
        assert "'1'" not in fix.fixed
        after = synthesizer.analyzer.analyze(fix.fixed)
        assert not after.has("type-confused-comparison")

    def test_warn_defect_ignored_without_target_codes(self, synthesizer):
        # WARN-level confusion does not doom execution; repair() only
        # chases it when the caller opts in via target_codes
        assert synthesizer.repair(
            "MATCH (u:User) WHERE u.id = '1' RETURN count(*) AS c"
        ) is None


class TestReorderBinding:
    def test_conjunct_moved_after_binding(self, synthesizer):
        fix = synthesizer.repair(
            "MATCH (u:User) WHERE t.id = 10 "
            "MATCH (t:Tweet) RETURN count(*) AS c",
            target_codes=frozenset({"use-before-bind"}),
        )
        assert fix is not None
        assert fix.kind == "reorder-binding"
        after = synthesizer.analyzer.analyze(fix.fixed)
        assert not after.has("use-before-bind")


class TestAccounting:
    def test_counters_accumulate_and_drain(self, synthesizer):
        synthesizer.repair(
            "MATCH (u:User) WHERE u.id > 100 AND u.id < 0 "
            "RETURN count(*) AS c"
        )
        drained = synthesizer.drain_counters()
        assert any(event == "accepted" for event, _kind in drained)
        assert all(kind in FIX_KINDS or kind == "composite"
                   for _event, kind in drained)
        assert synthesizer.drain_counters() == {}

    def test_fix_candidate_roundtrips_to_dict(self, synthesizer):
        fix = synthesizer.repair(
            "MATCH (u:User) WHERE u.id > 100 AND u.id < 0 "
            "RETURN count(*) AS c"
        )
        payload = fix.to_dict()
        assert payload["verdict_before"] == "unsat"
        assert payload["fixed"] == fix.fixed
        assert payload["addresses"] == list(fix.addresses)


# ----------------------------------------------------------------------
# property-based soundness: accepted fixes re-analyze clean
# ----------------------------------------------------------------------
def _bounded_graph() -> PropertyGraph:
    graph = PropertyGraph("hypo")
    for index in range(6):
        graph.add_node(f"n{index}", "Item", {
            "v": index, "name": f"item{index}",
        })
    graph.add_edge("e0", "NEXT", "n0", "n1")
    return graph


_SCHEMA = infer_schema(_bounded_graph())

_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
_values = st.one_of(
    st.integers(min_value=-5, max_value=10),
    st.sampled_from(["'0'", "'item1'", "null"]),
)


@st.composite
def _conjuncts(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    parts = []
    for _ in range(count):
        op = draw(_ops)
        value = draw(_values)
        parts.append(f"n.v {op} {value}")
    return " AND ".join(parts)


@given(_conjuncts())
@settings(max_examples=60, deadline=None)
def test_accepted_fixes_never_worsen_the_query(where):
    """Soundness: every candidate parses and is no more severe than the
    original; every successful repair() leaves a satisfiable query."""
    synthesizer = FixSynthesizer(schema=_SCHEMA)
    query = f"MATCH (n:Item) WHERE {where} RETURN count(*) AS c"
    report = synthesizer.analyzer.analyze(query)
    for candidate in synthesizer.synthesize(query, report):
        after = synthesizer.analyzer.analyze(candidate.fixed)
        assert not after.parse_failed
        assert after.verdict.severity <= report.verdict.severity

    fix = synthesizer.repair(
        query,
        target_codes=frozenset({
            "type-confused-comparison", "comparison-with-null",
        }),
    )
    if fix is not None:
        final = synthesizer.analyzer.analyze(fix.fixed)
        assert not final.verdict.dooms_execution
        assert not final.has("type-confused-comparison")
        assert not final.has("comparison-with-null")
