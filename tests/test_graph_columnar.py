"""Unit tests for the columnar CSR graph core.

Covers compilation parity against the object store, epoch caching,
incremental maintenance from the change log (including the fallback to
a full recompile when the delta budget is blown), catalog derivation,
the checksummed wire artifact, the ``columnar=False`` escape hatch, the
O(1) ``order()``/``size()`` accessors and the EXPLAIN path line.
"""

import json

import pytest

from repro import obs
from repro.cypher import Executor, clear_plan_caches, explain, parse
from repro.graph import (
    ColumnarArtifactError,
    PropertyGraph,
    compile_graph,
)
from repro.graph.columnar import from_payload, to_payload
from repro.graph.statistics import build_catalog


def sample_graph(*, columnar: bool = True) -> PropertyGraph:
    graph = PropertyGraph("csr-sample", columnar=columnar)
    graph.add_node("a", "User", {"id": 1, "name": "alice"})
    graph.add_node("b", "User", {"id": 2, "name": "bob"})
    graph.add_node("c", ("User", "Admin"), {"id": 3})
    graph.add_node("t", "Tweet", {"id": 10, "text": "héllo", "nil": None})
    graph.add_edge("e1", "POSTS", "a", "t")
    graph.add_edge("e2", "FOLLOWS", "a", "b", {"since": 2020})
    graph.add_edge("e3", "FOLLOWS", "b", "a")
    graph.add_edge("e4", "FOLLOWS", "a", "c")
    graph.add_edge("loop", "FOLLOWS", "c", "c")   # self-loop
    return graph


@pytest.fixture()
def collector():
    installed = obs.install()
    yield installed
    obs.uninstall()


def counter(collector, name: str) -> float:
    return collector.metrics.counter(name).value()


def assert_snapshot_matches_store(snapshot, graph) -> None:
    """Adjacency, labels, properties and indexes agree with the store."""
    assert snapshot.node_count() == graph.order()
    assert snapshot.edge_count() == graph.size()
    for node in graph.nodes():
        nid = snapshot.node_int(node.id)
        assert snapshot.node_objs[nid] is node
        for direction, walker in ((True, graph.out_edges),
                                  (False, graph.in_edges)):
            expected = [edge.id for edge in walker(node.id)]
            got = [
                snapshot.edge_objs[eid].id
                for eid, _ in snapshot.adjacency(nid, None, direction)
            ]
            assert got == expected
            for etype in graph.edge_labels():
                code = snapshot.single_type_code(etype)
                typed = [
                    snapshot.edge_objs[eid].id
                    for eid, _ in snapshot.adjacency(nid, code, direction)
                ]
                assert typed == [e.id for e in walker(node.id, etype)]
    for label in graph.node_labels():
        got = {snapshot.node_objs[nid].id
               for nid in snapshot.label_candidates(label)}
        assert got == {node.id for node in graph.nodes(label)}


class TestCompile:
    def test_compile_parity(self):
        graph = sample_graph()
        assert_snapshot_matches_store(graph.columnar(), graph)

    def test_property_columns(self):
        graph = sample_graph()
        snapshot = graph.columnar()
        nid = snapshot.node_int("t")
        assert snapshot.node_prop(nid, "text") == "héllo"
        assert snapshot.node_prop(nid, "nil") is None
        assert snapshot.node_prop(nid, "missing") is None
        eid = snapshot.edge_index["e2"]
        assert snapshot.edge_prop(eid, "since") == 2020

    def test_index_candidates_match_nodes_where(self):
        from repro.graph.store import property_index_key

        graph = sample_graph()
        snapshot = graph.columnar()
        got = {
            snapshot.node_objs[nid].id
            for nid in snapshot.index_candidates(
                "User", "id", property_index_key(2)
            )
        }
        assert got == {n.id for n in graph.nodes_where("User", "id", 2)}

    def test_epoch_caching(self):
        graph = sample_graph()
        first = graph.columnar()
        assert graph.columnar() is first          # same epoch, cached
        graph.update_node("a", {"name": "alicia"})
        second = graph.columnar()
        assert second is not first
        assert graph.columnar() is second

    def test_empty_graph_compiles(self):
        graph = PropertyGraph("empty")
        snapshot = graph.columnar()
        assert snapshot.node_count() == 0
        assert snapshot.edge_count() == 0


class TestIncremental:
    def test_small_delta_goes_incremental(self, collector):
        graph = sample_graph()
        graph.columnar()
        graph.add_node("d", "User", {"id": 4})
        graph.add_edge("e5", "FOLLOWS", "d", "a")
        graph.update_node("b", {"name": "bobby"})
        graph.remove_edge("e3")
        snapshot = graph.columnar()
        assert snapshot.origin == "incremental"
        assert counter(collector, "graph.csr.incremental_updates") == 1
        assert_snapshot_matches_store(snapshot, graph)

    def test_incremental_queries_match_fresh_compile(self):
        graph = sample_graph()
        graph.columnar()
        graph.remove_node("t")                    # cascades to e1
        graph.add_node("x", "Admin", {"id": 9})
        graph.add_edge("e6", "POSTS", "b", "x")
        incremental = graph.columnar()
        assert incremental.origin == "incremental"
        assert_snapshot_matches_store(incremental, graph)
        fresh = compile_graph(graph)
        assert incremental.node_count() == fresh.node_count()
        assert incremental.edge_count() == fresh.edge_count()

    def test_budget_blown_falls_back_to_full(self, collector):
        graph = sample_graph()
        graph.columnar()
        compiles_before = counter(collector, "graph.csr.compiles")
        for index in range(70):                   # budget is max(64, size//4)
            graph.add_node(f"bulk{index}", "User", {"id": 100 + index})
        snapshot = graph.columnar()
        assert snapshot.origin == "full"
        assert counter(collector, "graph.csr.incremental_updates") == 0
        assert counter(collector, "graph.csr.compiles") == compiles_before + 1
        assert_snapshot_matches_store(snapshot, graph)

    def test_ring_loss_falls_back_to_full(self):
        from repro.graph.changelog import GraphChangeLog

        graph = sample_graph()
        graph.columnar()
        # replace the private log with a tiny ring so evictions happen
        graph._columnar_log.detach(graph)
        graph._columnar_log = GraphChangeLog(capacity=2).attach(graph)
        for index in range(5):
            graph.update_node("a", {"name": f"v{index}"})
        snapshot = graph.columnar()
        assert snapshot.origin == "full"
        assert_snapshot_matches_store(snapshot, graph)

    def test_mid_batch_snapshot_is_uncached(self):
        graph = sample_graph()
        cached = graph.columnar()
        with graph.batch():
            graph.add_node("y", "User", {"id": 50})
            inside = graph.columnar()
            assert inside is not cached
            assert inside.node_count() == graph.order()
        after = graph.columnar()
        assert after is not inside
        assert after.node_count() == graph.order()


class TestCatalog:
    def test_catalog_matches_legacy_rescan(self):
        graph = sample_graph()
        columnar = graph.catalog()
        legacy = build_catalog(graph)
        assert columnar.node_count == legacy.node_count
        assert columnar.edge_count == legacy.edge_count
        assert columnar.label_counts == legacy.label_counts
        assert columnar.edge_stats == legacy.edge_stats
        assert set(columnar.property_sketches) == set(
            legacy.property_sketches
        )
        for key, sketch in legacy.property_sketches.items():
            other = columnar.property_sketches[key]
            assert other.present == sketch.present
            assert other.distinct == sketch.distinct
            assert dict(other.top) == dict(sketch.top)

    def test_catalog_maintained_incrementally(self, collector):
        graph = sample_graph()
        graph.catalog()
        graph.add_node("d", "User", {"id": 4})
        graph.add_edge("e5", "POSTS", "d", "t")
        updated = graph.catalog()
        assert counter(
            collector, "graph.catalog.incremental_updates"
        ) == 1
        legacy = build_catalog(graph)
        assert updated.label_counts == legacy.label_counts
        assert updated.edge_stats == legacy.edge_stats
        assert updated.node_count == legacy.node_count
        for key, sketch in legacy.property_sketches.items():
            other = updated.property_sketches[key]
            assert (other.present, other.distinct) == (
                sketch.present, sketch.distinct,
            )
            assert dict(other.top) == dict(sketch.top)


class TestOrderSize:
    def test_order_and_size_track_mutations(self):
        graph = sample_graph()
        assert graph.order() == 4
        assert graph.size() == 5
        graph.add_node("d", "User", {})
        graph.add_edge("e5", "POSTS", "d", "t")
        assert (graph.order(), graph.size()) == (5, 6)
        graph.remove_node("d")                    # cascades to e5
        assert (graph.order(), graph.size()) == (4, 5)
        assert len(graph) == graph.order()

    def test_order_size_constant_time(self):
        """No iteration: results come straight off the dict sizes."""
        graph = PropertyGraph("big")
        for index in range(500):
            graph.add_node(f"n{index}", "N", {})
        assert graph.order() == 500
        assert graph.size() == 0


class TestArtifact:
    def test_round_trip_through_json(self):
        graph = sample_graph()
        payload = json.loads(json.dumps(to_payload(graph.columnar())))
        restored = from_payload(payload, graph)
        assert restored.origin == "artifact"
        assert_snapshot_matches_store(restored, graph)

    def test_corrupt_checksum_rejected(self):
        graph = sample_graph()
        payload = to_payload(graph.columnar())
        payload["checksum"] = "0" * 64
        with pytest.raises(ColumnarArtifactError):
            from_payload(payload, graph)

    def test_wrong_graph_rejected(self):
        graph = sample_graph()
        payload = to_payload(graph.columnar())
        other = PropertyGraph("other")
        other.add_node("zz", "User", {})
        with pytest.raises(ColumnarArtifactError):
            from_payload(payload, other)

    def test_overlay_snapshot_not_serialisable(self):
        graph = sample_graph()
        graph.columnar()
        graph.update_node("a", {"name": "alicia"})
        snapshot = graph.columnar()
        assert snapshot.origin == "incremental"
        with pytest.raises(ColumnarArtifactError):
            to_payload(snapshot)
        # a fresh compile of the same contents serialises fine
        to_payload(compile_graph(graph))

    def test_adopt_skips_recompile(self, collector):
        graph = sample_graph()
        payload = to_payload(compile_graph(graph))
        target = sample_graph()
        target.adopt_columnar(from_payload(payload, target))
        adopted = target.columnar()
        assert adopted.origin == "artifact"
        assert counter(collector, "graph.csr.compiles") == 0
        # mutations after adoption go incremental off the artifact
        target.update_node("a", {"name": "post-adopt"})
        assert target.columnar().origin == "incremental"


class TestEscapeHatch:
    def test_columnar_disabled_graph_compiles_throwaway(self):
        graph = sample_graph(columnar=False)
        assert graph.columnar_enabled is False
        first = graph.columnar()
        second = graph.columnar()
        assert first is not second                # never cached
        assert_snapshot_matches_store(first, graph)

    def test_executor_escape_hatch_uses_legacy_matcher(self, collector):
        graph = sample_graph()
        clear_plan_caches()
        query = parse("MATCH (a:User)-[:FOLLOWS]->(b) RETURN count(*) AS c")
        fast = Executor(graph, columnar=True).run(query)
        assert counter(collector, "matcher.csr.frontier_expansions") > 0
        before = counter(collector, "matcher.csr.frontier_expansions")
        slow = Executor(graph, columnar=False).run(query)
        assert counter(
            collector, "matcher.csr.frontier_expansions"
        ) == before                               # legacy path: no frontiers
        assert fast.rows == slow.rows


class TestExplain:
    def test_explain_reports_columnar_path(self):
        graph = sample_graph()
        clear_plan_caches()
        text = explain(
            parse("MATCH (a:User)-[:FOLLOWS]->(b) RETURN a.id AS i"), graph
        )
        assert "path: columnar csr frontier" in text

    def test_explain_reports_legacy_for_var_length(self):
        graph = sample_graph()
        clear_plan_caches()
        text = explain(
            parse("MATCH (a)-[:FOLLOWS*1..2]->(b) RETURN count(*) AS c"),
            graph,
        )
        assert "path: legacy object walk" in text

    def test_explain_reports_legacy_when_disabled(self):
        graph = sample_graph(columnar=False)
        clear_plan_caches()
        text = explain(
            parse("MATCH (a:User)-[:FOLLOWS]->(b) RETURN a.id AS i"), graph
        )
        assert "path: legacy object walk" in text
