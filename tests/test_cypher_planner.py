"""Unit tests for the cost-based query planner.

Covers the full stack it sits on: property indexes and epochs on the
store, catalog estimates, seed selection, join ordering, predicate
pushdown safety, the plan cache, EXPLAIN rendering and the executor's
escape hatch.
"""

import pytest

from repro import obs
from repro.cypher import (
    Executor,
    clear_plan_caches,
    default_planner,
    execute,
    explain,
    parse,
)
from repro.cypher.matcher import MatchStats, match_patterns
from repro.cypher.planner import PlanCache, QueryPlanner
from repro.graph import PropertyGraph
from repro.graph.store import property_index_key


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_plan_caches()
    yield
    clear_plan_caches()


def team_graph(people=40, teams=4):
    g = PropertyGraph("teams")
    for t in range(teams):
        g.add_node(f"t{t}", "Team", {"name": f"team{t}"})
    for p in range(people):
        g.add_node(
            f"p{p}", "Person",
            {"name": f"name{p}", "age": 20 + (p % 5)},
        )
        g.add_edge(f"m{p}", "MEMBER_OF", f"p{p}", f"t{p % teams}")
    return g


def run_both(graph, text, parameters=None):
    """(planned rows, unplanned rows) for one query text."""
    query = parse(text)
    planned = Executor(graph, parameters).run(query)
    unplanned = Executor(graph, parameters, planner=None).run(query)
    return planned, unplanned


# ----------------------------------------------------------------------
# store: property index + epochs
# ----------------------------------------------------------------------
class TestPropertyIndex:
    def test_nodes_where_finds_by_value(self):
        g = team_graph()
        hits = [n.id for n in g.nodes_where("Person", "name", "name7")]
        assert hits == ["p7"]
        assert g.count_where("Person", "name", "name7") == 1

    def test_index_tracks_updates_and_removals(self):
        g = team_graph()
        g.update_node("p7", {"name": "renamed"})
        assert g.count_where("Person", "name", "name7") == 0
        assert [n.id for n in g.nodes_where("Person", "name", "renamed")] \
            == ["p7"]
        g.remove_node_property("p7", "name")
        assert g.count_where("Person", "name", "renamed") == 0
        g.remove_node("p6")
        assert g.count_where("Person", "name", "name6") == 0

    def test_index_distinguishes_bool_from_int(self):
        # Cypher: true <> 1, but 2 = 2.0
        g = PropertyGraph()
        g.add_node("a", "N", {"v": True})
        g.add_node("b", "N", {"v": 1})
        g.add_node("c", "N", {"v": 1.0})
        assert [n.id for n in g.nodes_where("N", "v", True)] == ["a"]
        assert [n.id for n in g.nodes_where("N", "v", 1)] == ["b", "c"]
        assert [n.id for n in g.nodes_where("N", "v", 1.0)] == ["b", "c"]

    def test_unindexable_values_yield_nothing(self):
        g = PropertyGraph()
        g.add_node("a", "N", {"v": [1, 2]})
        assert list(g.nodes_where("N", "v", [1, 2])) == []
        assert property_index_key([1, 2]) is None
        assert property_index_key(None) is None
        assert property_index_key(float("nan")) is None

    def test_epoch_bumps_on_every_mutation(self):
        g = PropertyGraph()
        seen = {g.epoch}

        g.add_node("a", "N")
        seen.add(g.epoch)
        g.add_node("b", "N")
        seen.add(g.epoch)
        g.add_edge("e", "R", "a", "b")
        seen.add(g.epoch)
        g.update_node("a", {"x": 1})
        seen.add(g.epoch)
        g.update_edge("e", {"y": 2})
        seen.add(g.epoch)
        g.remove_node_property("a", "x")
        seen.add(g.epoch)
        g.remove_edge("e")
        seen.add(g.epoch)
        g.remove_node("b")
        seen.add(g.epoch)
        assert len(seen) == 9  # strictly monotonic: all distinct

    def test_catalog_cached_per_epoch(self):
        g = team_graph()
        first = g.catalog()
        assert g.catalog() is first
        g.add_node("x", "Person")
        assert g.catalog() is not first

    def test_fingerprints_unique_per_graph(self):
        a, b = PropertyGraph(), PropertyGraph()
        assert a.fingerprint() != b.fingerprint()


# ----------------------------------------------------------------------
# catalog estimates
# ----------------------------------------------------------------------
class TestCatalog:
    def test_label_and_property_estimates(self):
        g = team_graph(people=40, teams=4)
        catalog = g.catalog()
        assert catalog.label_count("Person") == 40
        assert catalog.estimate_label_scan(("Person",)) == 40.0
        # age cycles 20..24 over 40 people: 8 nodes per value, and the
        # MCV sketch (width 8) holds all 5 values exactly
        assert catalog.estimate_property_eq("Person", "age", 21) == 8.0
        assert catalog.estimate_property_eq("Person", "name", "name3") == \
            pytest.approx(1.0)
        assert catalog.estimate_property_eq("Person", "missing", 1) == 0.0

    def test_fanout_averages(self):
        g = team_graph(people=40, teams=4)
        catalog = g.catalog()
        # every person has exactly one outgoing MEMBER_OF edge
        assert catalog.avg_fanout(("MEMBER_OF",), "out") == 1.0
        # each team receives 10
        assert catalog.avg_fanout(("MEMBER_OF",), "in") == 10.0
        assert catalog.avg_fanout(("MEMBER_OF",), "any") == 11.0
        assert catalog.avg_fanout(("NOPE",), "out") == 0.0


# ----------------------------------------------------------------------
# planning decisions
# ----------------------------------------------------------------------
class TestPlanChoices:
    def test_equality_conjunct_becomes_index_seed(self):
        g = team_graph()
        plan = default_planner().plan(
            parse("MATCH (p:Person) WHERE p.name = 'name3' RETURN p"), g
        )
        step = plan.clause_plan(0, 0).steps[0]
        assert step.seed.kind == "index"
        assert (step.seed.label, step.seed.key) == ("Person", "name")

    def test_inline_property_map_becomes_index_seed(self):
        g = team_graph()
        plan = default_planner().plan(
            parse("MATCH (p:Person {name: 'name3'}) RETURN p"), g
        )
        assert plan.clause_plan(0, 0).steps[0].seed.kind == "index"

    def test_cheaper_pattern_runs_first(self):
        g = team_graph()
        text = (
            "MATCH (p:Person), (t:Team {name: 'team1'}) "
            "RETURN p.name AS n, t.name AS t"
        )
        plan = default_planner().plan(parse(text), g)
        steps = plan.clause_plan(0, 0).steps
        # the 1-row indexed Team lookup goes before the 40-row scan
        assert steps[0].source_index == 1
        assert steps[1].source_index == 0

    def test_unnamed_pattern_reverses_toward_selective_end(self):
        g = team_graph()
        text = (
            "MATCH (p:Person)-[:MEMBER_OF]->(t:Team {name: 'team2'}) "
            "RETURN count(*) AS c"
        )
        plan = default_planner().plan(parse(text), g)
        step = plan.clause_plan(0, 0).steps[0]
        assert step.reversed
        assert step.seed.kind == "index"
        assert step.pattern.elements[0].labels == ("Team",)

    def test_named_path_is_never_reversed(self):
        g = team_graph()
        text = (
            "MATCH q = (p:Person)-[:MEMBER_OF]->(t:Team {name: 'team2'}) "
            "RETURN q"
        )
        plan = default_planner().plan(parse(text), g)
        assert not plan.clause_plan(0, 0).steps[0].reversed

    def test_safe_conjunct_is_pushed_unsafe_stays_residual(self):
        g = team_graph()
        text = (
            "MATCH (p:Person)-[:MEMBER_OF]->(t:Team) "
            "WHERE p.age > 21 AND size(t.name) > 2 RETURN p"
        )
        plan = default_planner().plan(parse(text), g)
        clause_plan = plan.clause_plan(0, 0)
        pushed = [
            predicate
            for step in clause_plan.steps
            for predicates in step.checks.values()
            for predicate in predicates
        ]
        assert len(pushed) == 1  # the comparison; size() may raise
        assert clause_plan.residual is not None

    def test_parameter_conjuncts_are_never_pushed(self):
        g = team_graph()
        plan = default_planner().plan(
            parse("MATCH (p:Person) WHERE p.age > $min RETURN p"), g
        )
        clause_plan = plan.clause_plan(0, 0)
        assert not any(step.checks for step in clause_plan.steps)
        assert clause_plan.residual is not None

    def test_bound_variable_seeds_from_binding(self):
        g = team_graph()
        text = (
            "MATCH (t:Team {name: 'team0'}) "
            "MATCH (t)<-[:MEMBER_OF]-(p:Person) RETURN count(p) AS c"
        )
        plan = default_planner().plan(parse(text), g)
        assert plan.clause_plan(0, 1).steps[0].seed.kind == "bound"


# ----------------------------------------------------------------------
# plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_same_query_and_epoch_hits(self):
        g = team_graph()
        planner = QueryPlanner(cache=PlanCache())
        query = parse("MATCH (p:Person) RETURN p")
        first = planner.plan(query, g)
        assert planner.plan(query, g) is first
        assert planner.cache.stats()["hits"] == 1

    def test_mutation_invalidates(self):
        g = team_graph()
        planner = QueryPlanner(cache=PlanCache())
        query = parse("MATCH (p:Person) RETURN p")
        first = planner.plan(query, g)
        g.add_node("extra", "Person")
        assert planner.plan(query, g) is not first

    def test_alpha_variants_share_signature_but_not_plans(self):
        g = team_graph()
        planner = QueryPlanner(cache=PlanCache())
        one = parse("MATCH (a:Person) RETURN a")
        other = parse("MATCH (b:Person) RETURN b")
        plan_one = planner.plan(one, g)
        plan_other = planner.plan(other, g)
        assert plan_one.signature == plan_other.signature
        assert plan_one is not plan_other
        # both stay cached under the shared key
        assert planner.plan(one, g) is plan_one
        assert planner.plan(other, g) is plan_other

    def test_lru_eviction(self):
        g = team_graph()
        planner = QueryPlanner(cache=PlanCache(maxsize=2))
        queries = [
            parse(f"MATCH (p:Person) RETURN p.name AS c{i}")
            for i in range(3)
        ]
        for query in queries:
            planner.plan(query, g)
        assert planner.cache.stats()["entries"] == 2


# ----------------------------------------------------------------------
# end-to-end: planned == unplanned
# ----------------------------------------------------------------------
class TestPlannedExecution:
    def test_results_identical_with_where(self):
        g = team_graph()
        planned, unplanned = run_both(
            g,
            "MATCH (p:Person)-[:MEMBER_OF]->(t:Team) "
            "WHERE p.age = 22 AND t.name <> 'team0' "
            "RETURN p.name AS name ORDER BY name",
        )
        assert planned.rows == unplanned.rows
        assert len(planned.rows) > 0

    def test_parameters_match_with_index_seed_fallback(self):
        g = team_graph()
        planned, unplanned = run_both(
            g,
            "MATCH (p:Person) WHERE p.name = $n RETURN p.age AS age",
            {"n": "name9"},
        )
        assert planned.rows == unplanned.rows == [{"age": 24}]

    def test_self_loop_var_length(self):
        g = PropertyGraph()
        g.add_node("a", "N")
        g.add_node("b", "N")
        g.add_edge("loop", "R", "a", "a")
        g.add_edge("ab", "R", "a", "b")
        planned, unplanned = run_both(
            g, "MATCH (x:N)-[:R*1..3]->(y) RETURN count(*) AS c"
        )
        assert planned.scalar() == unplanned.scalar()

    def test_optional_match_padding(self):
        g = team_graph()
        planned, unplanned = run_both(
            g,
            "MATCH (t:Team) OPTIONAL MATCH (t)<-[:MEMBER_OF]-"
            "(p:Person {name: 'nobody'}) RETURN t.name AS t, p AS p",
        )
        assert planned.rows == unplanned.rows
        assert all(row["p"] is None for row in planned.rows)

    def test_union_branches_plan_independently(self):
        g = team_graph()
        planned, unplanned = run_both(
            g,
            "MATCH (p:Person {name: 'name1'}) RETURN p.name AS n "
            "UNION MATCH (t:Team {name: 'team1'}) RETURN t.name AS n",
        )
        assert planned.rows == unplanned.rows

    def test_raising_where_still_raises(self):
        from repro.cypher.errors import CypherError

        g = team_graph()
        text = "MATCH (p:Person) WHERE p.age / 0 > 1 RETURN p"
        with pytest.raises(CypherError):
            Executor(g).run(parse(text))
        with pytest.raises(CypherError):
            Executor(g, planner=None).run(parse(text))

    def test_escape_hatch_disables_planning(self):
        g = team_graph()
        executor = Executor(g, planner=None)
        assert executor.planner is None
        result = executor.run(parse("MATCH (p:Person) RETURN count(*) AS c"))
        assert result.scalar() == 40

    def test_planner_counters_emitted(self):
        collector = obs.install()
        try:
            g = team_graph()
            execute(g, "MATCH (p:Person {name: 'name5'}) RETURN p")
            plans = collector.metrics.counter("planner.plans").total()
            seeds = collector.metrics.counter("matcher.seeds").total()
        finally:
            obs.uninstall()
        assert plans == 1
        assert seeds == 1  # index seed enumerates exactly one node


# ----------------------------------------------------------------------
# pushdown cuts expansions
# ----------------------------------------------------------------------
class TestWorkReduction:
    def test_index_seed_beats_label_scan(self):
        g = team_graph(people=100, teams=5)
        query = parse(
            "MATCH (p:Person)-[:MEMBER_OF]->(t:Team) "
            "WHERE p.name = 'name42' RETURN t.name AS t"
        )
        on, off = MatchStats(), MatchStats()
        plan = default_planner().plan(query, g)
        clause = query.clauses[0]
        rows_on = list(match_patterns(
            g, clause.patterns, {}, plan=plan.clause_plan(0, 0),
            stats=on,
        ))
        rows_off = list(match_patterns(
            g, clause.patterns, {}, stats=off
        ))
        assert len(rows_on) == 1
        assert len(rows_off) == 100  # WHERE not applied on the off path
        assert off.seeds >= 2 * on.seeds
        assert off.expansions >= 2 * on.expansions


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------
class TestExplain:
    def test_renders_seed_pushdown_and_estimates(self):
        g = team_graph()
        text = (
            "MATCH (p:Person)-[:MEMBER_OF]->(t:Team) "
            "WHERE p.name = 'name3' AND size(t.name) > 1 RETURN p"
        )
        rendered = explain(parse(text), g)
        assert "QUERY PLAN" in rendered
        assert "signature=cq1:" in rendered
        assert "property index Person.name = 'name3'" in rendered
        assert "residual filter:" in rendered
        assert "estimated rows" in rendered

    def test_no_match_clauses(self):
        g = team_graph()
        rendered = explain(parse("RETURN 1 AS one"), g)
        assert "nothing to plan" in rendered

    def test_cli_explain_subcommand(self, capsys):
        from repro.experiments.cli import main

        code = main([
            "explain", "--dataset", "wwc2019",
            "MATCH (p:Person)-[:MEMBER_OF]->(s:Squad) RETURN count(*) AS c",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "QUERY PLAN" in out
