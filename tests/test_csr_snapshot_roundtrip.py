"""Dataset snapshots carrying compiled CSR artifacts.

The gateway embeds the compiled columnar snapshot in the dataset
snapshot file (``save_dataset(..., include_csr=True)``) so worker
processes adopt it instead of recompiling on their hot path.  These
tests cover the full loop: artifact embedded and checksummed on save,
adopted on load (counter ``graph.csr.artifact_loads``), identical
fingerprints and byte-identical mining results in a real worker-style
subprocess, and the corrupt-artifact path falling back to a lazy
recompile instead of failing the load.
"""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.datasets.snapshot import load_dataset, save_dataset
from repro.gateway.worker import GatewayWorker
from repro.graph import PropertyGraph
from repro.mining.persistence import run_to_dict
from repro.rules.model import ConsistencyRule, RuleKind
from repro.service import MiningService, graph_fingerprint

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def tiny_dataset(name: str = "tiny") -> Dataset:
    graph = PropertyGraph(name)
    for index in range(4):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    rule = ConsistencyRule(
        kind=RuleKind.UNIQUENESS,
        text="Each tweet node should have a unique id property",
        label="Tweet", properties=("id",), provenance="fixture",
    )
    return Dataset(graph=graph, true_rules=[rule], dirt=DirtReport())


def mine_once(dataset: Dataset) -> dict:
    """One deterministic simulated mining run, canonically serialised."""
    service = MiningService(workers=1, loader=lambda name: dataset)
    try:
        job = service.submit(
            dataset.graph.name, "llama3", "rag", "zero_shot"
        )
        run = service.result(job, timeout=120)
    finally:
        service.shutdown(wait=True)
    return {
        "fingerprint": graph_fingerprint(dataset.graph),
        "run": run_to_dict(run),
    }


class TestArtifactEmbedding:
    def test_save_embeds_checksummed_artifact(self, tmp_path):
        path = save_dataset(
            tiny_dataset(), tmp_path / "tiny.json", include_csr=True
        )
        payload = json.loads(path.read_text())
        artifact = payload["csr"]
        assert artifact["version"] == 1
        assert len(artifact["checksum"]) == 64
        assert len(artifact["node_ids"]) == 8
        assert len(artifact["edge_ids"]) == 4

    def test_save_without_flag_omits_artifact(self, tmp_path):
        path = save_dataset(tiny_dataset(), tmp_path / "tiny.json")
        assert "csr" not in json.loads(path.read_text())

    def test_load_adopts_artifact(self, tmp_path):
        dataset = tiny_dataset()
        path = save_dataset(
            dataset, tmp_path / "tiny.json", include_csr=True
        )
        collector = obs.install()
        try:
            loaded = load_dataset(path)
            assert collector.metrics.counter(
                "graph.csr.artifact_loads"
            ).value() == 1
            adopted = loaded.graph.columnar()
            assert adopted.origin == "artifact"
            # adoption means the first columnar() call compiled nothing
            assert collector.metrics.counter(
                "graph.csr.compiles"
            ).value() == 0
        finally:
            obs.uninstall()
        assert graph_fingerprint(loaded.graph) == graph_fingerprint(
            dataset.graph
        )

    def test_worker_ensure_snapshot_adopts_artifact(self, tmp_path):
        dataset = tiny_dataset()
        path = save_dataset(
            dataset, tmp_path / "tiny.json", include_csr=True
        )
        worker = GatewayWorker(
            cache_dir=tmp_path / "cache",
            stdin=io.StringIO(), stdout=io.StringIO(),
        )
        worker._ensure_snapshot("tiny", str(path))
        loaded = worker._datasets["tiny"]
        assert loaded.graph.columnar().origin == "artifact"
        assert graph_fingerprint(loaded.graph) == graph_fingerprint(
            dataset.graph
        )


class TestSubprocessRoundTrip:
    def test_worker_subprocess_mines_byte_identical(self, tmp_path):
        dataset = tiny_dataset()
        path = save_dataset(
            dataset, tmp_path / "tiny.json", include_csr=True
        )
        script = (
            "import json, sys\n"
            "from repro.datasets.snapshot import load_dataset\n"
            "from repro.mining.persistence import run_to_dict\n"
            "from repro.service import MiningService, graph_fingerprint\n"
            "dataset = load_dataset(sys.argv[1])\n"
            "snapshot = dataset.graph.columnar()\n"
            "assert snapshot.origin == 'artifact', snapshot.origin\n"
            "service = MiningService(workers=1, loader=lambda n: dataset)\n"
            "try:\n"
            "    job = service.submit(\n"
            "        dataset.graph.name, 'llama3', 'rag', 'zero_shot')\n"
            "    run = service.result(job, timeout=120)\n"
            "finally:\n"
            "    service.shutdown(wait=True)\n"
            "print(json.dumps({\n"
            "    'fingerprint': graph_fingerprint(dataset.graph),\n"
            "    'run': run_to_dict(run),\n"
            "}, sort_keys=True))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": str(REPO_SRC)},
        )
        assert completed.returncode == 0, completed.stderr
        local = json.dumps(mine_once(dataset), sort_keys=True)
        assert completed.stdout.strip() == local


class TestCorruptArtifact:
    def test_corrupt_artifact_falls_back_to_recompile(self, tmp_path):
        dataset = tiny_dataset()
        path = save_dataset(
            dataset, tmp_path / "tiny.json", include_csr=True
        )
        payload = json.loads(path.read_text())
        payload["csr"]["checksum"] = "0" * 64
        path.write_text(json.dumps(payload))
        collector = obs.install()
        try:
            loaded = load_dataset(path)       # never an error
            assert collector.metrics.counter(
                "graph.csr.artifact_fallbacks"
            ).value() == 1
            snapshot = loaded.graph.columnar()   # lazy recompile
            assert snapshot.origin == "full"
            assert collector.metrics.counter(
                "graph.csr.compiles"
            ).value() == 1
        finally:
            obs.uninstall()
        # the graph itself is intact: same content address, same mining
        assert graph_fingerprint(loaded.graph) == graph_fingerprint(
            dataset.graph
        )

    def test_mismatched_graph_artifact_falls_back_too(self, tmp_path):
        """A well-formed artifact for a *different* graph is rejected by
        the graph-resolution step, not just the checksum."""
        dataset = tiny_dataset()
        other = tiny_dataset("other")
        other.graph.add_node("extra", "User", {"id": 999})
        path = save_dataset(
            dataset, tmp_path / "tiny.json", include_csr=True
        )
        other_path = save_dataset(
            other, tmp_path / "other.json", include_csr=True
        )
        payload = json.loads(path.read_text())
        payload["csr"] = json.loads(other_path.read_text())["csr"]
        path.write_text(json.dumps(payload))
        loaded = load_dataset(path)
        assert loaded.graph.columnar().origin == "full"
        assert loaded.graph.order() == dataset.graph.order()
