"""Unit tests for graph serialization."""

import pytest

from repro.graph import (
    build_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def test_dict_round_trip(social_graph):
    payload = graph_to_dict(social_graph)
    rebuilt = graph_from_dict(payload)
    assert rebuilt.name == social_graph.name
    assert rebuilt.node_count() == social_graph.node_count()
    assert rebuilt.edge_count() == social_graph.edge_count()
    for node in social_graph.nodes():
        other = rebuilt.node(node.id)
        assert other.labels == node.labels
        assert other.properties == node.properties
    for edge in social_graph.edges():
        other = rebuilt.edge(edge.id)
        assert (other.label, other.src, other.dst) == (
            edge.label, edge.src, edge.dst
        )
        assert other.properties == edge.properties


def test_file_round_trip(social_graph, tmp_path):
    path = tmp_path / "g.json"
    save_graph(social_graph, path)
    rebuilt = load_graph(path)
    assert graph_to_dict(rebuilt) == graph_to_dict(social_graph)


def test_unknown_version_rejected():
    with pytest.raises(ValueError):
        graph_from_dict({"format_version": 99})


def test_build_graph_bulk():
    graph = build_graph(
        "bulk",
        nodes=[
            {"id": "a", "labels": ["X"], "properties": {"k": 1}},
            {"id": "b", "labels": "Y"},
        ],
        edges=[{"id": "e", "label": "R", "src": "a", "dst": "b"}],
    )
    assert graph.node("a").properties == {"k": 1}
    assert graph.node("b").has_label("Y")
    assert graph.edge("e").label == "R"


def test_empty_graph_round_trip(tmp_path):
    from repro.graph import PropertyGraph

    path = tmp_path / "empty.json"
    save_graph(PropertyGraph("empty"), path)
    rebuilt = load_graph(path)
    assert rebuilt.node_count() == 0
    assert rebuilt.edge_count() == 0
