"""Unit tests for the simulated LLM, fault model and timing."""

import random

import pytest

from repro.cypher import lint, parse
from repro.encoding import IncidentEncoder
from repro.graph import infer_schema
from repro.llm import (
    LLAMA3_PROFILE,
    MIXTRAL_PROFILE,
    SimulatedClock,
    SimulatedLLM,
    flip_first_direction,
    get_profile,
    inject_property_fault,
    inject_syntax_fault,
    maybe_inject,
)
from repro.llm.timing import LatencyModel
from repro.prompts import cypher_prompt, few_shot_prompt, zero_shot_prompt
from repro.prompts.examples import examples_text
from repro.rules import parse_rule_list


class TestProfiles:
    def test_lookup(self):
        assert get_profile("llama3") is LLAMA3_PROFILE
        assert get_profile("MIXTRAL") is MIXTRAL_PROFILE
        with pytest.raises(KeyError):
            get_profile("gpt4")

    def test_llama_prefers_simple_kinds(self):
        from repro.rules.model import RuleKind

        assert LLAMA3_PROFILE.kind_weight(RuleKind.UNIQUENESS) > \
            LLAMA3_PROFILE.kind_weight(RuleKind.PATTERN)

    def test_mixtral_prefers_complex_kinds(self):
        from repro.rules.model import RuleKind

        assert MIXTRAL_PROFILE.kind_weight(RuleKind.PATTERN) > \
            MIXTRAL_PROFILE.kind_weight(RuleKind.PROPERTY_EXISTS)

    def test_mixtral_more_error_prone(self):
        assert MIXTRAL_PROFILE.hallucination_rate > \
            LLAMA3_PROFILE.hallucination_rate
        assert MIXTRAL_PROFILE.syntax_fault_rate > \
            LLAMA3_PROFILE.syntax_fault_rate


class TestTiming:
    def test_latency_formula(self):
        model = LatencyModel(
            prefill_tps=100.0, decode_tps=10.0, overhead_seconds=1.0
        )
        assert model.latency(200, 30) == pytest.approx(1.0 + 2.0 + 3.0)

    def test_clock_accumulates(self):
        clock = SimulatedClock()
        llm = SimulatedLLM("llama3", clock=clock)
        llm.complete(zero_shot_prompt("Node a with label X has "
                                      "properties (k: 1)."))
        assert clock.calls == 1
        assert clock.elapsed_seconds > 0
        before = clock.elapsed_seconds
        llm.complete(zero_shot_prompt("Node a with label X has "
                                      "properties (k: 1)."))
        assert clock.elapsed_seconds == pytest.approx(2 * before)


class TestFaults:
    def test_flip_first_direction(self):
        flipped = flip_first_direction(
            "MATCH (a:User)-[:POSTS]->(b:Tweet) RETURN count(*) AS c"
        )
        assert "<-[:POSTS]-" in flipped
        # flipping twice restores the direction
        assert "-[:POSTS]->" in flip_first_direction(flipped)

    def test_flip_no_directed_edge(self):
        assert flip_first_direction("MATCH (a) RETURN a") is None
        assert flip_first_direction(
            "MATCH (a)-[:R]-(b) RETURN a"
        ) is None

    def test_syntax_fault_regex_equals(self):
        rng = random.Random(0)
        broken = None
        # keep drawing until the =~ variant fires (it is one candidate)
        for seed in range(20):
            candidate = inject_syntax_fault(
                "MATCH (n) WHERE n.x =~ 'a+' RETURN count(*) AS c",
                random.Random(seed),
            )
            if candidate and " = " in candidate:
                broken = candidate
                break
        assert broken is not None
        del rng

    def test_syntax_fault_breaks_parse_or_lint(self, social_schema):
        query = "MATCH (t:Tweet) RETURN count(*) AS c"
        broken = inject_syntax_fault(query, random.Random(1))
        assert broken is not None and broken != query
        assert not lint(broken, social_schema).is_correct

    def test_property_fault_changes_a_property(self):
        query = "MATCH (t:Tweet) WHERE t.id > 0 RETURN t.id AS i"
        mangled = inject_property_fault(query, random.Random(2))
        assert mangled != query

    def test_maybe_inject_rates_zero(self):
        from dataclasses import replace

        clean_profile = replace(
            LLAMA3_PROFILE, direction_flip_rate=0.0,
            syntax_fault_rate=0.0, property_fault_rate=0.0,
        )
        query = "MATCH (a:User)-[:POSTS]->(b:Tweet) RETURN count(*) AS c"
        for seed in range(10):
            result = maybe_inject(query, clean_profile, random.Random(seed))
            assert result.fault is None
            assert result.query == query

    def test_maybe_inject_rates_one(self):
        from dataclasses import replace

        faulty = replace(LLAMA3_PROFILE, direction_flip_rate=1.0)
        query = "MATCH (a:User)-[:POSTS]->(b:Tweet) RETURN count(*) AS c"
        result = maybe_inject(query, faulty, random.Random(0))
        assert result.fault == "direction"


class TestRuleGeneration:
    @pytest.fixture()
    def graph_text(self, social_graph):
        return IncidentEncoder().encode_text(social_graph)

    def test_deterministic_per_prompt(self, graph_text):
        prompt = zero_shot_prompt(graph_text)
        first = SimulatedLLM("llama3", seed=1).complete(prompt)
        second = SimulatedLLM("llama3", seed=1).complete(prompt)
        assert first.text == second.text

    def test_seed_changes_output_or_not_models(self, graph_text):
        prompt = zero_shot_prompt(graph_text)
        llama = SimulatedLLM("llama3", seed=1).complete(prompt)
        mixtral = SimulatedLLM("mixtral", seed=1).complete(prompt)
        assert llama.model == "llama3"
        assert mixtral.model == "mixtral"

    def test_emits_parseable_numbered_rules(self, graph_text):
        completion = SimulatedLLM("llama3").complete(
            zero_shot_prompt(graph_text)
        )
        rules, unparsed = parse_rule_list(completion.text)
        assert rules
        assert unparsed == []
        assert len(rules) <= LLAMA3_PROFILE.max_rules_per_call

    def test_few_shot_emits_fewer_rules(self, graph_text):
        llm = SimulatedLLM("llama3")
        zero = llm.complete(zero_shot_prompt(graph_text))
        few = llm.complete(few_shot_prompt(graph_text, examples_text()))
        zero_rules, _ = parse_rule_list(zero.text)
        few_rules, _ = parse_rule_list(few.text)
        assert len(few_rules) <= len(zero_rules)

    def test_empty_graph_text(self):
        completion = SimulatedLLM("llama3").complete(zero_shot_prompt(""))
        rules, _ = parse_rule_list(completion.text)
        assert rules == []

    def test_token_accounting(self, graph_text):
        completion = SimulatedLLM("llama3").complete(
            zero_shot_prompt(graph_text)
        )
        assert completion.prompt_tokens > completion.completion_tokens
        assert completion.latency_seconds > 0


class TestCypherGeneration:
    def test_generates_executable_query(self, social_graph, social_schema):
        from repro.cypher import execute

        rule_text = "Each Tweet node should have a unique id property."
        prompt = cypher_prompt(rule_text, social_schema.describe())
        # llama3 fault rates are low; seed until a clean generation
        for seed in range(10):
            completion = SimulatedLLM("llama3", seed=seed).complete(prompt)
            report = lint(completion.text, social_schema)
            if report.is_correct:
                assert execute(
                    social_graph, completion.text
                ).scalar() == 1  # ids 10,10,12 -> one unique value
                return
        pytest.fail("no clean generation in 10 seeds")

    def test_orients_pattern_from_prompt_schema(self, social_schema):
        rule_text = (
            "The id property of Tweet nodes must be unique within a "
            "User (via POSTS)."
        )
        prompt = cypher_prompt(rule_text, social_schema.describe())
        completion = SimulatedLLM("llama3", seed=3).complete(prompt)
        query = parse(completion.text)  # must at least parse
        assert query is not None
        # the data direction is (User)-[:POSTS]->(Tweet), so the
        # generated pattern must read Tweet<-POSTS-User
        assert "<-[:POSTS]-" in completion.text

    def test_unparseable_rule_falls_back(self, social_schema):
        prompt = cypher_prompt("Gibberish sentence.",
                               social_schema.describe())
        completion = SimulatedLLM("llama3").complete(prompt)
        assert completion.text == "MATCH (n) RETURN count(*) AS support"

    def test_unknown_prompt_kind(self):
        completion = SimulatedLLM("llama3").complete("just chatting")
        assert "graph or a rule" in completion.text


class TestHallucination:
    def test_hallucination_rate_one_always_swaps(self, social_graph):
        from dataclasses import replace

        profile = replace(LLAMA3_PROFILE, hallucination_rate=1.0)
        text = IncidentEncoder().encode_text(social_graph)
        completion = SimulatedLLM(profile).complete(zero_shot_prompt(text))
        rules, _ = parse_rule_list(completion.text)
        schema = infer_schema(social_graph)
        hallucinated = [
            rule for rule in rules
            if rule.label and rule.properties and not all(
                schema.has_node_property(rule.label, key)
                for key in rule.properties
            )
        ]
        assert hallucinated, completion.text
