"""Unit tests for the pseudo-BPE tokenizer."""

from repro.encoding import count_tokens, split_tokens, token_spans
from repro.encoding.tokenizer import PIECE_SIZE


def test_words_and_punctuation_are_tokens():
    assert split_tokens("Node u1 has (a: 1).") == [
        "Node", "u1", "has", "(", "a", ":", "1", ")", ".",
    ]


def test_long_words_split_into_pieces():
    word = "a" * (PIECE_SIZE * 2 + 3)
    pieces = split_tokens(word)
    assert len(pieces) == 3
    assert "".join(pieces) == word


def test_count_matches_split():
    text = "hello world, this is graph encoding number 12345"
    assert count_tokens(text) == len(split_tokens(text))


def test_empty_text():
    assert split_tokens("") == []
    assert count_tokens("") == 0
    assert token_spans("") == []


def test_spans_cover_exact_token_text():
    text = "Node tournament1 with label Tournament."
    spans = token_spans(text)
    rebuilt = [text[start:end] for start, end in spans]
    assert rebuilt == split_tokens(text)


def test_spans_are_monotone_and_disjoint():
    text = "abc def (x: 'yy') superlongidentifier42"
    spans = token_spans(text)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2
        assert s1 < e1
