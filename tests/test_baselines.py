"""Unit tests for the AMIE-style miner and the schema profiler."""

import pytest

from repro.baselines import (
    AmieConfig,
    AmieMiner,
    ProfilerConfig,
    SchemaProfiler,
)
from repro.graph import PropertyGraph
from repro.rules import RuleKind


@pytest.fixture()
def implication_graph():
    """COACH_OF(x,y) always implies WORKS_FOR(x,y); chain A-B composes."""
    g = PropertyGraph()
    for i in range(12):
        g.add_node(f"p{i}", "Person", {"id": i})
        g.add_node(f"c{i}", "Club", {"id": i})
    for i in range(12):
        g.add_edge(f"co{i}", "COACH_OF", f"p{i}", f"c{i}")
        g.add_edge(f"wf{i}", "WORKS_FOR", f"p{i}", f"c{i}")
    # chain: MANAGES(p, p') and COACH_OF(p', c) => OVERSEES(p, c)
    for i in range(11):
        g.add_edge(f"mg{i}", "MANAGES", f"p{i}", f"p{i + 1}")
        g.add_edge(f"ov{i}", "OVERSEES", f"p{i}", f"c{i + 1}")
    return g


class TestAmieMiner:
    def test_finds_perfect_implication(self, implication_graph):
        rules = AmieMiner(AmieConfig(min_support=5)).mine(implication_graph)
        best = [
            r for r in rules
            if r.body == ("COACH_OF",) and r.head == "WORKS_FOR"
        ]
        assert best and best[0].confidence == 1.0
        assert best[0].support == 12
        assert best[0].head_coverage == 1.0

    def test_finds_chain_rule(self, implication_graph):
        rules = AmieMiner(AmieConfig(min_support=5)).mine(implication_graph)
        chains = [
            r for r in rules
            if r.body == ("MANAGES", "COACH_OF") and r.head == "OVERSEES"
        ]
        assert chains and chains[0].confidence == 1.0

    def test_inverse_implication(self):
        g = PropertyGraph()
        g.add_node("a", "X")
        g.add_node("b", "X")
        for i in range(12):
            g.add_node(f"n{i}", "X")
            g.add_edge(f"f{i}", "FOLLOWS", "a", f"n{i}")
            g.add_edge(f"b{i}", "FOLLOWED_BY", f"n{i}", "a")
        rules = AmieMiner(AmieConfig(min_support=5)).mine(g)
        inverse = [r for r in rules if r.inverse and r.head == "FOLLOWED_BY"]
        assert inverse and inverse[0].confidence == 1.0

    def test_thresholds_prune(self, implication_graph):
        strict = AmieMiner(AmieConfig(min_support=1000))
        assert strict.mine(implication_graph) == []

    def test_sorted_by_confidence(self, implication_graph):
        rules = AmieMiner(AmieConfig(min_support=5, min_confidence=0.0)
                          ).mine(implication_graph)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_describe_readable(self, implication_graph):
        rules = AmieMiner(AmieConfig(min_support=5)).mine(implication_graph)
        text = rules[0].describe()
        assert "=>" in text and "conf=" in text


class TestSchemaProfiler:
    def test_finds_expected_rule_kinds(self, sports_graph):
        rules = SchemaProfiler().mine(sports_graph)
        kinds = {rule.kind for rule in rules}
        assert RuleKind.PROPERTY_EXISTS in kinds
        assert RuleKind.UNIQUENESS in kinds
        assert RuleKind.ENDPOINT in kinds
        assert RuleKind.EDGE_PROP_EXISTS in kinds

    def test_uniqueness_only_for_unique_complete_keys(self, sports_graph):
        rules = SchemaProfiler().mine(sports_graph)
        uniq = [
            rule for rule in rules if rule.kind is RuleKind.UNIQUENESS
        ]
        # 'stage' has duplicates? no; but 'id' keys are unique per label
        assert any(
            rule.label == "Person" and rule.properties == ("id",)
            for rule in uniq
        )

    def test_boolean_domain_found(self, sports_graph):
        rules = SchemaProfiler().mine(sports_graph)
        domains = [
            rule for rule in rules if rule.kind is RuleKind.VALUE_DOMAIN
        ]
        assert any(
            rule.properties == ("penalty",) for rule in domains
        ) is False  # penalty is an *edge* property: not a node domain
        # edge endpoint rule exists instead
        assert any(
            rule.kind is RuleKind.ENDPOINT
            and rule.edge_label == "SCORED_GOAL"
            for rule in rules
        )

    def test_profiler_is_exhaustive_vs_llm(self, wwc_dataset):
        from repro.graph import infer_schema

        schema = infer_schema(wwc_dataset.graph)
        rules = SchemaProfiler().mine(wwc_dataset.graph, schema)
        # "overwhelming number of constraints": far more than the LLM's
        # 8-12 per configuration
        assert len(rules) > 15

    def test_thresholds_configurable(self, sports_graph):
        lax = SchemaProfiler(ProfilerConfig(min_completeness=0.1))
        strict = SchemaProfiler(ProfilerConfig(min_completeness=1.0))
        assert len(lax.mine(sports_graph)) >= len(strict.mine(sports_graph))

    def test_rules_have_text(self, sports_graph):
        for rule in SchemaProfiler().mine(sports_graph):
            assert rule.text
            assert rule.provenance == "profiler"
