"""Unit tests for the induction engine (proposals from visible views)."""

from repro.llm.induction import InductionEngine
from repro.llm.prompt_io import parse_visible_graph
from repro.rules import RuleKind


def engine_for(text):
    return InductionEngine(parse_visible_graph(text))


def proposals_of_kind(text, kind):
    return [
        p for p in engine_for(text).propose() if p.rule.kind is kind
    ]


def node(node_id, label, props):
    return f"Node {node_id} with label {label} has properties ({props})."


def edge(src, src_l, dst, dst_l, eid, label, props=""):
    return (
        f"Node {src} ({src_l}) connects to node {dst} ({dst_l}) via edge "
        f"{eid} with label {label} and properties ({props})."
    )


class TestPropertyRules:
    def test_complete_property_proposed(self):
        text = "\n".join(node(f"u{i}", "User", f"id: {i}") for i in range(5))
        found = proposals_of_kind(text, RuleKind.PROPERTY_EXISTS)
        assert any(p.rule.properties == ("id",) for p in found)

    def test_sparse_property_not_proposed(self):
        lines = [node(f"u{i}", "User", "id: 1") for i in range(8)]
        lines += [node(f"v{i}", "User", "id: 1, extra: 2")
                  for i in range(2)]  # 20% completeness for 'extra'
        found = proposals_of_kind("\n".join(lines), RuleKind.PROPERTY_EXISTS)
        assert not any(p.rule.properties == ("extra",) for p in found)

    def test_single_node_label_ignored(self):
        found = engine_for(node("a", "Solo", "x: 1")).propose()
        assert found == []

    def test_uniqueness_for_distinct_id(self):
        text = "\n".join(
            node(f"u{i}", "User", f"id: {i}") for i in range(6)
        )
        found = proposals_of_kind(text, RuleKind.UNIQUENESS)
        assert len(found) == 1
        assert found[0].rule.properties == ("id",)

    def test_no_uniqueness_when_duplicates_visible(self):
        text = "\n".join(node(f"u{i}", "User", "id: 7") for i in range(6))
        assert proposals_of_kind(text, RuleKind.UNIQUENESS) == []

    def test_boolean_domain(self):
        lines = [node(f"u{i}", "User", f"owned: {i % 2 == 0}")
                 for i in range(6)]
        found = proposals_of_kind("\n".join(lines), RuleKind.VALUE_DOMAIN)
        assert any(p.rule.allowed_values == (True, False) for p in found)

    def test_categorical_domain_from_visible_values(self):
        lines = [
            node(f"m{i}", "Match", f"stage: '{'Group' if i < 7 else 'Final'}'")
            for i in range(10)
        ]
        found = proposals_of_kind("\n".join(lines), RuleKind.VALUE_DOMAIN)
        assert any(
            p.rule.allowed_values == ("Final", "Group") for p in found
        )

    def test_format_detection_date(self):
        lines = [
            node(f"p{i}", "Person", f"dob: '19{80 + i}-01-0{i + 1}'")
            for i in range(4)
        ]
        found = proposals_of_kind("\n".join(lines), RuleKind.VALUE_FORMAT)
        assert len(found) == 1

    def test_format_detection_url(self):
        lines = [
            node(f"l{i}", "Link", f"url: 'https://site{i}.com/x'")
            for i in range(4)
        ]
        found = proposals_of_kind("\n".join(lines), RuleKind.VALUE_FORMAT)
        assert found and "https?" in found[0].rule.pattern_regex


class TestEdgeRules:
    def _posts(self, count=4):
        lines = []
        for i in range(count):
            lines.append(node(f"u{i}", "User", f"id: {i}"))
            lines.append(node(f"t{i}", "Tweet", f"id: {i + 100}"))
            lines.append(edge(f"u{i}", "User", f"t{i}", "Tweet",
                              f"e{i}", "POSTS"))
        return "\n".join(lines)

    def test_endpoint_rule(self):
        found = proposals_of_kind(self._posts(), RuleKind.ENDPOINT)
        assert len(found) == 1
        rule = found[0].rule
        assert (rule.src_label, rule.dst_label) == ("User", "Tweet")

    def test_endpoint_needs_consistent_pairs(self):
        text = self._posts() + "\n" + edge(
            "t0", "Tweet", "u1", "User", "weird", "POSTS"
        )
        assert proposals_of_kind(text, RuleKind.ENDPOINT) == []

    def test_edge_property_rule(self):
        lines = []
        for i in range(4):
            lines.append(edge(f"a{i}", "P", f"b{i}", "M", f"g{i}",
                              "SCORED_GOAL", f"minute: {i + 1}"))
        found = proposals_of_kind(
            "\n".join(lines), RuleKind.EDGE_PROP_EXISTS
        )
        assert found and found[0].rule.properties == ("minute",)

    def test_no_self_loop_rule(self):
        lines = [
            edge(f"u{i}", "User", f"u{i + 1}", "User", f"f{i}", "FOLLOWS")
            for i in range(6)
        ]
        found = proposals_of_kind("\n".join(lines), RuleKind.NO_SELF_LOOP)
        assert found and found[0].rule.edge_label == "FOLLOWS"

    def test_self_loop_observed_suppresses_rule(self):
        lines = [
            edge(f"u{i}", "User", f"u{i + 1}", "User", f"f{i}", "FOLLOWS")
            for i in range(6)
        ]
        lines.append(edge("u9", "User", "u9", "User", "f9", "FOLLOWS"))
        assert proposals_of_kind(
            "\n".join(lines), RuleKind.NO_SELF_LOOP
        ) == []

    def test_temporal_unique_rule(self):
        lines = [
            edge(f"p{i}", "P", f"m{i}", "M", f"g{i}", "SCORED_GOAL",
                 f"minute: {10 + i}")
            for i in range(4)
        ]
        found = proposals_of_kind(
            "\n".join(lines), RuleKind.TEMPORAL_UNIQUE
        )
        assert found and found[0].rule.time_property == "minute"


class TestJoinRules:
    def test_mandatory_edge_incoming(self):
        lines = []
        for i in range(6):
            lines.append(node(f"t{i}", "Tweet", f"id: {i}"))
            lines.append(edge(f"u{i}", "User", f"t{i}", "Tweet",
                              f"e{i}", "POSTS"))
        found = proposals_of_kind(
            "\n".join(lines), RuleKind.MANDATORY_EDGE
        )
        incoming = [p for p in found if p.rule.label == "Tweet"]
        assert incoming
        assert incoming[0].rule.src_label == "User"

    def test_mandatory_edge_not_proposed_below_threshold(self):
        lines = [node(f"t{i}", "Tweet", f"id: {i}") for i in range(10)]
        for i in range(5):  # only half the tweets have a poster
            lines.append(edge(f"u{i}", "User", f"t{i}", "Tweet",
                              f"e{i}", "POSTS"))
        found = proposals_of_kind(
            "\n".join(lines), RuleKind.MANDATORY_EDGE
        )
        assert not any(p.rule.label == "Tweet" for p in found)

    def test_temporal_order_needs_both_endpoints_visible(self):
        lines = [
            node("t1", "Tweet", "created_at: '2021-01-02'"),
            node("t2", "Tweet", "created_at: '2021-01-01'"),
            node("t3", "Tweet", "created_at: '2021-01-03'"),
            edge("t1", "Tweet", "t2", "Tweet", "r1", "RETWEETS"),
            edge("t3", "Tweet", "t1", "Tweet", "r2", "RETWEETS"),
        ]
        found = proposals_of_kind(
            "\n".join(lines), RuleKind.TEMPORAL_ORDER
        )
        assert found and found[0].rule.time_property == "created_at"

    def test_temporal_order_rejected_on_violation(self):
        lines = [
            node("t1", "Tweet", "created_at: '2021-01-01'"),  # earlier!
            node("t2", "Tweet", "created_at: '2021-01-02'"),
            node("t3", "Tweet", "created_at: '2021-01-03'"),
            edge("t1", "Tweet", "t2", "Tweet", "r1", "RETWEETS"),
            edge("t3", "Tweet", "t1", "Tweet", "r2", "RETWEETS"),
        ]
        assert proposals_of_kind(
            "\n".join(lines), RuleKind.TEMPORAL_ORDER
        ) == []

    def test_pattern_rule_two_hop(self):
        lines = []
        for i in range(4):
            lines.append(node(f"p{i}", "Person", f"id: {i}"))
            lines.append(node(f"s{i}", "Squad", f"id: {i}"))
            lines.append(edge(f"p{i}", "Person", f"s{i}", "Squad",
                              f"m{i}", "IN_SQUAD"))
            lines.append(edge(f"s{i}", "Squad", "tour", "Tournament",
                              f"f{i}", "FOR"))
        found = proposals_of_kind("\n".join(lines), RuleKind.PATTERN)
        assert any(
            p.rule.label == "Person"
            and p.rule.scope_edge_label == "FOR"
            for p in found
        )
