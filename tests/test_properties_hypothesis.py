"""Property-based tests (hypothesis) for core invariants."""

import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import StaticAnalyzer, Verdict, canonical_signature
from repro.cypher import CypherSyntaxError, execute, parse, render_query, tokenize
from repro.cypher.tokens import KEYWORDS
from repro.cypher.executor import _canonical, _sort_key
from repro.encoding import (
    SlidingWindowChunker,
    Statement,
    count_tokens,
    split_tokens,
    token_spans,
)
from repro.graph import PropertyGraph
from repro.metrics import RuleMetrics
from repro.rag import HashedEmbedder
from repro.rules import (
    ConsistencyRule,
    RuleKind,
    from_natural_language,
    to_natural_language,
)

# ----------------------------------------------------------------------
# identifier strategies
# ----------------------------------------------------------------------
identifiers = st.text(
    alphabet=string.ascii_letters, min_size=1, max_size=12
).filter(lambda s: s.upper() not in KEYWORDS)


# ----------------------------------------------------------------------
# tokenizer
# ----------------------------------------------------------------------
@given(st.text(max_size=300))
def test_token_spans_align_with_split(text):
    spans = token_spans(text)
    tokens = split_tokens(text)
    assert len(spans) == len(tokens)
    assert [text[a:b] for a, b in spans] == tokens


@given(st.text(max_size=300))
def test_count_tokens_non_negative_and_consistent(text):
    assert count_tokens(text) == len(split_tokens(text))


# ----------------------------------------------------------------------
# lexer totality
# ----------------------------------------------------------------------
@given(st.text(max_size=120))
def test_lexer_total_or_syntax_error(text):
    try:
        tokens = tokenize(text)
    except CypherSyntaxError:
        return
    assert tokens[-1].type.name == "EOF"


# ----------------------------------------------------------------------
# parse/render fixpoint on generated queries
# ----------------------------------------------------------------------
@st.composite
def simple_queries(draw):
    var = draw(identifiers)
    label = draw(identifiers)
    prop = draw(identifiers)
    rel = draw(identifiers)
    direction = draw(st.sampled_from(["->", "-"]))
    value = draw(st.integers(min_value=-100, max_value=100))
    parts = [f"MATCH ({var}:{label})"]
    if draw(st.booleans()):
        parts[0] += f"-[:{rel}]{direction}({draw(identifiers)})"
    if draw(st.booleans()):
        parts.append(f"WHERE {var}.{prop} > {value}")
    if draw(st.booleans()):
        parts.append(f"RETURN count(*) AS {draw(identifiers)}")
    else:
        parts.append(f"RETURN {var}.{prop} AS out")
    return " ".join(parts)


@given(simple_queries())
@settings(max_examples=60)
def test_parse_render_fixpoint(query_text):
    ast1 = parse(query_text)
    ast2 = parse(render_query(ast1))
    assert ast1 == ast2


# ----------------------------------------------------------------------
# sliding windows
# ----------------------------------------------------------------------
@st.composite
def statement_lists(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    statements = []
    for index in range(count):
        words = draw(st.integers(min_value=1, max_value=20))
        text = " ".join(f"w{index}x{j}" for j in range(words))
        statements.append(
            Statement(kind="node", text=text, subject_id=f"s{index}")
        )
    return statements


@given(
    statement_lists(),
    st.integers(min_value=8, max_value=120),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=50)
def test_window_invariants(statements, window_size, overlap):
    chunker = SlidingWindowChunker(window_size=window_size, overlap=overlap)
    windows = chunker.chunk_statements(statements)

    # every token index covered exactly by the union of windows
    covered = set()
    for window in windows.windows:
        assert window.token_count <= window_size
        covered.update(range(window.start_token, window.end_token))
    assert covered == set(range(windows.total_tokens))

    # consecutive windows advance by exactly step
    step = window_size - overlap
    for first, second in zip(windows.windows, windows.windows[1:]):
        assert second.start_token - first.start_token == step


@given(statement_lists())
@settings(max_examples=30)
def test_windows_with_big_overlap_never_break_statements(statements):
    longest = max(count_tokens(s.text) for s in statements)
    chunker = SlidingWindowChunker(
        window_size=max(4 * longest, 16), overlap=longest
    )
    windows = chunker.chunk_statements(statements)
    assert windows.broken_statement_count == 0


# ----------------------------------------------------------------------
# NL round trip
# ----------------------------------------------------------------------
@given(identifiers, identifiers, identifiers)
@settings(max_examples=50)
def test_nl_round_trip_random_names(label, prop, edge):
    for rule in (
        ConsistencyRule(RuleKind.PROPERTY_EXISTS, "", label=label,
                        properties=(prop,)),
        ConsistencyRule(RuleKind.UNIQUENESS, "", label=label,
                        properties=(prop,)),
        ConsistencyRule(RuleKind.ENDPOINT, "", edge_label=edge,
                        src_label=label, dst_label=label),
        ConsistencyRule(RuleKind.NO_SELF_LOOP, "", label=label,
                        edge_label=edge),
    ):
        sentence = to_natural_language(rule)
        parsed = from_natural_language(sentence)
        assert parsed is not None
        assert parsed.kind == rule.kind
        assert parsed.label == rule.label
        assert parsed.properties == rule.properties
        assert parsed.edge_label == rule.edge_label


# ----------------------------------------------------------------------
# metrics bounds
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_metric_bounds(support, relevant, body):
    metrics = RuleMetrics(support=support, relevant=relevant, body=body)
    assert 0.0 <= metrics.coverage <= 100.0
    assert 0.0 <= metrics.confidence <= 100.0


# ----------------------------------------------------------------------
# embeddings
# ----------------------------------------------------------------------
@given(st.text(max_size=200))
@settings(max_examples=50)
def test_embedding_unit_norm_or_zero(text):
    vector = HashedEmbedder(dimension=64).embed(text)
    norm = float(np.linalg.norm(vector))
    assert norm == 0.0 or abs(norm - 1.0) < 1e-9


@given(st.text(max_size=100))
def test_embedding_deterministic(text):
    a = HashedEmbedder(dimension=32).embed(text)
    b = HashedEmbedder(dimension=32).embed(text)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# sort keys form a usable total preorder over mixed values
# ----------------------------------------------------------------------
mixed_values = st.recursive(
    st.one_of(
        st.none(), st.booleans(), st.integers(), st.text(max_size=5),
        st.floats(allow_nan=False, allow_infinity=False),
    ),
    lambda children: st.lists(children, max_size=3),
    max_leaves=5,
)


@given(st.lists(mixed_values, max_size=12))
@settings(max_examples=60)
def test_sort_key_sorts_mixed_values(values):
    ordered = sorted(values, key=_sort_key)
    assert len(ordered) == len(values)
    # None always sorts to the end
    if None in values:
        tail = ordered[ordered.index(None):]
        assert all(item is None for item in tail)


@given(st.lists(mixed_values, max_size=10))
@settings(max_examples=60)
def test_canonical_is_hashable(values):
    keys = {_canonical(value) for value in values}
    assert len(keys) <= len(values)


# ----------------------------------------------------------------------
# store invariants under random build sequences
# ----------------------------------------------------------------------
@st.composite
def graph_builds(draw):
    node_count = draw(st.integers(min_value=1, max_value=12))
    edges = draw(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=node_count - 1),
            st.integers(min_value=0, max_value=node_count - 1),
        ),
        max_size=20,
    ))
    return node_count, edges


# ----------------------------------------------------------------------
# analyzer soundness: UNSAT verdict ⇒ zero rows on the executor
# ----------------------------------------------------------------------
@st.composite
def property_graphs(draw):
    """Small graphs with integer/string properties on two labels."""
    graph = PropertyGraph()
    node_count = draw(st.integers(min_value=1, max_value=8))
    for index in range(node_count):
        label = draw(st.sampled_from(["A", "B"]))
        graph.add_node(f"n{index}", label, {
            "x": draw(st.integers(min_value=-10, max_value=10)),
            "name": draw(st.sampled_from(["p", "q", "r"])),
        })
    for number in range(draw(st.integers(min_value=0, max_value=10))):
        src = draw(st.integers(min_value=0, max_value=node_count - 1))
        dst = draw(st.integers(min_value=0, max_value=node_count - 1))
        graph.add_edge(f"e{number}", "R", f"n{src}", f"n{dst}")
    return graph


@st.composite
def conjunctive_predicates(draw):
    """Random conjunctions over a.x / a.name — some satisfiable, some not."""
    comparisons = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
    conjuncts = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(["int", "str", "null", "in"]))
        if kind == "int":
            op = draw(comparisons)
            value = draw(st.integers(min_value=-12, max_value=12))
            conjuncts.append(f"a.x {op} {value}")
        elif kind == "str":
            op = draw(st.sampled_from(["=", "<>", "STARTS WITH"]))
            value = draw(st.sampled_from(["p", "q", "r", "zz"]))
            conjuncts.append(f"a.name {op} '{value}'")
        elif kind == "null":
            form = draw(st.sampled_from(["IS NULL", "IS NOT NULL"]))
            subject = draw(st.sampled_from(["a.x", "a.name"]))
            conjuncts.append(f"{subject} {form}")
        else:
            values = draw(st.lists(
                st.integers(min_value=-12, max_value=12),
                min_size=1, max_size=3,
            ))
            rendered = ", ".join(str(v) for v in values)
            conjuncts.append(f"a.x IN [{rendered}]")
    return " AND ".join(conjuncts)


@given(property_graphs(), conjunctive_predicates())
@settings(max_examples=120)
def test_unsat_verdict_implies_zero_rows(graph, predicate):
    """The triage contract: UNSAT means the executor finds nothing."""
    query = f"MATCH (a) WHERE {predicate} RETURN a.x AS out"
    report = StaticAnalyzer().analyze(query)
    if report.verdict is not Verdict.UNSAT:
        return
    assert execute(graph, query).rows == []


@given(property_graphs(), conjunctive_predicates())
@settings(max_examples=60)
def test_unsat_verdict_implies_zero_count(graph, predicate):
    """Aggregate form: the satisfy-style count is exactly zero."""
    query = f"MATCH (a) WHERE {predicate} RETURN count(a) AS c"
    report = StaticAnalyzer().analyze(query)
    if report.verdict is not Verdict.UNSAT:
        return
    assert execute(graph, query).scalar() == 0


@given(st.lists(identifiers, min_size=3, max_size=3, unique=True))
@settings(max_examples=60)
def test_canonical_signature_alpha_invariant(names):
    """Any choice of variable names yields the same semantic signature."""
    a, r, b = names
    renamed = parse(
        f"MATCH ({a}:L)-[{r}:T]->({b}:M) "
        f"WHERE {a}.x > 3 AND {b}.y = 'v' RETURN count(*) AS c"
    )
    baseline = parse(
        "MATCH (p:L)-[s:T]->(q:M) "
        "WHERE p.x > 3 AND q.y = 'v' RETURN count(*) AS c"
    )
    assert canonical_signature(renamed) == canonical_signature(baseline)


@given(simple_queries())
@settings(max_examples=60)
def test_canonical_signature_stable_across_render(query_text):
    """Parse → render → parse must not change the signature."""
    ast1 = parse(query_text)
    ast2 = parse(render_query(ast1))
    assert canonical_signature(ast1) == canonical_signature(ast2)


@given(graph_builds())
@settings(max_examples=50)
def test_store_degree_sums_to_twice_edges(build):
    node_count, edges = build
    graph = PropertyGraph()
    for index in range(node_count):
        graph.add_node(f"n{index}", "N")
    for number, (src, dst) in enumerate(edges):
        graph.add_edge(f"e{number}", "R", f"n{src}", f"n{dst}")
    total_degree = sum(graph.degree(n.id) for n in graph.nodes())
    # each edge contributes 2 to the degree sum, except self-loops,
    # which are one incident edge and contribute 1
    self_loops = sum(1 for edge in graph.edges() if edge.src == edge.dst)
    assert total_degree == 2 * graph.edge_count() - self_loops
    # removing all edges brings degrees to zero
    for edge in list(graph.edges()):
        graph.remove_edge(edge.id)
    assert all(graph.degree(n.id) == 0 for n in graph.nodes())
