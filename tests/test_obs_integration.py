"""End-to-end observability: the mining pipelines emit the expected
span trees and the LLM counters match the runs' reported totals."""

from __future__ import annotations

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.graph import PropertyGraph
from repro.mining import PipelineContext, RAGPipeline, SlidingWindowPipeline
from repro.mining.parallel import ParallelSlidingWindowPipeline


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_dataset() -> Dataset:
    graph = PropertyGraph("mini")
    for index in range(40):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
    for index in range(80):
        graph.add_node(f"t{index}", "Tweet", {
            "id": index,
            "text": f"tweet number {index}",
            "created_at": f"2021-02-{(index % 28) + 1:02d}T08:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index % 40}", f"t{index}")
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


def span_names(collector: obs.TraceCollector) -> set[str]:
    return {item.name for item in collector.iter_spans()}


def test_sliding_window_trace_and_counters():
    collector = obs.install()
    context = PipelineContext.build(build_dataset())
    pipeline = SlidingWindowPipeline(context, window_size=1500, overlap=150)
    run = pipeline.mine("llama3", "zero_shot")

    # the full pipeline shape: encode → window → LLM call → translate
    # → evaluate (evaluate drives cypher.execute)
    assert {
        "encode", "mine.sliding_window", "window", "llm.call",
        "translate", "evaluate", "cypher.execute",
    } <= span_names(collector)

    # tree shape: windows and translations nest under the mine span
    mine_span = next(
        item for item in collector.iter_spans()
        if item.name == "mine.sliding_window"
    )
    child_names = {child.name for child in mine_span.children}
    assert {"window", "translate"} <= child_names
    windows = [c for c in mine_span.children if c.name == "window"]
    assert len(windows) == run.window_count
    assert all(
        any(g.name == "llm.call" for g in w.children) for w in windows
    )

    # LLM counters match the run's reported totals exactly
    metrics = collector.metrics
    assert metrics.counter("llm.calls").total() == run.llm_calls
    assert metrics.counter("llm.prompt_tokens").total() == run.prompt_tokens
    assert (
        metrics.counter("llm.completion_tokens").total()
        == run.completion_tokens
    )
    assert run.llm_calls == run.window_count + run.rule_count

    # simulated seconds on the llm.call spans reproduce the run's clock
    sim_total = sum(
        item.sim_seconds for item in collector.iter_spans()
        if item.name == "llm.call"
    )
    assert sim_total == pytest.approx(
        run.mining_seconds + run.cypher_seconds
    )


def test_rag_trace_and_counters():
    collector = obs.install()
    context = PipelineContext.build(build_dataset())
    run = RAGPipeline(context, chunk_tokens=256, top_k=4).mine(
        "llama3", "zero_shot"
    )

    assert {
        "encode", "mine.rag", "rag.index", "vectorstore.add", "retrieve",
        "llm.call", "translate", "evaluate", "cypher.execute",
    } <= span_names(collector)

    metrics = collector.metrics
    assert metrics.counter("llm.calls").total() == run.llm_calls
    assert metrics.counter("llm.prompt_tokens").total() == run.prompt_tokens
    assert (
        metrics.counter("rag.chunks_retrieved").total()
        == run.retrieved_chunks
    )
    # RAG mines with a single call; the rest are Cypher translations
    assert run.llm_calls == 1 + run.rule_count


def test_parallel_pipeline_worker_spans():
    collector = obs.install()
    context = PipelineContext.build(build_dataset())
    pipeline = ParallelSlidingWindowPipeline(
        context, workers=3, window_size=1500, overlap=150
    )
    run = pipeline.mine("llama3", "zero_shot")

    assert {
        "mine.parallel_sliding_window", "window", "worker", "llm.call",
    } <= span_names(collector)
    workers = [
        item for item in collector.iter_spans() if item.name == "worker"
    ]
    assert len(workers) == 3
    assert (
        sum(worker.attributes["windows"] for worker in workers)
        == run.window_count
    )
    # makespan: the slowest worker's simulated time is the mining time
    assert max(
        worker.sim_seconds for worker in workers
    ) == pytest.approx(run.mining_seconds)
    assert collector.metrics.counter("llm.calls").total() == run.llm_calls


def test_pipelines_unchanged_without_collector():
    """Instrumentation must not alter results when obs is off."""
    context = PipelineContext.build(build_dataset())
    baseline = SlidingWindowPipeline(
        context, window_size=1500, overlap=150
    ).mine("llama3", "zero_shot")

    obs.install()
    traced_run = SlidingWindowPipeline(
        context, window_size=1500, overlap=150
    ).mine("llama3", "zero_shot")
    obs.uninstall()

    assert [r.rule.text for r in traced_run.results] == [
        r.rule.text for r in baseline.results
    ]
    assert traced_run.mining_seconds == baseline.mining_seconds
    assert traced_run.prompt_tokens == baseline.prompt_tokens
