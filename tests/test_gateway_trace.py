"""Fleet-wide distributed tracing, end to end.

The acceptance criteria of the tracing tentpole, verified against a
real multi-process fleet:

* one HTTP job yields **one connected span tree** spanning the gateway
  process and at least one worker process (``GET /jobs/<id>/trace``);
* LLM token counts survive the process boundary: the token attributes
  in the assembled tree sum to the in-process run's totals;
* :mod:`repro.obs.analyze` consumes the assembled tree unchanged;
* every HTTP response carries a correlation id (echoed or minted) and
  per-endpoint RED metrics land in ``/metrics``;
* a draining gateway's ``503`` advertises a ``Retry-After`` derived
  from the drain deadline, not the 1-second floor;
* a worker killed mid-job leaves an error-marked attempt plus a
  ``gateway.requeue`` event in the trace, with the successful retry as
  a sibling attempt — and queue-wait accounting covers the full wait.
"""

from __future__ import annotations

import json
import os
import signal
import time
import types
import urllib.request

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.gateway import (
    Gateway,
    GatewayClient,
    GatewayClientError,
    GatewayRejectedError,
)
from repro.gateway import protocol
from repro.graph import PropertyGraph
from repro.obs.analyze import aggregate_names, critical_path
from repro.obs.distributed import parse_traceparent
from repro.service import MiningService, RetryPolicy


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_dataset(name: str) -> Dataset:
    graph = PropertyGraph(name)
    for index in range(8):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


@pytest.fixture()
def loader():
    cache: dict[str, Dataset] = {}

    def load(name: str) -> Dataset:
        if name != "tiny":
            raise KeyError(f"unknown dataset {name!r}")
        if name not in cache:
            cache[name] = build_dataset(name)
        return cache[name]

    return load


def gateway(loader, tmp_path, **kwargs) -> Gateway:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("loader", loader)
    kwargs.setdefault("drain_timeout", 60.0)
    return Gateway(**kwargs)


def cell_payload(method: str, model: str = "llama3", **knobs) -> dict:
    return {
        "dataset": "tiny", "model": model, "method": method,
        "prompt_mode": "zero_shot", **knobs,
    }


def walk_payload(payload: dict):
    """Every span dict in a ``/trace`` payload, verifying connectivity.

    Fails the test on duplicate ids or parent/child disagreement; the
    walked span count must equal the payload's advertised total.
    """
    seen: set[int] = set()

    def visit(node: dict, parent: int | None):
        assert node["id"] not in seen, "duplicate span id (not a tree)"
        seen.add(node["id"])
        assert node["parent"] == parent, (
            f"orphaned span {node['name']!r}"
        )
        yield node
        for child in node["children"]:
            yield from visit(child, node["id"])

    assert payload["root"] is not None
    spans = list(visit(payload["root"], None))
    assert len(spans) == payload["spans"]
    return spans


# ----------------------------------------------------------------------
# protocol v2: trace context on the wire
# ----------------------------------------------------------------------
class TestProtocolV2:
    def test_version_drift_fails_loudly_at_decode_time(self):
        v1_line = json.dumps({"v": 1, "event": "ready"})
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.decode_line(v1_line)
        assert protocol.PROTOCOL_VERSION == 2
        round_trip = protocol.decode_line(
            protocol.encode_line({"op": "shutdown"})
        )
        assert round_trip["v"] == 2

    def test_job_message_carries_trace_only_when_present(self):
        spec = protocol.parse_submit(cell_payload("sliding_window"))
        bare = protocol.job_message("abc", spec, "/tmp/snap")
        assert "trace" not in bare
        header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        traced = protocol.job_message(
            "abc", spec, "/tmp/snap", traceparent=header
        )
        assert traced["trace"] == header

    def test_done_event_ships_spans_home(self):
        bare = protocol.done_event("abc", ok=True)
        assert "trace" not in bare and "spans" not in bare
        event = protocol.done_event(
            "abc", ok=True, trace="ab" * 16,
            spans={"name": "worker.job", "children": []},
        )
        assert event["trace"] == "ab" * 16
        assert event["spans"]["name"] == "worker.job"

    def test_submit_rejects_non_string_traceparent(self):
        payload = cell_payload("sliding_window", traceparent=123)
        with pytest.raises(protocol.ProtocolError, match="traceparent"):
            protocol.parse_submit(payload)
        # a *string* traceparent is accepted (validity is judged later:
        # malformed context is ignored, never an error)
        protocol.parse_submit(
            cell_payload("sliding_window", traceparent="garbage")
        )


# ----------------------------------------------------------------------
# the tentpole: one connected tree per job, across process lines
# ----------------------------------------------------------------------
class TestFleetTrace:
    def test_one_connected_tree_spanning_gateway_and_worker(
        self, loader, tmp_path
    ):
        obs.install()
        with gateway(loader, tmp_path, workers=2) as gw:
            client = GatewayClient(gw.url, client_id="trace-e2e")
            job = client.submit("tiny", "llama3", "sliding_window",
                                "zero_shot")
            client.result(job["job_id"], timeout=120)
            payload = client.trace(job["job_id"])

        assert payload["complete"] is True
        assert payload["job_id"] == job["job_id"]
        assert payload["state"] == "done"
        assert parse_traceparent(payload["traceparent"]) is not None
        assert parse_traceparent(payload["traceparent"])[0] == \
            payload["trace_id"]
        # the status snapshot advertises the same trace id
        assert payload["trace_id"] == job["trace_id"] or job["trace_id"]

        spans = walk_payload(payload)
        names = [span["name"] for span in spans]
        assert names[0] == "gateway.job"
        assert "gateway.queue" in names
        assert "gateway.attempt" in names
        # the worker's fragment was grafted *under* the dispatch attempt
        attempt = next(
            span for span in spans if span["name"] == "gateway.attempt"
        )
        grafted = [
            child for child in attempt["children"]
            if child["name"] == "worker.job"
        ]
        assert len(grafted) == 1
        worker_root = grafted[0]
        assert worker_root["attributes"]["pid"] != os.getpid()
        assert worker_root["attributes"]["trace_id"] == \
            payload["trace_id"]
        # the worker shipped its real mining spans home
        assert "llm.call" in names
        # >= 2 distinct OS processes contributed to one tree
        assert len(payload["pids"]) >= 2
        assert os.getpid() in payload["pids"]

    def test_llm_tokens_are_conserved_across_the_wire(
        self, loader, tmp_path
    ):
        obs.install()
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            job = client.submit("tiny", "mixtral", "sliding_window",
                                "zero_shot")
            client.result(job["job_id"], timeout=120)
            payload = client.trace(job["job_id"])

        prompt = completion = 0
        for span in walk_payload(payload):
            prompt += int(span["attributes"].get("prompt_tokens", 0))
            completion += int(
                span["attributes"].get("completion_tokens", 0)
            )

        svc = MiningService(
            loader=loader, workers=1,
            retry_policy=RetryPolicy(max_retries=3, base_delay=0.0),
        )
        with svc:
            run = svc.mine("tiny", "mixtral", "sliding_window",
                           "zero_shot")
        assert prompt == run.prompt_tokens > 0
        assert completion == run.completion_tokens > 0

    def test_client_traceparent_is_adopted(self, loader, tmp_path):
        obs.install()
        trace_id, parent = "ab" * 16, "cd" * 8
        header = f"00-{trace_id}-{parent}-01"
        gw = gateway(loader, tmp_path, workers=1)
        job = gw.submit(
            cell_payload("sliding_window", traceparent=header)
        )
        assert job.trace_id == trace_id
        assert job.trace.root.attributes["remote_parent"] == parent
        # a malformed header is ignored: fresh trace, no error
        other = gw.submit(cell_payload(
            "rag", traceparent="ff-bogus", base_seed=7,
        ))
        assert other.trace_id and other.trace_id != trace_id

    def test_analyze_consumes_the_assembled_tree(self, loader, tmp_path):
        obs.install()
        with gateway(loader, tmp_path, workers=1) as gw:
            job = gw.submit(cell_payload("sliding_window"))
            gw.result(job.job_id, timeout=120)
        root = job.trace.root
        stats = aggregate_names(types.SimpleNamespace(roots=[root]))
        assert stats["gateway.job"].count == 1
        assert stats["worker.job"].count == 1
        assert stats["llm.call"].count > 0
        # a parent never double-bills its children
        assert stats["gateway.job"].self_wall_seconds <= \
            stats["gateway.job"].wall_seconds
        path = critical_path(root)
        assert path[0][0] is root
        assert len(path) > 1                   # descends into the graft
        assert path[-1][0].children == []

    def test_cache_hit_trace_has_no_dispatch_attempt(
        self, loader, tmp_path
    ):
        # first gateway mines; a second process-equivalent gateway on
        # the same cache dir answers at submit time without a fleet
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            done = client.submit("tiny", "llama3", "sliding_window",
                                 "zero_shot")
            client.result(done["job_id"], timeout=120)
        obs.install()
        second = gateway(loader, tmp_path, workers=1)
        job = second.submit(cell_payload("sliding_window"))
        assert job.source == "cache"
        payload = second.trace_payload(job.job_id)
        names = [span["name"] for span in walk_payload(payload)]
        assert payload["complete"] is True
        assert "gateway.cache" in names
        assert "gateway.attempt" not in names
        assert payload["pids"] == [os.getpid()]

    def test_trace_endpoint_404s_without_a_collector(
        self, loader, tmp_path
    ):
        # no obs.install(): the gateway runs untraced and says so
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            job = client.submit("tiny", "llama3", "sliding_window",
                                "zero_shot")
            client.result(job["job_id"], timeout=120)
            with pytest.raises(GatewayClientError) as excinfo:
                client.trace(job["job_id"])
            assert excinfo.value.status == 404
            with pytest.raises(GatewayClientError) as excinfo:
                client.trace("deadbeef")
            assert excinfo.value.status == 404


# ----------------------------------------------------------------------
# HTTP observability: correlation ids + RED metrics
# ----------------------------------------------------------------------
class TestHttpObservability:
    def test_request_id_echoed_and_minted(self, loader, tmp_path):
        gw = gateway(loader, tmp_path, workers=1)
        gw.start()
        try:
            request = urllib.request.Request(
                gw.url + "/healthz",
                headers={"X-Request-Id": "trace-me-42"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.headers["X-Request-Id"] == "trace-me-42"
            with urllib.request.urlopen(
                gw.url + "/healthz", timeout=10
            ) as response:
                minted = response.headers["X-Request-Id"]
            assert minted and minted != "trace-me-42"
            int(minted, 16)                    # minted ids are hex
        finally:
            gw.stop()

    def test_hostile_request_id_is_sanitised(self, loader, tmp_path):
        gw = gateway(loader, tmp_path, workers=1)
        gw.start()
        try:
            request = urllib.request.Request(
                gw.url + "/healthz",
                headers={"X-Request-Id": 'abc"def!' + "x" * 500},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                echoed = response.headers["X-Request-Id"]
            assert echoed.startswith("abcdef")
            assert len(echoed) <= 128
            assert '"' not in echoed
        finally:
            gw.stop()

    def test_red_metrics_per_endpoint_template(self, loader, tmp_path):
        obs.install()
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url, client_id="red")
            job = client.submit("tiny", "llama3", "sliding_window",
                                "zero_shot")
            client.result(job["job_id"], timeout=120)
            client.trace(job["job_id"])
            # RED accounting lands just *after* the response bytes are
            # flushed, so an immediate scrape can miss the trace call's
            # increment by microseconds — poll briefly
            deadline = time.monotonic() + 5.0
            while True:
                text = client.metrics_text()
                if (
                    'endpoint="/jobs/{id}/trace"' in text
                    or time.monotonic() >= deadline
                ):
                    break
                time.sleep(0.05)
        assert "gateway_http_requests" in text
        assert "gateway_http_request_seconds" in text
        # endpoints are recorded as low-cardinality templates, never
        # raw paths with job ids in them
        assert 'endpoint="/jobs"' in text
        assert 'endpoint="/jobs/{id}"' in text
        assert 'endpoint="/jobs/{id}/trace"' in text
        assert job["job_id"] not in text


# ----------------------------------------------------------------------
# draining advertises an honest Retry-After (regression)
# ----------------------------------------------------------------------
class TestDrainingRetryAfter:
    def test_503_retry_after_derives_from_drain_timeout(
        self, loader, tmp_path
    ):
        with gateway(
            loader, tmp_path, workers=1, drain_timeout=42.0,
        ) as gw:
            client = GatewayClient(gw.url)
            assert gw.drain(timeout=30) is True
            with pytest.raises(GatewayRejectedError) as excinfo:
                client.submit("tiny", "llama3", "sliding_window",
                              "zero_shot")
            assert excinfo.value.status == 503
            assert excinfo.value.reason == "draining"
            # the hint reflects the drain deadline, not the 1s floor:
            # a client that retried after 1 second would just be shed
            # again for the whole drain window
            assert excinfo.value.retry_after == 42.0


# ----------------------------------------------------------------------
# crash recovery is visible in the trace (and in queue-wait accounting)
# ----------------------------------------------------------------------
class TestCrashTrace:
    def test_killed_worker_leaves_error_attempt_and_requeue_event(
        self, loader, tmp_path
    ):
        collector = obs.install()
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            # submit against a *cold* worker: the job dispatches while
            # the worker is still importing, giving a wide kill window
            job = client.submit("tiny", "llama3", "sliding_window",
                                "zero_shot")
            deadline = time.monotonic() + 30
            pid = None
            while time.monotonic() < deadline:
                worker = client.stats()["dispatcher"]["workers"][0]
                if worker["busy"] == job["job_id"] and worker["pid"]:
                    pid = worker["pid"]
                    break
                time.sleep(0.02)
            assert pid is not None, "job was never dispatched"
            os.kill(pid, signal.SIGKILL)
            final = client.wait(job["job_id"], timeout=120)
            assert final["state"] == "done"
            payload = client.trace(job["job_id"])
            stats = client.stats()
        assert stats["dispatcher"]["worker_crashes"] >= 1

        spans = walk_payload(payload)
        names = [span["name"] for span in spans]
        assert payload["complete"] is True

        attempts = [s for s in spans if s["name"] == "gateway.attempt"]
        assert len(attempts) == 2
        aborted = [
            s for s in attempts
            if s["attributes"].get("error") == "worker_crash"
        ]
        succeeded = [
            s for s in attempts if s["attributes"].get("ok") is True
        ]
        assert len(aborted) == 1 and len(succeeded) == 1
        # attempts are *siblings* under the root, in dispatch order
        root = payload["root"]
        assert aborted[0]["parent"] == root["id"]
        assert succeeded[0]["parent"] == root["id"]
        assert aborted[0]["attributes"]["attempt"] == 1
        assert succeeded[0]["attributes"]["attempt"] == 2
        # only the successful attempt has a grafted worker fragment (a
        # SIGKILLed worker ships nothing home)
        assert not any(
            c["name"] == "worker.job" for c in aborted[0]["children"]
        )
        assert any(
            c["name"] == "worker.job" for c in succeeded[0]["children"]
        )
        # the requeue left its marker, with the cumulative wait
        requeues = [s for s in spans if s["name"] == "gateway.requeue"]
        assert len(requeues) == 1
        assert requeues[0]["attributes"]["waited_seconds"] >= 0.0
        # two queue phases: the original, and the requeued one
        queues = [s for s in spans if s["name"] == "gateway.queue"]
        assert len(queues) == 2
        assert sum(
            1 for s in queues
            if s["attributes"].get("requeued") is True
        ) == 1
        assert "gateway.queue" in names

        # queue-wait accounting observed *both* dispatches, measured
        # from the original enqueue (satellite: crash-requeue must not
        # reset the wait clock)
        wait = collector.metrics.histogram("gateway.queue_wait_seconds")
        snap = wait.snapshot()
        assert snap.count == 2
        requeued_counter = collector.metrics.counter(
            "gateway.jobs_requeued"
        )
        assert requeued_counter.total() == 1
