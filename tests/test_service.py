"""Unit tests for the mining job service: job identity, queue
backpressure, retry/backoff, and the content-addressed result cache."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.graph import PropertyGraph
from repro.llm.faults import TransientLLMError
from repro.mining.persistence import FORMAT_VERSION
from repro.mining.result import MiningRun
from repro.service import (
    JobQueue,
    JobSpec,
    JobTimeoutError,
    QueueClosed,
    QueueFull,
    ResultCache,
    RetriesExhaustedError,
    RetryPolicy,
    cache_key,
    call_with_retry,
    graph_fingerprint,
)


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_graph(name: str = "tiny", variant: int = 0) -> PropertyGraph:
    graph = PropertyGraph(name)
    for index in range(6):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index + variant}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    return graph


def build_dataset(name: str = "tiny", variant: int = 0) -> Dataset:
    return Dataset(
        graph=build_graph(name, variant), true_rules=[], dirt=DirtReport()
    )


SPEC = JobSpec(
    dataset="tiny", model="llama3", method="rag", prompt_mode="zero_shot"
)


# ----------------------------------------------------------------------
# job identity
# ----------------------------------------------------------------------
class TestJobIdentity:
    def test_same_inputs_same_id(self):
        fp_a = graph_fingerprint(build_graph())
        fp_b = graph_fingerprint(build_graph())
        assert fp_a == fp_b
        assert cache_key(SPEC, fp_a, "code") == cache_key(SPEC, fp_b, "code")

    def test_insertion_order_does_not_matter(self):
        forward = build_graph()
        backward = PropertyGraph("tiny")
        for index in reversed(range(6)):
            backward.add_node(f"t{index}", "Tweet", {
                "id": 100 + index, "text": f"tweet {index}",
                "created_at": f"2021-03-{index + 1:02d}T09:00:00",
            })
            backward.add_node(f"u{index}", "User", {
                "id": index, "screen_name": f"@user{index}",
            })
            backward.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
        assert graph_fingerprint(forward) == graph_fingerprint(backward)

    def test_graph_change_changes_id(self):
        fp_a = graph_fingerprint(build_graph(variant=0))
        fp_b = graph_fingerprint(build_graph(variant=1))
        assert fp_a != fp_b
        assert cache_key(SPEC, fp_a, "code") != cache_key(SPEC, fp_b, "code")

    def test_config_change_changes_id(self):
        fp = graph_fingerprint(build_graph())
        tweaked = JobSpec(
            dataset="tiny", model="llama3", method="rag",
            prompt_mode="zero_shot", rag_top_k=4,
        )
        assert cache_key(SPEC, fp, "code") != cache_key(tweaked, fp, "code")

    def test_code_change_changes_id(self):
        fp = graph_fingerprint(build_graph())
        assert cache_key(SPEC, fp, "v1") != cache_key(SPEC, fp, "v2")


# ----------------------------------------------------------------------
# queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_priority_order_with_fifo_ties(self):
        queue = JobQueue(maxsize=8)
        queue.put("low-a", priority=5)
        queue.put("high", priority=1)
        queue.put("low-b", priority=5)
        assert queue.get() == "high"
        assert queue.get() == "low-a"
        assert queue.get() == "low-b"

    def test_backpressure_nonblocking(self):
        queue = JobQueue(maxsize=2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFull):
            queue.put("c", block=False)
        assert queue.depth == 2
        assert queue.max_depth_seen == 2

    def test_backpressure_timeout(self):
        queue = JobQueue(maxsize=1)
        queue.put("a")
        with pytest.raises(QueueFull):
            queue.put("b", timeout=0.01)

    def test_space_frees_after_get(self):
        queue = JobQueue(maxsize=1)
        queue.put("a")
        assert queue.get() == "a"
        queue.put("b", block=False)
        assert queue.get() == "b"

    def test_blocked_put_wakes_on_get(self):
        queue = JobQueue(maxsize=1)
        queue.put("a")
        done = threading.Event()

        def producer():
            queue.put("b", timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert queue.get() == "a"
        assert done.wait(timeout=5.0)
        assert queue.get() == "b"

    def test_close_rejects_put_and_drains_get(self):
        queue = JobQueue(maxsize=2)
        queue.put("a")
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("b")
        assert queue.get() == "a"      # pending work still drains
        with pytest.raises(QueueClosed):
            queue.get()

    def test_get_timeout(self):
        queue = JobQueue(maxsize=2)
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.01)


# ----------------------------------------------------------------------
# retry/backoff
# ----------------------------------------------------------------------
class FakeClock:
    """Manual clock: sleeping advances time; so does nothing else."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class TestRetryPolicy:
    def test_exponential_schedule_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0)
        assert [policy.delay(i) for i in range(4)] == [1.0, 2.0, 3.0, 3.0]

    def test_retries_then_succeeds_with_backoff(self):
        clock = FakeClock()
        calls = []

        def flaky():
            calls.append(clock())
            if len(calls) < 3:
                raise TransientLLMError("boom")
            return "ok"

        policy = RetryPolicy(max_retries=3, base_delay=0.5, multiplier=2.0)
        result = call_with_retry(
            flaky, policy, sleep=clock.sleep, clock=clock
        )
        assert result == "ok"
        assert len(calls) == 3
        assert clock.sleeps == [0.5, 1.0]

    def test_retries_exhausted(self):
        clock = FakeClock()

        def always_fails():
            raise TransientLLMError("down")

        policy = RetryPolicy(max_retries=2, base_delay=0.1)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            call_with_retry(
                always_fails, policy, sleep=clock.sleep, clock=clock
            )
        assert excinfo.value.attempts == 3       # initial + 2 retries
        assert clock.sleeps == [0.1, 0.2]

    def test_non_retryable_propagates_immediately(self):
        clock = FakeClock()

        def broken():
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            call_with_retry(
                broken, RetryPolicy(), sleep=clock.sleep, clock=clock
            )
        assert clock.sleeps == []

    def test_cooperative_timeout_stops_backoff(self):
        clock = FakeClock()

        def always_fails():
            raise TransientLLMError("down")

        policy = RetryPolicy(
            max_retries=10, base_delay=2.0, timeout_seconds=5.0
        )
        with pytest.raises(JobTimeoutError):
            call_with_retry(
                always_fails, policy, sleep=clock.sleep, clock=clock
            )
        # first backoff (2s) fits the 5s budget; the second (4s) would
        # land past the deadline, so it is never slept
        assert clock.sleeps == [2.0]


# ----------------------------------------------------------------------
# on-disk result cache
# ----------------------------------------------------------------------
def make_run() -> MiningRun:
    return MiningRun(
        dataset="tiny", model="llama3", method="rag",
        prompt_mode="zero_shot", mining_seconds=1.5,
    )


KEY = "ab" + "0" * 62


class TestResultCache:
    def test_miss_put_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(KEY) is None
        cache.put(KEY, make_run())
        fetched = cache.get(KEY)
        assert fetched is not None
        assert fetched.key() == make_run().key()
        assert fetched.mining_seconds == 1.5
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_hit_across_reload(self, tmp_path):
        ResultCache(tmp_path).put(KEY, make_run())
        reloaded = ResultCache(tmp_path)          # fresh process simulant
        assert KEY in reloaded
        fetched = reloaded.get(KEY)
        assert fetched is not None
        assert fetched.key() == make_run().key()
        assert reloaded.stats.hits == 1

    def test_corrupt_entry_is_evicted_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(KEY) is None
        assert cache.stats.evictions == 1
        assert not path.exists()

    def test_key_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, make_run())
        other = "cd" + "0" * 62
        payload = json.loads(cache.path_for(KEY).read_text())
        path = cache.path_for(other)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload))      # stored under wrong key
        assert cache.get(other) is None

    def test_newer_format_entry_is_left_alone_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({
            "format_version": FORMAT_VERSION + 1,
            "key": KEY,
            "run": {"format_version": FORMAT_VERSION + 1},
        }))
        assert cache.get(KEY) is None
        assert path.exists()                      # not evicted
        assert cache.stats.misses == 1

    def test_keys_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(KEY, make_run())
        assert cache.keys() == [KEY]
        assert len(cache) == 1


# ----------------------------------------------------------------------
# worker pool crash accounting
# ----------------------------------------------------------------------
class TestWorkerCrashCounter:
    def test_crash_increments_counter_with_exc_type(self):
        from repro.service import WorkerPool

        collector = obs.install()
        queue = JobQueue(maxsize=4)
        crashed = threading.Event()

        def execute(job: object) -> None:
            crashed.set()
            raise KeyError("execute callback exploded")

        pool = WorkerPool(queue, execute, workers=1)
        pool.start()
        queue.put(object())
        assert crashed.wait(timeout=10)
        queue.close()
        pool.join(timeout=10)
        counter = collector.metrics.counter("service.worker_crashes")
        # the crash is labelled by exception type, so dashboards can
        # tell a KeyError storm from a timeout storm
        assert counter.value(exc_type="KeyError") == 1
        assert counter.total() == 1
        # and the worker survived to report as cleanly exited, not dead
        assert pool.alive == 0
