"""Unit tests for cross-process trace stitching (repro.obs.distributed).

Covers the three pieces the gateway fleet relies on:

* traceparent mint/format/parse, including the W3C posture that a
  malformed inbound header is *ignored* (never an error);
* wire serialisation: offsets instead of absolute clocks, attr
  sanitisation, thread-name prefixing on rebuild;
* the gateway-side :class:`TraceAssembler` under a fake clock — phase
  stacks, leaked-phase closure, grafting, once-only publication into a
  collector's id space.
"""

from __future__ import annotations

import pytest

from repro.obs.distributed import (
    TraceAssembler,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    span_from_wire,
    span_to_wire,
)
from repro.obs.trace import Span, TraceCollector


class FakeClock:
    """Deterministic monotonically advancing clock."""

    def __init__(self, start: float = 100.0, step: float = 0.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# traceparent
# ----------------------------------------------------------------------
class TestTraceparent:
    def test_mint_format_parse_round_trip(self):
        trace_id = new_trace_id()
        span_id = new_span_id()
        assert len(trace_id) == 32 and len(span_id) == 16
        header = format_traceparent(trace_id, span_id)
        assert header == f"00-{trace_id}-{span_id}-01"
        assert parse_traceparent(header) == (trace_id, span_id)

    def test_ids_are_lowercase_hex_and_fresh(self):
        ids = {new_trace_id() for _ in range(16)}
        assert len(ids) == 16
        for value in ids:
            int(value, 16)  # raises on non-hex
            assert value == value.lower()

    def test_parse_normalises_case_and_whitespace(self):
        trace_id, span_id = "ab" * 16, "cd" * 8
        header = f"  00-{trace_id.upper()}-{span_id.upper()}-01  "
        assert parse_traceparent(header) == (trace_id, span_id)

    @pytest.mark.parametrize("header", [
        None,                                   # absent
        1234,                                   # not a string
        b"00-" + b"ab" * 16,                    # bytes
        "",                                     # empty
        "00-abc-def-01",                        # wrong lengths
        "00-" + "ab" * 16,                      # too few fields
        "xx-" + "ab" * 16 + "-" + "cd" * 8 + "-01",   # non-hex version
        "ff-" + "ab" * 16 + "-" + "cd" * 8 + "-01",   # forbidden version
        "00-" + "gg" * 16 + "-" + "cd" * 8 + "-01",   # non-hex trace id
        "00-" + "ab" * 16 + "-" + "zz" * 8 + "-01",   # non-hex span id
        "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",    # all-zero trace id
        "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",   # all-zero span id
    ])
    def test_malformed_headers_are_ignored_not_errors(self, header):
        assert parse_traceparent(header) is None

    def test_extra_fields_tolerated(self):
        # future versions may append fields; the first four still parse
        trace_id, span_id = "ab" * 16, "cd" * 8
        header = f"01-{trace_id}-{span_id}-01-extra-junk"
        assert parse_traceparent(header) == (trace_id, span_id)


# ----------------------------------------------------------------------
# wire serialisation
# ----------------------------------------------------------------------
def make_tree(clock: FakeClock) -> Span:
    collector = TraceCollector(wall_clock=clock)
    root = collector.start_span("worker.job", {"pid": 4242})
    clock.advance(1.0)
    child = collector.start_span("mine.sliding_window", {
        "windows": 4,
        "spec": ("tiny", "llama3"),          # non-primitive attr
    })
    child.add_sim_time(12.5)
    clock.advance(2.0)
    collector.end_span(child)
    clock.advance(0.5)
    collector.end_span(root)
    return root


class TestWireRoundTrip:
    def test_offsets_are_relative_and_rebase(self):
        clock = FakeClock(start=500.0)
        root = make_tree(clock)
        wire = span_to_wire(root)
        # no absolute clock readings leave the sender
        assert wire["start"] == 0.0
        assert wire["end"] == pytest.approx(3.5)
        assert wire["children"][0]["start"] == pytest.approx(1.0)
        assert wire["children"][0]["end"] == pytest.approx(3.0)

        rebuilt = span_from_wire(wire, base=42.0)
        assert rebuilt.start_wall == pytest.approx(42.0)
        assert rebuilt.end_wall == pytest.approx(45.5)
        inner = rebuilt.children[0]
        assert inner.start_wall == pytest.approx(43.0)
        assert inner.wall_seconds == pytest.approx(2.0)
        assert inner.sim_seconds == pytest.approx(12.5)
        assert inner.parent_id == rebuilt.span_id

    def test_attrs_sanitised_to_json_primitives(self):
        root = make_tree(FakeClock())
        wire = span_to_wire(root)
        attrs = wire["children"][0]["attrs"]
        assert attrs["windows"] == 4
        # tuples (unserialisable) are stringified, not dropped
        assert attrs["spec"] == str(("tiny", "llama3"))
        import json
        json.dumps(wire)                       # the whole payload is JSON-safe

    def test_thread_prefix_namespaces_sender_threads(self):
        root = make_tree(FakeClock())
        wire = span_to_wire(root)
        rebuilt = span_from_wire(wire, base=0.0, thread_prefix="w1")
        for span in rebuilt.walk():
            assert span.thread.startswith("w1:")

    def test_unfinished_span_survives_the_wire(self):
        clock = FakeClock()
        collector = TraceCollector(wall_clock=clock)
        root = collector.start_span("worker.job")
        wire = span_to_wire(root)              # never ended
        assert wire["end"] is None
        rebuilt = span_from_wire(wire, base=0.0)
        assert rebuilt.end_wall is None
        assert rebuilt.wall_seconds == 0.0


# ----------------------------------------------------------------------
# TraceAssembler
# ----------------------------------------------------------------------
class TestAssembler:
    def test_begin_is_idempotent(self):
        asm = TraceAssembler(clock=FakeClock())
        first = asm.begin("gateway.job", job_id="abc", skipped=None)
        second = asm.begin("gateway.job", job_id="zzz")
        assert first is second
        assert first.attributes["job_id"] == "abc"
        assert "skipped" not in first.attributes      # None never stamped
        assert first.attributes["trace_id"] == asm.trace_id
        assert first.attributes["traceparent"] == asm.traceparent

    def test_adopted_trace_id_flows_into_traceparent(self):
        trace_id = "ab" * 16
        asm = TraceAssembler(trace_id=trace_id, clock=FakeClock())
        parsed = parse_traceparent(asm.traceparent)
        assert parsed is not None and parsed[0] == trace_id

    def test_phases_stack_and_close_lifo(self):
        clock = FakeClock()
        asm = TraceAssembler(clock=clock)
        asm.begin()
        clock.advance(1.0)
        outer = asm.start_phase("gateway.attempt", attempt=0)
        clock.advance(1.0)
        inner = asm.start_phase("gateway.attempt", attempt=1)
        clock.advance(1.0)
        assert asm.end_phase("gateway.attempt", ok=True) is inner
        assert asm.end_phase("gateway.attempt") is outer
        assert inner.wall_seconds == pytest.approx(1.0)
        assert outer.wall_seconds == pytest.approx(2.0)
        assert inner.attributes["ok"] is True
        # closing an un-opened phase is a no-op, not an error
        assert asm.end_phase("gateway.queue") is None

    def test_finish_closes_leaked_phases_and_stamps_root(self):
        clock = FakeClock()
        asm = TraceAssembler(clock=clock)
        asm.begin()
        leaked = asm.start_phase("gateway.queue")
        clock.advance(3.0)
        root = asm.finish(state="done", error=None)
        assert leaked.finished and leaked.wall_seconds == pytest.approx(3.0)
        assert root.finished
        assert root.attributes["state"] == "done"
        assert "error" not in root.attributes

    def test_events_are_zero_duration(self):
        asm = TraceAssembler(clock=FakeClock())
        marker = asm.event("gateway.requeue", worker="w1")
        assert marker.finished and marker.wall_seconds == 0.0
        assert marker.attributes["worker"] == "w1"
        assert marker in asm.begin().children

    def test_graft_rebases_fragment_at_anchor(self):
        clock = FakeClock()
        asm = TraceAssembler(clock=clock)
        asm.begin()
        clock.advance(5.0)
        attempt = asm.start_phase("gateway.attempt")
        worker_tree = make_tree(FakeClock(start=9000.0))
        fragment = asm.graft(
            span_to_wire(worker_tree), under=attempt, worker="w0",
        )
        assert fragment in attempt.children
        # the remote zero offset maps to the attempt's start, regardless
        # of the sender's (arbitrary) clock
        assert fragment.start_wall == pytest.approx(attempt.start_wall)
        assert fragment.thread.startswith("w0:")
        assert asm.graft("not-a-mapping") is None

    def test_publish_once_into_collector_id_space(self):
        collector = TraceCollector()
        burned = collector.start_span("existing")
        collector.end_span(burned)
        asm = TraceAssembler(clock=FakeClock())
        asm.begin()
        asm.start_phase("gateway.queue")
        asm.end_phase("gateway.queue")
        asm.finish(state="done")               # no collector installed: no-op
        assert asm.publish(collector) is True
        assert asm.publish(collector) is False  # once only
        assert asm.root in collector.roots
        ids = [span.span_id for span in asm.root.walk()]
        assert len(set(ids)) == len(ids)
        # ids continue the collector's counter — no collision with live spans
        assert min(ids) > burned.span_id
        for span in asm.root.walk():
            for child in span.children:
                assert child.parent_id == span.span_id

    def test_pids_collects_distinct_pids_across_graft(self):
        asm = TraceAssembler(clock=FakeClock())
        asm.begin()                            # stamps the gateway pid
        attempt = asm.start_phase("gateway.attempt")
        asm.graft(span_to_wire(make_tree(FakeClock())), under=attempt)
        gateway_pid = asm.root.attributes["pid"]
        assert asm.pids() == sorted({gateway_pid, 4242})

    def test_to_dict_renders_connected_tree(self):
        collector = TraceCollector()
        clock = FakeClock()
        asm = TraceAssembler(clock=clock)
        asm.begin(job_id="abc")
        attempt = asm.start_phase("gateway.attempt")
        asm.graft(span_to_wire(make_tree(FakeClock())), under=attempt)
        clock.advance(1.0)
        asm.end_phase("gateway.attempt")
        asm.finish(state="done")
        asm.publish(collector)
        payload = asm.to_dict()
        assert payload["trace_id"] == asm.trace_id
        assert payload["complete"] is True
        assert payload["spans"] == sum(1 for _ in asm.root.walk())

        seen: set[int] = set()

        def walk(node: dict, parent: int | None) -> None:
            assert node["id"] not in seen
            seen.add(node["id"])
            assert node["parent"] == parent
            for child in node["children"]:
                walk(child, node["id"])

        walk(payload["root"], None)
        assert len(seen) == payload["spans"]

    def test_to_dict_before_begin_is_empty_not_an_error(self):
        asm = TraceAssembler(clock=FakeClock())
        payload = asm.to_dict()
        assert payload["root"] is None
        assert payload["spans"] == 0
        assert payload["complete"] is False
        assert payload["pids"] == []
