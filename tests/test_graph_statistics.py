"""Unit tests for graph statistics (Table 1 machinery)."""

from repro.graph import PropertyGraph, compute_statistics


def test_statistics_on_social_graph(social_graph):
    stats = compute_statistics(social_graph)
    assert stats.as_table1_row() == ("social", 5, 5, 2, 3)
    assert stats.node_label_counts == {"User": 2, "Tweet": 3}
    assert stats.edge_label_counts == {
        "POSTS": 3, "RETWEETS": 1, "FOLLOWS": 1,
    }
    # u1 has degree 3 (p1, p3 out; f1 out); t1 has degree 2
    assert stats.max_degree == 3
    assert stats.avg_degree == 10 / 5  # 2 endpoints per edge


def test_statistics_empty_graph():
    stats = compute_statistics(PropertyGraph("x"))
    assert stats.nodes == 0
    assert stats.edges == 0
    assert stats.max_degree == 0
    assert stats.avg_degree == 0.0
