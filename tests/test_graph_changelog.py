"""Graph change log: delta emission, batching, the ring buffer bound
and net-effect compaction."""

from __future__ import annotations

import pytest

from repro.graph import (
    DeltaKind,
    GraphChangeLog,
    GraphDelta,
    PropertyGraph,
    compact_deltas,
)


def build_graph() -> PropertyGraph:
    graph = PropertyGraph("log")
    graph.add_node("u1", "User", {"name": "alice"})
    graph.add_node("u2", "User", {"name": "bob"})
    graph.add_edge("f1", "FOLLOWS", "u1", "u2", {"since": "2020"})
    return graph


# ----------------------------------------------------------------------
# emission
# ----------------------------------------------------------------------
class TestEmission:
    def test_every_mutator_emits_a_typed_delta(self):
        graph = PropertyGraph("emit")
        log = GraphChangeLog().attach(graph)
        graph.add_node("u1", "User", {"name": "alice"})
        graph.add_node("u2", "User", {})
        graph.add_edge("f1", "FOLLOWS", "u1", "u2", {"since": "2020"})
        graph.update_node("u1", {"age": 30})
        graph.update_edge("f1", {"weight": 2})
        graph.remove_node_property("u1", "age")
        graph.remove_edge("f1")
        graph.remove_node("u2")
        kinds = [delta.kind for delta in log]
        assert kinds == [
            DeltaKind.NODE_ADDED, DeltaKind.NODE_ADDED,
            DeltaKind.EDGE_ADDED, DeltaKind.NODE_PROPS,
            DeltaKind.EDGE_PROPS, DeltaKind.NODE_PROPS,
            DeltaKind.EDGE_REMOVED, DeltaKind.NODE_REMOVED,
        ]

    def test_delta_fields_describe_the_mutation(self):
        graph = PropertyGraph("emit")
        log = GraphChangeLog().attach(graph)
        graph.add_node("u1", "User", {"name": "alice", "age": 30})
        graph.add_node("u2", "User", {})
        graph.add_edge("f1", "FOLLOWS", "u1", "u2", {"since": "2020"})
        added, _, edge = log.deltas()
        assert added.subject_id == "u1"
        assert added.labels == ("User",)
        assert added.keys == ("age", "name")
        assert edge.edge_label == "FOLLOWS"
        assert edge.src == "u1" and edge.dst == "u2"
        assert edge.keys == ("since",)

    def test_remove_node_cascades_edge_removals_first(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.remove_node("u1")
        kinds = [delta.kind for delta in log]
        assert kinds == [DeltaKind.EDGE_REMOVED, DeltaKind.NODE_REMOVED]
        assert log.deltas()[0].subject_id == "f1"

    def test_epochs_are_monotonic_and_match_the_graph(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.update_node("u1", {"age": 1})
        graph.update_node("u1", {"age": 2})
        first, second = log.deltas()
        assert first.epoch < second.epoch
        assert second.epoch == graph.epoch

    def test_unsubscribe_stops_recording(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        log.detach(graph)
        graph.update_node("u1", {"age": 1})
        assert len(log) == 0

    def test_since_filters_by_epoch(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.update_node("u1", {"age": 1})
        mark = graph.epoch
        graph.update_node("u2", {"age": 2})
        later = log.since(mark)
        assert [d.subject_id for d in later] == ["u2"]
        assert log.since(graph.epoch) == []


# ----------------------------------------------------------------------
# batch(): one epoch bump, deltas stamped with the committing epoch
# ----------------------------------------------------------------------
class TestBatch:
    def test_batch_coalesces_mutations_into_one_epoch(self):
        graph = build_graph()
        before = graph.epoch
        with graph.batch():
            graph.add_node("u3", "User", {})
            graph.add_edge("f2", "FOLLOWS", "u2", "u3")
            graph.update_node("u1", {"age": 9})
        assert graph.epoch == before + 1

    def test_batch_deltas_carry_the_committing_epoch(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        with graph.batch():
            graph.add_node("u3", "User", {})
            graph.update_node("u1", {"age": 9})
        assert {delta.epoch for delta in log} == {graph.epoch}

    def test_empty_batch_does_not_bump_the_epoch(self):
        graph = build_graph()
        before = graph.epoch
        with graph.batch():
            pass
        assert graph.epoch == before

    def test_nested_batches_commit_once_at_the_outermost_exit(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        before = graph.epoch
        with graph.batch():
            graph.add_node("u3", "User", {})
            with graph.batch():
                graph.add_node("u4", "User", {})
            assert graph.epoch == before      # still uncommitted
        assert graph.epoch == before + 1
        assert {delta.epoch for delta in log} == {graph.epoch}

    def test_batch_flushes_deltas_even_when_the_body_raises(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        with pytest.raises(RuntimeError):
            with graph.batch():
                graph.add_node("u3", "User", {})
                raise RuntimeError("boom")
        # the store is not transactional: the mutation stayed applied
        # and its delta was flushed at the committed epoch
        assert graph.has_node("u3")
        assert [d.subject_id for d in log] == ["u3"]
        assert log.deltas()[0].epoch == graph.epoch

    def test_mid_batch_reads_see_content_but_not_the_new_epoch(self):
        graph = build_graph()
        before = graph.fingerprint()
        with graph.batch():
            graph.add_node("u3", "User", {})
            assert graph.has_node("u3")
            assert graph.fingerprint() == before
        assert graph.fingerprint() != before

    def test_mid_batch_catalog_is_not_cached_stale(self):
        graph = build_graph()
        with graph.batch():
            graph.add_node("m1", "Moderator", {})
            assert "Moderator" in graph.catalog().label_counts
            graph.add_node("m2", "Admin", {})
            assert "Admin" in graph.catalog().label_counts
        assert "Admin" in graph.catalog().label_counts


# ----------------------------------------------------------------------
# ring buffer bound
# ----------------------------------------------------------------------
class TestRingBuffer:
    def test_capacity_evicts_oldest_and_raises_the_watermark(self):
        graph = PropertyGraph("ring")
        log = GraphChangeLog(capacity=3).attach(graph)
        for index in range(5):
            graph.add_node(f"u{index}", "User", {})
        assert len(log) == 3
        assert log.dropped == 2
        assert [d.subject_id for d in log] == ["u2", "u3", "u4"]

    def test_complete_since_reflects_lost_deltas(self):
        graph = PropertyGraph("ring")
        log = GraphChangeLog(capacity=2).attach(graph)
        graph.add_node("u0", "User", {})
        first_epoch = graph.epoch
        assert log.complete_since(0)
        graph.add_node("u1", "User", {})
        graph.add_node("u2", "User", {})          # drops u0's delta
        assert not log.complete_since(0)
        assert log.complete_since(first_epoch)

    def test_deliberate_clear_is_not_data_loss(self):
        graph = PropertyGraph("ring")
        log = GraphChangeLog(capacity=8).attach(graph)
        graph.add_node("u0", "User", {})
        graph.add_node("u1", "User", {})
        mark = graph.epoch
        removed = log.clear(through_epoch=mark)
        assert removed == 2
        assert log.complete_since(0)              # watermark did not move
        graph.add_node("u2", "User", {})
        assert [d.subject_id for d in log.since(mark)] == ["u2"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            GraphChangeLog(capacity=0)


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
def node_added(subject: str, epoch: int, keys=()) -> GraphDelta:
    return GraphDelta(
        kind=DeltaKind.NODE_ADDED, epoch=epoch, subject_id=subject,
        labels=("User",), keys=tuple(keys),
    )


def node_props(subject: str, epoch: int, keys) -> GraphDelta:
    return GraphDelta(
        kind=DeltaKind.NODE_PROPS, epoch=epoch, subject_id=subject,
        labels=("User",), keys=tuple(keys),
    )


def node_removed(subject: str, epoch: int) -> GraphDelta:
    return GraphDelta(
        kind=DeltaKind.NODE_REMOVED, epoch=epoch, subject_id=subject,
        labels=("User",),
    )


def edge_delta(kind: DeltaKind, subject: str, epoch: int) -> GraphDelta:
    return GraphDelta(
        kind=kind, epoch=epoch, subject_id=subject,
        edge_label="FOLLOWS", src="u1", dst="u2",
    )


class TestCompaction:
    def test_props_merge_into_the_preceding_add(self):
        compacted = compact_deltas([
            node_added("u1", 1, keys=("name",)),
            node_props("u1", 2, keys=("age",)),
            node_props("u1", 3, keys=("age", "bio")),
        ])
        assert len(compacted) == 1
        (delta,) = compacted
        assert delta.kind == DeltaKind.NODE_ADDED
        assert delta.keys == ("name", "age", "bio")
        # merged delta stays visible to since(2): it carries the max epoch
        assert delta.epoch == 3

    def test_born_then_removed_cancels_entirely(self):
        compacted = compact_deltas([
            node_added("u1", 1),
            node_props("u1", 2, keys=("age",)),
            node_removed("u1", 3),
        ])
        assert compacted == []

    def test_props_before_an_external_remove_are_dropped(self):
        compacted = compact_deltas([
            node_props("u1", 1, keys=("age",)),
            node_removed("u1", 2),
        ])
        assert [d.kind for d in compacted] == [DeltaKind.NODE_REMOVED]

    def test_interleaved_add_remove_of_the_same_edge_cancels(self):
        # the satellite case from the issue: A,R,A,R of one edge id
        deltas = [
            edge_delta(DeltaKind.EDGE_ADDED, "f9", 1),
            edge_delta(DeltaKind.EDGE_REMOVED, "f9", 2),
            edge_delta(DeltaKind.EDGE_ADDED, "f9", 3),
            edge_delta(DeltaKind.EDGE_REMOVED, "f9", 4),
        ]
        assert compact_deltas(deltas) == []

    def test_remove_then_readd_keeps_both(self):
        compacted = compact_deltas([
            edge_delta(DeltaKind.EDGE_REMOVED, "f9", 1),
            edge_delta(DeltaKind.EDGE_ADDED, "f9", 2),
        ])
        assert [d.kind for d in compacted] == [
            DeltaKind.EDGE_REMOVED, DeltaKind.EDGE_ADDED,
        ]

    def test_node_and_edge_id_spaces_are_disjoint(self):
        # same subject id, different spaces: neither cancels the other
        compacted = compact_deltas([
            node_added("x", 1),
            edge_delta(DeltaKind.EDGE_REMOVED, "x", 2),
        ])
        assert len(compacted) == 2

    def test_compaction_preserves_cross_subject_order(self):
        compacted = compact_deltas([
            node_added("u1", 1),
            node_added("u2", 2),
            node_props("u1", 3, keys=("age",)),
        ])
        # u1's merged delta is ordered by its *last* activity (epoch 3)
        assert [d.subject_id for d in compacted] == ["u2", "u1"]

    def test_live_log_compacts_interleaved_mutations(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.add_edge("f2", "FOLLOWS", "u2", "u1")
        graph.remove_edge("f2")
        graph.add_edge("f2", "FOLLOWS", "u2", "u1")
        graph.remove_edge("f2")
        graph.update_node("u1", {"age": 40})
        removed = log.compact()
        assert removed == 4
        assert [d.kind for d in log] == [DeltaKind.NODE_PROPS]
