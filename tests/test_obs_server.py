"""Live telemetry endpoint tests (repro.obs.server) — real HTTP GETs
against an ephemeral-port server, the curl-equivalent checks."""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.service import MiningService, RetryPolicy
from tests.test_service_e2e import build_dataset


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def get(url: str):
    """(status, content_type, body_bytes) for one GET, errors included."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read(),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), error.read()


#: one exposition-format sample line: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


def assert_prometheus_parses(text: str) -> dict[str, float]:
    """Minimal exposition-format parser; returns bare-name samples."""
    values: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE "))
            continue
        assert _SAMPLE.match(line), f"unparsable sample line: {line!r}"
        name_part, value = line.rsplit(" ", 1)
        values[name_part] = float(value)
    return values


class TestEndpoints:
    def test_metrics_parses_as_prometheus_text(self):
        registry = obs.MetricsRegistry()
        registry.counter("jobs_done").inc(4, state="ok")
        registry.histogram("latency").observe(0.2)
        with obs.TelemetryServer(registry=registry) as server:
            status, content_type, body = get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        values = assert_prometheus_parses(body.decode("utf-8"))
        assert values['jobs_done{state="ok"}'] == 4
        assert values["latency_count"] == 1

    def test_metrics_503_without_registry(self):
        with obs.TelemetryServer(registry=lambda: None) as server:
            status, _ctype, body = get(server.url + "/metrics")
        assert status == 503
        assert "registry" in json.loads(body)["error"]

    def test_metrics_defaults_to_installed_collector(self):
        collector = obs.install()
        collector.metrics.counter("live_counter").inc(7)
        with obs.TelemetryServer() as server:
            status, _ctype, body = get(server.url + "/metrics")
        assert status == 200
        assert "live_counter 7" in body.decode("utf-8")

    def test_healthz(self):
        with obs.TelemetryServer(registry=lambda: None) as server:
            status, content_type, body = get(server.url + "/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0

    def test_jobs_404_without_provider(self):
        with obs.TelemetryServer(registry=lambda: None) as server:
            status, _ctype, body = get(server.url + "/jobs")
        assert status == 404

    def test_unknown_path_lists_endpoints(self):
        with obs.TelemetryServer(registry=lambda: None) as server:
            status, _ctype, body = get(server.url + "/nope")
        assert status == 404
        assert json.loads(body)["endpoints"] == [
            "/metrics", "/healthz", "/jobs"
        ]

    def test_provider_crash_is_a_500_not_a_dead_server(self):
        def boom() -> dict:
            raise RuntimeError("provider exploded")

        with obs.TelemetryServer(registry=lambda: None, jobs=boom) as server:
            status, _ctype, body = get(server.url + "/jobs")
            assert status == 500
            assert "exploded" in json.loads(body)["error"]
            # and the next probe still answers
            status, _ctype, _body = get(server.url + "/healthz")
            assert status == 200


class TestLiveService:
    def test_jobs_reflects_queued_to_done_transition(self):
        loader = lambda name: build_dataset(name)  # noqa: E731
        collector = obs.install()
        with MiningService(
            loader=loader, workers=2,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
        ) as service:
            with obs.TelemetryServer(
                registry=collector.metrics, jobs=service.telemetry,
            ) as server:
                before = json.loads(get(server.url + "/jobs")[2])
                assert before["submitted"] == 0
                assert before["workers"]["total"] == 2
                assert before["queue"]["capacity"] == 64

                job_id = service.submit(
                    "tiny", "llama3", "rag", "zero_shot"
                )
                service.result(job_id, timeout=60)

                after = json.loads(get(server.url + "/jobs")[2])
                assert after["submitted"] == 1
                assert after["jobs"]["done"] == 1
                assert after["jobs"]["queued"] == 0
                assert after["queue"]["depth"] == 0
                assert after["workers"]["busy"] == 0
                assert after["workers"]["utilization"] == 0.0

                # the same run's metrics are live on /metrics
                status, _ctype, body = get(server.url + "/metrics")
                assert status == 200
                text = body.decode("utf-8")
                assert_prometheus_parses(text)
                assert "service_jobs_submitted 1" in text
