"""Tests for the relational-data bridge (§5)."""

import pytest

from repro.graph import infer_schema
from repro.mining import PipelineContext, SlidingWindowPipeline
from repro.datasets.base import Dataset, DirtReport
from repro.relational import (
    ForeignKey,
    RelationalDatabase,
    Table,
    database_to_graph,
    rule_to_sql,
)
from repro.rules import ConsistencyRule, RuleKind


@pytest.fixture()
def shop():
    db = RelationalDatabase("shop")
    customers = db.add_table(Table(
        "Customer", ("id", "email", "country"), "id",
    ))
    orders = db.add_table(Table(
        "Orders", ("id", "customer_id", "total", "status"), "id",
        (ForeignKey("customer_id", "Customer", relationship="PLACED_BY"),),
    ))
    customers.insert_many([
        {"id": i, "email": f"user{i}@example.com", "country": "FR"}
        for i in range(10)
    ])
    orders.insert_many([
        {"id": i, "customer_id": i % 10, "total": 5 * i,
         "status": "paid" if i % 3 else "open"}
        for i in range(25)
    ])
    return db


class TestModel:
    def test_pk_must_be_column(self):
        with pytest.raises(ValueError):
            Table("T", ("a",), "b")

    def test_fk_column_must_exist(self):
        with pytest.raises(ValueError):
            Table("T", ("a",), "a", (ForeignKey("zz", "U"),))

    def test_insert_rejects_unknown_columns(self, shop):
        with pytest.raises(ValueError):
            shop.table("Customer").insert({"id": 99, "ghost": 1})

    def test_insert_nulls_missing_columns(self, shop):
        shop.table("Customer").insert({"id": 99})
        row = shop.table("Customer").rows[-1]
        assert row == {"id": 99, "email": None, "country": None}

    def test_duplicate_table_rejected(self, shop):
        with pytest.raises(ValueError):
            shop.add_table(Table("Customer", ("id",), "id"))

    def test_validate_references(self, shop):
        assert shop.validate_references() == []
        shop.table("Orders").insert(
            {"id": 99, "customer_id": 12345, "total": 1}
        )
        problems = shop.validate_references()
        assert len(problems) == 1
        assert "12345" in problems[0]


class TestConversion:
    def test_rows_become_labelled_nodes(self, shop):
        graph = database_to_graph(shop)
        assert graph.node_count("Customer") == 10
        assert graph.node_count("Orders") == 25
        node = graph.node("Customer:3")
        assert node.properties["email"] == "user3@example.com"

    def test_fks_become_edges(self, shop):
        graph = database_to_graph(shop)
        assert graph.edge_count("PLACED_BY") == 25
        schema = infer_schema(graph)
        assert schema.edge_connects("Orders", "PLACED_BY", "Customer")

    def test_null_columns_become_absent_properties(self, shop):
        shop.table("Customer").insert({"id": 99})
        graph = database_to_graph(shop)
        assert "email" not in graph.node("Customer:99").properties

    def test_dangling_fk_produces_no_edge(self, shop):
        shop.table("Orders").insert(
            {"id": 99, "customer_id": 777, "total": 1}
        )
        graph = database_to_graph(shop)
        assert graph.edge_count("PLACED_BY") == 25  # not 26

    def test_null_pk_rejected(self, shop):
        shop.table("Customer").insert({"email": "x@y.z"})
        with pytest.raises(ValueError):
            database_to_graph(shop)

    def test_default_edge_label(self):
        db = RelationalDatabase("d")
        db.add_table(Table("A", ("id",), "id"))
        b = db.add_table(Table(
            "B", ("id", "a_id"), "id", (ForeignKey("a_id", "A"),),
        ))
        db.table("A").insert({"id": 1})
        b.insert({"id": 1, "a_id": 1})
        graph = database_to_graph(db)
        assert graph.edge_labels() == ["REFS_A"]


class TestMiningOnRelationalData:
    def test_pipeline_finds_relational_rules(self, shop):
        graph = database_to_graph(shop)
        dataset = Dataset(graph=graph, true_rules=[], dirt=DirtReport())
        context = PipelineContext.build(dataset)
        run = SlidingWindowPipeline(
            context, window_size=2000, overlap=200
        ).mine("llama3", "zero_shot")
        assert run.rule_count >= 3
        texts = " ".join(rule.text for rule in run.rules)
        assert "Customer" in texts or "Orders" in texts


class TestSqlRendering:
    def test_not_null(self):
        sql = rule_to_sql(ConsistencyRule(
            RuleKind.PROPERTY_EXISTS, "", label="Customer",
            properties=("email",),
        ))
        assert sql == (
            "ALTER TABLE Customer ALTER COLUMN email SET NOT NULL;"
        )

    def test_unique(self):
        sql = rule_to_sql(ConsistencyRule(
            RuleKind.UNIQUENESS, "", label="Customer",
            properties=("email",),
        ))
        assert "UNIQUE (email)" in sql

    def test_check_domain(self):
        sql = rule_to_sql(ConsistencyRule(
            RuleKind.VALUE_DOMAIN, "", label="Orders",
            properties=("status",), allowed_values=("paid", "open"),
        ))
        assert "CHECK (status IN ('paid', 'open'))" in sql

    def test_check_format(self):
        sql = rule_to_sql(ConsistencyRule(
            RuleKind.VALUE_FORMAT, "", label="Customer",
            properties=("email",), pattern_regex=r".+@.+",
        ))
        assert "~ '.+@.+'" in sql

    def test_string_escaping(self):
        sql = rule_to_sql(ConsistencyRule(
            RuleKind.VALUE_DOMAIN, "", label="T",
            properties=("p",), allowed_values=("it's",),
        ))
        assert "'it''s'" in sql

    def test_mandatory_edge_from_fk(self):
        sql = rule_to_sql(ConsistencyRule(
            RuleKind.MANDATORY_EDGE, "", label="Orders",
            edge_label="REFS_CUSTOMER", src_label="Orders",
            dst_label="Customer",
        ))
        assert "NOT NULL" in sql

    def test_inexpressible_returns_none(self):
        assert rule_to_sql(ConsistencyRule(
            RuleKind.PATTERN, "", label="A", edge_label="E",
            dst_label="B", scope_label="C", scope_edge_label="F",
        )) is None
