"""Unit + property tests for cross-rule implication analysis
(repro.analysis.implication) and the dedup-stage pruning built on it.

The soundness contract: ``implies(A, B)`` returning True must mean the
rows matched by A are a subset of the rows matched by B **on every
graph**; conservative False answers are always allowed.  The property
test checks the claim against brute-force row containment on randomized
graphs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import implies, query_parts
from repro.cypher import execute
from repro.graph import PropertyGraph, infer_schema
from repro.rules.dedup import prune_implied
from repro.rules.model import ConsistencyRule, RuleKind


def _parts(text: str):
    parts = query_parts(text)
    assert parts is not None, text
    return parts


S = "RETURN count(*) AS satisfy"


class TestImplies:
    def test_reflexive(self):
        a = _parts(f"MATCH (n:User) WHERE n.id > 0 {S}")
        assert implies(a, a)

    def test_extra_conjunct_implies_subset(self):
        strong = _parts(
            f"MATCH (n:User) WHERE n.id > 0 AND n.name = 'alice' {S}"
        )
        weak = _parts(f"MATCH (n:User) WHERE n.id > 0 {S}")
        assert implies(strong, weak)
        assert not implies(weak, strong)

    def test_domain_entailment_on_bounds(self):
        tighter = _parts(f"MATCH (n:User) WHERE n.id > 5 {S}")
        looser = _parts(f"MATCH (n:User) WHERE n.id > 3 {S}")
        assert implies(tighter, looser)
        assert not implies(looser, tighter)

    def test_pinned_equality_entails_range(self):
        pinned = _parts(f"MATCH (n:User) WHERE n.id = 4 {S}")
        ranged = _parts(f"MATCH (n:User) WHERE n.id >= 4 {S}")
        assert implies(pinned, ranged)
        assert not implies(ranged, pinned)

    def test_alpha_renaming_is_erased(self):
        a = _parts(f"MATCH (x:User) WHERE x.id > 0 {S}")
        b = _parts(f"MATCH (y:User) WHERE y.id > 0 {S}")
        assert implies(a, b) and implies(b, a)

    def test_different_atoms_never_imply(self):
        a = _parts(f"MATCH (n:User) WHERE n.id > 0 {S}")
        b = _parts(f"MATCH (n:Tweet) WHERE n.id > 0 {S}")
        assert not implies(a, b)

    def test_unsat_strong_side_refused(self):
        # an UNSAT query matches nothing, which would vacuously "imply"
        # everything and let one broken rule erase the whole set
        broken = _parts(
            f"MATCH (n:User) WHERE n.id > 10 AND n.id < 0 {S}"
        )
        weak = _parts(f"MATCH (n:User) WHERE n.id > 10 {S}")
        assert broken.unsat
        assert not implies(broken, weak)


class TestPruneImplied:
    def _rules(self):
        domain = ConsistencyRule(
            kind=RuleKind.VALUE_DOMAIN, text="name is alice or bob",
            label="User", properties=("name",),
            allowed_values=("alice", "bob"),
        )
        exists = ConsistencyRule(
            kind=RuleKind.PROPERTY_EXISTS, text="name exists",
            label="User", properties=("name",),
        )
        return domain, exists

    def test_weaker_rule_pruned_with_provenance(self, social_schema):
        domain, exists = self._rules()
        pruned = prune_implied([domain, exists], social_schema)
        assert [rule.kind for rule in pruned] == [RuleKind.VALUE_DOMAIN]
        assert pruned[0].implied_by == (exists.text,)

    def test_order_does_not_save_the_weaker_rule(self, social_schema):
        domain, exists = self._rules()
        pruned = prune_implied([exists, domain], social_schema)
        assert [rule.kind for rule in pruned] == [RuleKind.VALUE_DOMAIN]

    def test_unrelated_rules_survive(self, social_schema):
        _domain, exists = self._rules()
        other = ConsistencyRule(
            kind=RuleKind.PROPERTY_EXISTS, text="tweets have text",
            label="Tweet", properties=("text",),
        )
        pruned = prune_implied([exists, other], social_schema)
        assert len(pruned) == 2
        assert all(rule.implied_by == () for rule in pruned)

    def test_equivalent_rules_keep_the_earlier(self, social_schema):
        _domain, exists = self._rules()
        twin = ConsistencyRule(
            kind=RuleKind.PROPERTY_EXISTS, text="name exists (again)",
            label="User", properties=("name",),
        )
        pruned = prune_implied([exists, twin], social_schema)
        assert len(pruned) == 1
        assert pruned[0].text == exists.text


# ----------------------------------------------------------------------
# property-based soundness: implies() vs brute-force row containment
# ----------------------------------------------------------------------
_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])
_bounds = st.integers(min_value=-2, max_value=8)


@st.composite
def _cases(draw):
    values = draw(st.lists(
        st.integers(min_value=-3, max_value=9), min_size=1, max_size=8,
    ))
    weak = [
        f"n.v {draw(_ops)} {draw(_bounds)}"
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    ]
    # the strong side sometimes extends the weak side (likely True
    # cases) and sometimes stands alone (exercises the False paths)
    extras = [
        f"n.v {draw(_ops)} {draw(_bounds)}"
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    ]
    strong = weak + extras if draw(st.booleans()) else (extras or weak)
    return values, " AND ".join(strong), " AND ".join(weak)


@given(_cases())
@settings(max_examples=100, deadline=None)
def test_implies_matches_brute_force_containment(case):
    values, strong_where, weak_where = case
    graph = PropertyGraph("hypo")
    for index, value in enumerate(values):
        graph.add_node(f"n{index}", "Item", {"id": index, "v": value})

    strong_query = f"MATCH (n:Item) WHERE {strong_where} {S}"
    weak_query = f"MATCH (n:Item) WHERE {weak_where} {S}"
    strong_parts = query_parts(strong_query)
    weak_parts = query_parts(weak_query)
    if strong_parts is None or weak_parts is None:
        return
    if not implies(strong_parts, weak_parts):
        return                        # conservative False is always sound

    def row_ids(where: str) -> set[int]:
        result = execute(
            graph, f"MATCH (n:Item) WHERE {where} RETURN n.id AS id"
        )
        return {row["id"] for row in result.rows}

    assert row_ids(strong_where) <= row_ids(weak_where)
