"""The watch service: debounced maintenance, drift events and the
telemetry payload — all with an injectable clock, no real sleeping."""

from __future__ import annotations

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.graph import PropertyGraph
from repro.metrics.definitions import RuleMetrics
from repro.stream import (
    DriftDetector,
    MaintenanceReport,
    MutationError,
    WatchService,
    confidence_band,
    detect_drift,
    violations,
)
from repro.stream.maintainer import RuleChange


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_dataset(name: str = "tiny") -> Dataset:
    graph = PropertyGraph(name)
    for index in range(4):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


def watch_service(clock: FakeClock | None = None) -> WatchService:
    return WatchService(
        tiny_dataset(), debounce_seconds=0.5,
        clock=clock or FakeClock(),
    )


def metrics(support: int, body: int) -> RuleMetrics:
    return RuleMetrics(support=support, relevant=body, body=body)


def report_with(changes: list[RuleChange]) -> MaintenanceReport:
    return MaintenanceReport(
        epoch=7, deltas=1, total_rules=len(changes),
        reevaluated=len(changes), changes=changes,
    )


# ----------------------------------------------------------------------
# drift primitives
# ----------------------------------------------------------------------
class TestDrift:
    def test_confidence_bands_are_quartiles(self):
        assert confidence_band(metrics(0, 10)) == 0      # 0%
        assert confidence_band(metrics(3, 10)) == 1      # 30%
        assert confidence_band(metrics(6, 10)) == 2      # 60%
        assert confidence_band(metrics(9, 10)) == 3      # 90%

    def test_violations_is_body_minus_support_clamped(self):
        assert violations(metrics(3, 10)) == 7
        assert violations(metrics(10, 10)) == 0

    def test_band_crossing_emits_confidence_band_event(self):
        # confidence climbs 60% -> 90% (band 2 -> 3); violations shrink,
        # so the band crossing is the only event
        change = RuleChange(
            index=0, rule_text="r",
            before=metrics(6, 10), after=metrics(9, 10),
        )
        events = detect_drift("tiny", report_with([change]))
        assert [e.kind for e in events] == ["confidence_band"]
        assert events[0].to_dict()["band_before"] == 2
        assert events[0].to_dict()["band_after"] == 3

    def test_growing_violations_emit_new_violations_event(self):
        # confidence stays in band 3 (90% -> 83%) but violations 1 -> 2
        change = RuleChange(
            index=0, rule_text="r",
            before=metrics(9, 10), after=metrics(10, 12),
        )
        events = detect_drift("tiny", report_with([change]))
        assert [e.kind for e in events] == ["new_violations"]

    def test_one_change_can_emit_both_kinds(self):
        change = RuleChange(
            index=0, rule_text="r",
            before=metrics(10, 10), after=metrics(5, 10),
        )
        kinds = {e.kind for e in detect_drift("tiny", report_with([change]))}
        assert kinds == {"confidence_band", "new_violations"}

    def test_metric_movement_within_a_band_is_silent(self):
        change = RuleChange(
            index=0, rule_text="r",
            before=metrics(8, 10), after=metrics(9, 10),
        )
        assert detect_drift("tiny", report_with([change])) == []

    def test_detector_counts_and_reaches_obs(self):
        collector = obs.install()
        detector = DriftDetector("tiny")
        change = RuleChange(
            index=0, rule_text="r",
            before=metrics(10, 10), after=metrics(0, 10),
        )
        detector.observe(report_with([change]))
        assert detector.total == 2
        telemetry = detector.telemetry()
        assert telemetry["by_kind"] == {
            "confidence_band": 1, "new_violations": 1,
        }
        assert len(telemetry["recent"]) == 2
        assert collector.metrics.counter("rule.drift").total() == 2

    def test_detector_retention_is_bounded(self):
        detector = DriftDetector("tiny", retain=3)
        for index in range(5):
            change = RuleChange(
                index=index, rule_text=f"r{index}",
                before=metrics(10, 10), after=metrics(0, 10),
            )
            detector.observe(report_with([change]))
        assert detector.total == 10                 # 2 kinds x 5 reports
        assert len(detector.events()) == 3          # but retention bounded


# ----------------------------------------------------------------------
# the watch service loop
# ----------------------------------------------------------------------
class TestWatchService:
    def test_prime_mines_a_baseline_once(self):
        service = watch_service()
        service.prime()
        first = service.run
        service.prime()
        assert service.run is first
        assert first.rule_count > 0

    def test_submit_applies_and_acknowledges(self):
        service = watch_service()
        before = service.graph.epoch
        ack = service.submit({"mutations": [
            {"op": "add_node", "id": "u9", "labels": ["User"],
             "properties": {"id": 9, "screen_name": "@nine"}},
            {"op": "add_edge", "id": "f9", "label": "FOLLOWS",
             "src": "u9", "dst": "u0"},
        ]})
        assert ack["applied"] == 2
        assert ack["epoch"] == service.graph.epoch > before
        assert ack["pending"] == 2
        assert service.dirty

    def test_submit_rejects_malformed_batches_atomically(self):
        service = watch_service()
        before = service.graph.epoch
        with pytest.raises(MutationError):
            service.submit({"mutations": [
                {"op": "add_node", "id": "u9", "labels": []},
            ]})
        with pytest.raises(MutationError):
            service.submit({"mutations": "nope"})
        assert service.graph.epoch == before
        assert not service.dirty

    def test_poll_respects_the_debounce_window(self):
        clock = FakeClock()
        service = watch_service(clock)
        service.prime()
        service.submit({"mutations": [
            {"op": "set_props", "target": "node", "id": "t0",
             "properties": {"text": "edited"}},
        ]})
        assert service.poll() is None               # burst still hot
        clock.advance(0.3)
        assert service.poll() is None               # still inside 0.5s
        clock.advance(0.3)
        report = service.poll()                     # quiet long enough
        assert report is not None
        assert not service.dirty

    def test_new_mutations_reset_the_debounce(self):
        clock = FakeClock()
        service = watch_service(clock)
        service.prime()
        batch = {"mutations": [
            {"op": "set_props", "target": "node", "id": "t0",
             "properties": {"text": "one"}},
        ]}
        service.submit(batch)
        clock.advance(0.4)
        service.submit(batch)                       # re-arms the window
        assert service.poll() is None
        clock.advance(0.6)
        assert service.poll() is not None

    def test_flush_is_noop_when_clean(self):
        service = watch_service()
        service.prime()
        assert service.flush() is None

    def test_flush_keeps_metrics_equivalent_to_recompute(self):
        service = watch_service()
        service.prime()
        service.submit({"mutations": [
            {"op": "add_node", "id": "u9", "labels": ["User"],
             "properties": {"id": 9}},
            {"op": "remove_edge", "id": "p3"},
            {"op": "remove_node", "id": "t3"},
        ]})
        report = service.flush()
        assert report is not None
        maintained = [r.metrics for r in service.run.results]
        assert maintained == service._maintainer.recompute()

    def test_flush_clears_the_consumed_changelog_prefix(self):
        service = watch_service()
        service.prime()
        service.submit({"mutations": [
            {"op": "set_props", "target": "node", "id": "t0",
             "properties": {"text": "x"}},
        ]})
        service.flush()
        assert len(service.changelog) == 0
        assert not service.dirty

    def test_windows_are_refreshed_and_accounted(self):
        service = watch_service()
        service.prime()
        total_before = service._window_set.window_count
        service.submit({"mutations": [
            {"op": "set_props", "target": "node", "id": "u0",
             "properties": {"screen_name": "@renamed"}},
        ]})
        service.flush()
        telemetry = service.telemetry()
        assert telemetry["windows"] is not None
        assert telemetry["maintenance"]["windows_changed"] >= 1
        assert service._window_set.window_count >= total_before - 1

    def test_telemetry_shape(self):
        service = watch_service()
        service.prime()
        telemetry = service.telemetry()
        assert telemetry["dataset"] == "tiny"
        assert telemetry["dirty"] is False
        assert telemetry["baseline_rules"] == service.run.rule_count
        assert telemetry["batches_received"] == 0
        assert telemetry["maintenance"]["batches"] == 0
        assert telemetry["maintenance"]["last"] is None
        assert telemetry["drift"]["total_events"] == 0
        assert telemetry["changelog"] == {"size": 0, "dropped": 0}

    def test_telemetry_reflects_a_maintenance_pass(self):
        service = watch_service()
        service.prime()
        service.submit({"mutations": [
            {"op": "set_props", "target": "node", "id": "t0",
             "properties": {"text": "y"}},
        ]})
        service.flush()
        telemetry = service.telemetry()
        assert telemetry["batches_received"] == 1
        assert telemetry["mutations_applied"] == 1
        last = telemetry["maintenance"]["last"]
        assert last["deltas"] == 1
        assert last["epoch"] == service.graph.epoch

    def test_start_stop_are_idempotent_and_stop_flushes(self):
        service = watch_service()
        service.prime()
        service.start()
        service.start()
        service.submit({"mutations": [
            {"op": "set_props", "target": "node", "id": "t0",
             "properties": {"text": "z"}},
        ]})
        service.stop()
        service.stop()
        assert not service.dirty                    # final flush ran
