"""Unit tests for the repro.obs tracing/metrics/export subsystem."""

from __future__ import annotations

import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_collector():
    """Every test starts and ends with no collector installed."""
    obs.uninstall()
    yield
    obs.uninstall()


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ----------------------------------------------------------------------
# tracing core
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_attributes(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        with obs.span("outer", dataset="mini") as outer:
            outer.set_attribute("extra", 42)
            with obs.span("inner") as inner:
                inner.add_sim_time(1.5)
            with obs.span("inner"):
                pass
        assert len(collector.roots) == 1
        root = collector.roots[0]
        assert root.name == "outer"
        assert root.attributes == {"dataset": "mini", "extra": 42}
        assert [c.name for c in root.children] == ["inner", "inner"]
        assert root.children[0].sim_seconds == 1.5
        assert root.children[0].parent_id == root.span_id
        assert all(s.finished for s in collector.iter_spans())

    def test_noop_without_collector(self):
        assert obs.get_collector() is None
        with obs.span("anything", key="value") as sp:
            sp.set_attribute("a", 1)
            sp.add_sim_time(3.0)
        # nothing was recorded anywhere and nothing raised
        obs.inc("some.counter", 5)
        obs.observe("some.histogram", 0.1)
        obs.set_gauge("some.gauge", 7)
        assert obs.get_collector() is None

    def test_injectable_clock_is_deterministic(self):
        def run_once() -> list[tuple[str, float, float]]:
            collector = obs.install(
                obs.TraceCollector(wall_clock=FakeClock(step=0.25))
            )
            with obs.span("a"):
                with obs.span("b"):
                    pass
            obs.uninstall()
            return [
                (s.name, s.start_wall, s.end_wall)
                for s in collector.iter_spans()
            ]

        assert run_once() == run_once()
        # start/end follow the fake clock exactly: a opens at 0.25,
        # b spans [0.50, 0.75], a closes at 1.00
        assert run_once() == [("a", 0.25, 1.0), ("b", 0.5, 0.75)]

    def test_exception_marks_span_and_unwinds(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (root,) = collector.roots
        assert root.attributes["error"] == "ValueError"
        assert root.finished
        # the per-thread stack is empty again: new spans become roots
        with obs.span("after"):
            pass
        assert [s.name for s in collector.roots] == ["failing", "after"]

    def test_traced_decorator(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))

        @obs.traced("my.op", flavour="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (root,) = collector.roots
        assert root.name == "my.op"
        assert root.attributes == {"flavour": "test"}

    def test_aggregate_by_name(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        for _ in range(3):
            with obs.span("work") as sp:
                sp.add_sim_time(2.0)
        stats = collector.aggregate()
        assert stats["work"].count == 3
        assert stats["work"].sim_seconds == pytest.approx(6.0)
        # FakeClock advances 1s per call; each span costs start+end
        assert stats["work"].wall_seconds == pytest.approx(3.0)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_totals(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("llm.calls")
        counter.inc(1, model="llama3")
        counter.inc(2, model="mixtral")
        counter.inc(1, model="llama3")
        assert counter.value(model="llama3") == 2
        assert counter.value(model="mixtral") == 2
        assert counter.total() == 4
        with pytest.raises(ValueError):
            counter.inc(-1)
        # get-or-create returns the same instrument; kind clash raises
        assert registry.counter("llm.calls") is counter
        with pytest.raises(TypeError):
            registry.gauge("llm.calls")

    def test_gauge(self):
        registry = obs.MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.set(10, worker=1)
        gauge.add(-3, worker=1)
        assert gauge.value(worker=1) == 7
        assert gauge.value(worker=2) == 0

    def test_histogram_bucketing(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        # <=0.1 gets 0.05 and 0.1; <=1.0 gets 0.5 and 1.0; <=10.0 gets
        # 5.0; +Inf overflow gets 100.0
        assert snap.counts == (2, 2, 1, 1)
        assert snap.cumulative() == (2, 4, 5, 6)
        assert snap.count == 6
        assert snap.sum == pytest.approx(106.65)

    def test_histogram_rejects_bad_buckets(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("dupes", buckets=(1.0, 1.0))

    def test_thread_safety(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("hits")
        hist = registry.histogram("values", buckets=(0.5,))
        threads = 8
        per_thread = 2000

        def work(worker: int) -> None:
            for _ in range(per_thread):
                counter.inc(1, worker=worker % 2)
                hist.observe(0.25)

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.total() == threads * per_thread
        assert hist.snapshot().count == threads * per_thread

    def test_spans_from_multiple_threads(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))

        def work(worker: int) -> None:
            with obs.span("worker", worker_id=worker):
                with obs.span("step"):
                    obs.inc("steps")

        pool = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # each thread gets its own stack: 6 roots, each with one child
        assert len(collector.roots) == 6
        assert all(len(root.children) == 1 for root in collector.roots)
        assert collector.metrics.counter("steps").total() == 6


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def _sample_collector(self) -> obs.TraceCollector:
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        with obs.span("root", dataset="mini") as root:
            root.add_sim_time(4.0)
            with obs.span("leaf", index=0):
                obs.inc("calls", 3, model="llama3")
                obs.observe("lat", 0.2, model="llama3")
                obs.set_gauge("depth", 2)
        obs.uninstall()
        return collector

    def test_jsonl_round_trip(self):
        collector = self._sample_collector()
        text = obs.to_jsonl(collector)
        parsed = obs.parse_jsonl(text)
        assert parsed.span_names() == {"root", "leaf"}
        (root,) = parsed.roots
        assert root.name == "root"
        assert root.attributes == {"dataset": "mini"}
        assert root.sim_seconds == pytest.approx(4.0)
        assert [c.name for c in root.children] == ["leaf"]
        assert root.children[0].attributes == {"index": 0}
        assert parsed.counter_value("calls") == 3
        kinds = {record["kind"] for record in parsed.metrics}
        assert kinds == {"counter", "gauge", "histogram"}

    def test_write_jsonl(self, tmp_path):
        collector = self._sample_collector()
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(collector, str(path))
        parsed = obs.parse_jsonl(path.read_text())
        assert parsed.span_names() == {"root", "leaf"}

    def test_prometheus_text(self):
        collector = self._sample_collector()
        text = obs.prometheus_text(collector.metrics)
        assert "# TYPE calls counter" in text
        assert 'calls{model="llama3"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf",model="llama3"} 1' in text
        assert 'lat_count{model="llama3"} 1' in text

    def test_summary_table(self):
        collector = self._sample_collector()
        table = obs.summary_table(collector)
        assert "root" in table and "leaf" in table
        assert "calls" in table and "model=llama3" in table
