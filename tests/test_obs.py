"""Unit tests for the repro.obs tracing/metrics/export subsystem."""

from __future__ import annotations

import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_collector():
    """Every test starts and ends with no collector installed."""
    obs.uninstall()
    yield
    obs.uninstall()


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ----------------------------------------------------------------------
# tracing core
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_attributes(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        with obs.span("outer", dataset="mini") as outer:
            outer.set_attribute("extra", 42)
            with obs.span("inner") as inner:
                inner.add_sim_time(1.5)
            with obs.span("inner"):
                pass
        assert len(collector.roots) == 1
        root = collector.roots[0]
        assert root.name == "outer"
        assert root.attributes == {"dataset": "mini", "extra": 42}
        assert [c.name for c in root.children] == ["inner", "inner"]
        assert root.children[0].sim_seconds == 1.5
        assert root.children[0].parent_id == root.span_id
        assert all(s.finished for s in collector.iter_spans())

    def test_noop_without_collector(self):
        assert obs.get_collector() is None
        with obs.span("anything", key="value") as sp:
            sp.set_attribute("a", 1)
            sp.add_sim_time(3.0)
        # nothing was recorded anywhere and nothing raised
        obs.inc("some.counter", 5)
        obs.observe("some.histogram", 0.1)
        obs.set_gauge("some.gauge", 7)
        assert obs.get_collector() is None

    def test_injectable_clock_is_deterministic(self):
        def run_once() -> list[tuple[str, float, float]]:
            collector = obs.install(
                obs.TraceCollector(wall_clock=FakeClock(step=0.25))
            )
            with obs.span("a"):
                with obs.span("b"):
                    pass
            obs.uninstall()
            return [
                (s.name, s.start_wall, s.end_wall)
                for s in collector.iter_spans()
            ]

        assert run_once() == run_once()
        # start/end follow the fake clock exactly: a opens at 0.25,
        # b spans [0.50, 0.75], a closes at 1.00
        assert run_once() == [("a", 0.25, 1.0), ("b", 0.5, 0.75)]

    def test_exception_marks_span_and_unwinds(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("boom")
        (root,) = collector.roots
        assert root.attributes["error"] == "ValueError"
        assert root.finished
        # the per-thread stack is empty again: new spans become roots
        with obs.span("after"):
            pass
        assert [s.name for s in collector.roots] == ["failing", "after"]

    def test_traced_decorator(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))

        @obs.traced("my.op", flavour="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (root,) = collector.roots
        assert root.name == "my.op"
        assert root.attributes == {"flavour": "test"}

    def test_aggregate_by_name(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        for _ in range(3):
            with obs.span("work") as sp:
                sp.add_sim_time(2.0)
        stats = collector.aggregate()
        assert stats["work"].count == 3
        assert stats["work"].sim_seconds == pytest.approx(6.0)
        # FakeClock advances 1s per call; each span costs start+end
        assert stats["work"].wall_seconds == pytest.approx(3.0)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_totals(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("llm.calls")
        counter.inc(1, model="llama3")
        counter.inc(2, model="mixtral")
        counter.inc(1, model="llama3")
        assert counter.value(model="llama3") == 2
        assert counter.value(model="mixtral") == 2
        assert counter.total() == 4
        with pytest.raises(ValueError):
            counter.inc(-1)
        # get-or-create returns the same instrument; kind clash raises
        assert registry.counter("llm.calls") is counter
        with pytest.raises(TypeError):
            registry.gauge("llm.calls")

    def test_gauge(self):
        registry = obs.MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.set(10, worker=1)
        gauge.add(-3, worker=1)
        assert gauge.value(worker=1) == 7
        assert gauge.value(worker=2) == 0

    def test_histogram_bucketing(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        # <=0.1 gets 0.05 and 0.1; <=1.0 gets 0.5 and 1.0; <=10.0 gets
        # 5.0; +Inf overflow gets 100.0
        assert snap.counts == (2, 2, 1, 1)
        assert snap.cumulative() == (2, 4, 5, 6)
        assert snap.count == 6
        assert snap.sum == pytest.approx(106.65)

    def test_histogram_rejects_bad_buckets(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("dupes", buckets=(1.0, 1.0))

    def test_thread_safety(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("hits")
        hist = registry.histogram("values", buckets=(0.5,))
        threads = 8
        per_thread = 2000

        def work(worker: int) -> None:
            for _ in range(per_thread):
                counter.inc(1, worker=worker % 2)
                hist.observe(0.25)

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.total() == threads * per_thread
        assert hist.snapshot().count == threads * per_thread

    def test_spans_from_multiple_threads(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))

        def work(worker: int) -> None:
            with obs.span("worker", worker_id=worker):
                with obs.span("step"):
                    obs.inc("steps")

        pool = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        # each thread gets its own stack: 6 roots, each with one child
        assert len(collector.roots) == 6
        assert all(len(root.children) == 1 for root in collector.roots)
        assert collector.metrics.counter("steps").total() == 6


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestExport:
    def _sample_collector(self) -> obs.TraceCollector:
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        with obs.span("root", dataset="mini") as root:
            root.add_sim_time(4.0)
            with obs.span("leaf", index=0):
                obs.inc("calls", 3, model="llama3")
                obs.observe("lat", 0.2, model="llama3")
                obs.set_gauge("depth", 2)
        obs.uninstall()
        return collector

    def test_jsonl_round_trip(self):
        collector = self._sample_collector()
        text = obs.to_jsonl(collector)
        parsed = obs.parse_jsonl(text)
        assert parsed.span_names() == {"root", "leaf"}
        (root,) = parsed.roots
        assert root.name == "root"
        assert root.attributes == {"dataset": "mini"}
        assert root.sim_seconds == pytest.approx(4.0)
        assert [c.name for c in root.children] == ["leaf"]
        assert root.children[0].attributes == {"index": 0}
        assert parsed.counter_value("calls") == 3
        kinds = {record["kind"] for record in parsed.metrics}
        assert kinds == {"counter", "gauge", "histogram"}

    def test_write_jsonl(self, tmp_path):
        collector = self._sample_collector()
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(collector, str(path))
        parsed = obs.parse_jsonl(path.read_text())
        assert parsed.span_names() == {"root", "leaf"}

    def test_prometheus_text(self):
        collector = self._sample_collector()
        text = obs.prometheus_text(collector.metrics)
        assert "# TYPE calls counter" in text
        assert 'calls{model="llama3"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf",model="llama3"} 1' in text
        assert 'lat_count{model="llama3"} 1' in text

    def test_summary_table(self):
        collector = self._sample_collector()
        table = obs.summary_table(collector)
        assert "root" in table and "leaf" in table
        assert "calls" in table and "model=llama3" in table


# ----------------------------------------------------------------------
# histogram quantile estimation
# ----------------------------------------------------------------------
class TestQuantiles:
    def _uniform_histogram(self):
        """1000 observations spread evenly over (0, 100] with decade
        buckets: the estimated quantiles land on the exact values."""
        registry = obs.MetricsRegistry()
        hist = registry.histogram(
            "d", buckets=tuple(float(b) for b in range(10, 101, 10))
        )
        for k in range(1000):
            hist.observe(k / 10.0 + 0.05)
        return hist.snapshot()

    def test_uniform_distribution_quantiles(self):
        snap = self._uniform_histogram()
        assert snap.quantile(0.50) == pytest.approx(50.0, abs=0.5)
        assert snap.quantile(0.95) == pytest.approx(95.0, abs=0.5)
        assert snap.quantile(0.99) == pytest.approx(99.0, abs=0.5)
        assert snap.percentiles() == {
            "p50": snap.quantile(0.50),
            "p95": snap.quantile(0.95),
            "p99": snap.quantile(0.99),
        }

    def test_quantiles_are_monotone_and_bounded(self):
        snap = self._uniform_histogram()
        grid = [snap.quantile(q / 20) for q in range(21)]
        assert grid == sorted(grid)
        assert grid[0] >= 0.0
        assert grid[-1] <= snap.buckets[-1]

    def test_single_bucket_interpolation(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("one", buckets=(10.0,))
        for _ in range(4):
            hist.observe(5.0)
        # all mass in (0, 10]: p50 interpolates to the bucket midpoint
        assert hist.snapshot().quantile(0.5) == pytest.approx(5.0)

    def test_overflow_clamps_to_largest_finite_bound(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram("c", buckets=(1.0, 2.0))
        for value in (0.5, 50.0, 60.0, 70.0):
            hist.observe(value)
        # p99 falls in the +Inf bucket; the estimate clamps to 2.0
        # rather than inventing an unbounded value
        assert hist.snapshot().quantile(0.99) == 2.0

    def test_empty_histogram_is_zero(self):
        registry = obs.MetricsRegistry()
        snap = registry.histogram("empty", buckets=(1.0,)).snapshot()
        assert snap.quantile(0.5) == 0.0

    def test_out_of_range_q_rejected(self):
        snap = self._uniform_histogram()
        with pytest.raises(ValueError):
            snap.quantile(-0.1)
        with pytest.raises(ValueError):
            snap.quantile(1.1)

    def test_summary_table_shows_percentiles(self):
        collector = obs.install(obs.TraceCollector(wall_clock=FakeClock()))
        for value in (0.1, 0.2, 0.3):
            obs.observe("lat", value)
        obs.uninstall()
        table = obs.summary_table(collector)
        assert "p50" in table and "p95" in table and "p99" in table


# ----------------------------------------------------------------------
# Prometheus exposition-format conformance
# ----------------------------------------------------------------------
class TestPromConformance:
    def test_label_value_escaping(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc(
            1, rule='say "hi"\nback\\slash'
        )
        text = obs.prometheus_text(registry)
        assert (
            'c{rule="say \\"hi\\"\\nback\\\\slash"} 1' in text
        )
        # the raw newline never leaks into the sample line
        assert all(
            line.startswith(("#", "c{")) for line in text.splitlines()
        )

    def test_metric_name_sanitization(self):
        registry = obs.MetricsRegistry()
        registry.counter("llm.calls-total").inc(1)
        registry.counter("9lives").inc(1)
        text = obs.prometheus_text(registry)
        assert "llm_calls_total 1" in text
        # names must not start with a digit
        assert "_9lives 1" in text
        assert "\n9lives" not in text

    def test_label_names_sanitized_and_sorted(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc(1, zeta=1, alpha=2)
        registry.counter("c").inc(1, alpha=2, zeta=1)   # same series
        text = obs.prometheus_text(registry)
        assert 'c{alpha="2",zeta="1"} 2' in text

    def test_output_order_is_stable(self):
        def build() -> obs.MetricsRegistry:
            registry = obs.MetricsRegistry()
            registry.counter("a").inc(1, x=1)
            registry.counter("a").inc(1, x=2)
            registry.histogram("h", buckets=(1.0,)).observe(0.5)
            registry.gauge("g").set(3)
            return registry

        assert obs.prometheus_text(build()) == obs.prometheus_text(build())

    def test_histogram_block_is_complete(self):
        registry = obs.MetricsRegistry()
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(
            0.05, model="llama3"
        )
        text = obs.prometheus_text(registry)
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="0.1",model="llama3"} 1' in text
        assert 'lat_bucket{le="+Inf",model="llama3"} 1' in text
        assert 'lat_sum{model="llama3"} 0.05' in text
        assert 'lat_count{model="llama3"} 1' in text
        # estimated quantiles ride along as untyped companion series
        assert 'lat_p50{model="llama3"}' in text
        assert 'lat_p95{model="llama3"}' in text
        assert 'lat_p99{model="llama3"}' in text
        assert "# TYPE lat_p50" not in text
