"""Columnar CSR matcher vs legacy object-walk equivalence (hypothesis).

The columnar path (`Executor(graph)` with the default ``columnar=True``)
interns labels into codes, walks CSR adjacency slices and evaluates
pushed-down prefilters against property columns — none of which may
change the *result*: for every randomized graph and every query in the
corpus, the columnar executor must produce exactly the same row multiset
as the legacy matcher (``columnar=False``), and raise the same error on
queries that raise.

Graphs here extend the planner-equivalence strategy with unicode string
properties, explicit ``None`` property values, self-loops and parallel
edges; queries reuse the full 20-query planner corpus plus columnar
stress queries (column-pushable equality on unicode values, IS NULL on a
stored-None column, and type-error-raising comparisons).
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import CypherError, Executor, clear_plan_caches, parse
from repro.graph import PropertyGraph
from tests.test_planner_equivalence import (
    _LABEL_SETS,
    QUERY_CORPUS,
    row_multiset,
)

_UNICODE = ("", "å", "日本", "ß∂ƒ", "naïve", "🎈")


# ----------------------------------------------------------------------
# graph strategy: planner-equivalence shape + unicode and None values
# ----------------------------------------------------------------------
@st.composite
def rich_graphs(draw):
    node_count = draw(st.integers(min_value=1, max_value=8))
    nodes = []
    for index in range(node_count):
        labels = draw(st.sampled_from(_LABEL_SETS))
        properties = {}
        if draw(st.booleans()):
            properties["p"] = draw(st.integers(min_value=0, max_value=3))
        if draw(st.booleans()):
            properties["q"] = draw(st.booleans())
        if draw(st.booleans()):
            properties["u"] = draw(st.sampled_from(_UNICODE))
        if draw(st.booleans()):
            properties["nil"] = None          # stored null, not absent
        nodes.append((f"n{index}", labels, properties))
    edge_count = draw(st.integers(min_value=0, max_value=2 * node_count))
    edges = []
    for number in range(edge_count):
        src = draw(st.integers(min_value=0, max_value=node_count - 1))
        dst = draw(st.integers(min_value=0, max_value=node_count - 1))
        label = draw(st.sampled_from(["R", "S"]))
        properties = {}
        if draw(st.booleans()):
            properties["w"] = draw(st.integers(min_value=0, max_value=2))
        edges.append((f"e{number}", label, f"n{src}", f"n{dst}", properties))
    return nodes, edges


def build_rich(spec) -> PropertyGraph:
    nodes, edges = spec
    graph = PropertyGraph("hyp-csr")
    for node_id, labels, properties in nodes:
        graph.add_node(node_id, labels, properties)
    for edge_id, label, src, dst, properties in edges:
        graph.add_edge(edge_id, label, src, dst, properties)
    return graph


# ----------------------------------------------------------------------
# query corpus: the planner corpus + columnar stress queries
# ----------------------------------------------------------------------
COLUMNAR_EXTRAS = (
    # column-pushable equality on a unicode value
    "MATCH (a {u: '日本'}) RETURN a.p AS p",
    "MATCH (a:A) WHERE a.u = 'å' RETURN a.u AS u",
    # IS NULL must treat a stored None exactly like an absent key
    "MATCH (a) WHERE a.nil IS NULL RETURN a.p AS p",
    "MATCH (a:B) WHERE a.u IS NOT NULL RETURN a.u AS u",
    # edge property filter along the CSR frontier
    "MATCH (a)-[r:R {w: 1}]->(b) RETURN a.p AS x, b.p AS y",
    "MATCH (a)-[r:S]->(b) WHERE r.w >= 1 RETURN r.w AS w",
    # multi-type relationship (no single-type CSR segment applies)
    "MATCH (a:A)-[r:R|S]->(b) RETURN b.p AS y",
    # undirected multi-type with a join-back
    "MATCH (a)-[:R|S]-(a) RETURN a.p AS p",
    # unicode values surviving aggregation + ordering
    "MATCH (a) WHERE a.u IS NOT NULL "
    "RETURN a.u AS u, count(*) AS c ORDER BY u",
)

ALL_QUERIES = QUERY_CORPUS + COLUMNAR_EXTRAS

# queries that raise CypherTypeError whenever a row reaches the
# comparison with incompatible non-null operands; both matchers must
# agree on whether (and with what) each graph raises
ERROR_QUERIES = (
    "MATCH (a) WHERE a.p < a.u RETURN a.p AS p",
    "MATCH (a)-[:R]->(b) WHERE a.u <= b.p RETURN a.p AS p",
    "MATCH (a) WHERE a.u + 1 = 2 RETURN a.u AS u",
)


def _outcome(graph, query_text, *, columnar):
    """Run one query; normalise result rows or the raised error."""
    clear_plan_caches()
    query = parse(query_text)
    try:
        result = Executor(graph, columnar=columnar).run(query)
    except CypherError as error:
        return ("error", type(error).__name__, str(error))
    return ("ok", tuple(result.columns), row_multiset(result))


# ----------------------------------------------------------------------
# the properties
# ----------------------------------------------------------------------
@given(spec=rich_graphs(), query_index=st.integers(0, len(ALL_QUERIES) - 1))
@settings(max_examples=250, deadline=None)
def test_columnar_equals_legacy(spec, query_index):
    graph = build_rich(spec)
    query_text = ALL_QUERIES[query_index]
    assert _outcome(graph, query_text, columnar=True) == _outcome(
        graph, query_text, columnar=False
    )


@given(spec=rich_graphs(), query_index=st.integers(0, len(ERROR_QUERIES) - 1))
@settings(max_examples=120, deadline=None)
def test_columnar_error_semantics_match(spec, query_index):
    graph = build_rich(spec)
    query_text = ERROR_QUERIES[query_index]
    assert _outcome(graph, query_text, columnar=True) == _outcome(
        graph, query_text, columnar=False
    )


@given(spec=rich_graphs(), query_index=st.integers(0, len(ALL_QUERIES) - 1))
@settings(max_examples=80, deadline=None)
def test_columnar_equals_legacy_after_mutation(spec, query_index):
    """Incremental snapshot updates keep the columnar path equivalent."""
    graph = build_rich(spec)
    graph.columnar()                      # compile, so mutations go incremental
    nodes, edges = spec
    first_id = nodes[0][0]
    graph.update_node(first_id, {"p": 99, "u": "après"})
    graph.add_node("extra", "A", {"p": 1})
    graph.add_edge("extra_e", "R", first_id, "extra", {"w": 2})
    if edges:
        graph.remove_edge(edges[0][0])
    snapshot = graph.columnar()
    assert snapshot.origin in ("incremental", "full")
    query_text = ALL_QUERIES[query_index]
    assert _outcome(graph, query_text, columnar=True) == _outcome(
        graph, query_text, columnar=False
    )


@given(spec=rich_graphs(), value=st.sampled_from(_UNICODE))
@settings(max_examples=60, deadline=None)
def test_columnar_parameterized_unicode(spec, value):
    clear_plan_caches()
    graph = build_rich(spec)
    query = parse("MATCH (a) WHERE a.u = $v RETURN a.u AS u")
    parameters = {"v": value}
    fast = Executor(graph, parameters, columnar=True).run(query)
    slow = Executor(graph, parameters, columnar=False).run(query)
    assert row_multiset(fast) == row_multiset(slow)


@given(spec=rich_graphs())
@settings(max_examples=40, deadline=None)
def test_columnar_self_loop_var_length(spec):
    """Var-length patterns plan as legacy even with columnar on."""
    clear_plan_caches()
    graph = build_rich(spec)
    query = parse("MATCH (a)-[:R*1..3]->(a) RETURN a.p AS p")
    fast = Executor(graph, columnar=True).run(query)
    slow = Executor(graph, columnar=False).run(query)
    assert row_multiset(fast) == row_multiset(slow)
