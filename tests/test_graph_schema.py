"""Unit tests for schema inference."""

from repro.graph import PropertyGraph, infer_schema


def test_node_profiles_count_and_keys(social_graph):
    schema = infer_schema(social_graph)
    assert schema.node_labels() == ["Tweet", "User"]
    user = schema.node_profiles["User"]
    assert user.count == 2
    assert user.property_keys() == ["active", "id", "name"]


def test_edge_profiles(social_graph):
    schema = infer_schema(social_graph)
    assert schema.edge_labels() == ["FOLLOWS", "POSTS", "RETWEETS"]
    follows = schema.edge_profiles["FOLLOWS"]
    assert follows.count == 1
    assert follows.property_keys() == ["since"]


def test_endpoint_signatures(social_graph):
    schema = infer_schema(social_graph)
    posts = schema.endpoint_signatures("POSTS")
    assert len(posts) == 1
    assert (posts[0].src_label, posts[0].dst_label) == ("User", "Tweet")
    assert posts[0].count == 3


def test_edge_connects_directional(social_graph):
    schema = infer_schema(social_graph)
    assert schema.edge_connects("User", "POSTS", "Tweet")
    assert not schema.edge_connects("Tweet", "POSTS", "User")
    assert schema.edge_connects("Tweet", "RETWEETS", "Tweet")


def test_has_properties(social_graph):
    schema = infer_schema(social_graph)
    assert schema.has_node_property("User", "name")
    assert not schema.has_node_property("User", "password")
    assert schema.has_edge_property("FOLLOWS", "since")
    assert not schema.has_edge_property("POSTS", "since")


def test_property_profile_statistics():
    graph = PropertyGraph()
    graph.add_node("a", "X", {"k": 1})
    graph.add_node("b", "X", {"k": 1})
    graph.add_node("c", "X", {})
    schema = infer_schema(graph)
    profile = schema.node_profiles["X"].properties["k"]
    assert profile.present == 2
    assert profile.completeness(3) == 2 / 3
    assert profile.uniqueness() == 0.5  # one distinct value, two rows
    assert profile.dominant_type == "integer"


def test_type_names():
    graph = PropertyGraph()
    graph.add_node("a", "X", {
        "s": "x", "i": 3, "f": 1.5, "b": True, "l": [1, 2],
    })
    profile = infer_schema(graph).node_profiles["X"]
    types = {k: p.dominant_type for k, p in profile.properties.items()}
    assert types == {
        "s": "string", "i": "integer", "f": "float",
        "b": "boolean", "l": "list",
    }


def test_mandatory_and_candidate_keys():
    graph = PropertyGraph()
    for index in range(10):
        props = {"id": index, "group": index % 2}
        if index != 0:
            props["opt"] = index
        graph.add_node(f"n{index}", "X", props)
    profile = infer_schema(graph).node_profiles["X"]
    assert profile.mandatory_keys() == ["group", "id"]
    assert profile.mandatory_keys(threshold=0.5) == ["group", "id", "opt"]
    assert profile.candidate_keys() == ["id"]


def test_describe_mentions_everything(social_graph):
    text = infer_schema(social_graph).describe()
    assert "User" in text and "Tweet" in text
    assert "(User)-[:POSTS]->(Tweet)" in text
    assert "since" in text


def test_multilabel_node_counted_in_each_profile():
    graph = PropertyGraph()
    graph.add_node("a", ["A", "B"], {"k": 1})
    graph.add_node("x", "A")
    graph.add_node("y", "B")
    graph.add_edge("e", "R", "a", "x")
    schema = infer_schema(graph)
    assert schema.node_profiles["A"].count == 2
    assert schema.node_profiles["B"].count == 2
    # the multi-label source yields one signature per label combination
    pairs = {(s.src_label, s.dst_label)
             for s in schema.endpoint_signatures("R")}
    assert pairs == {("A", "A"), ("B", "A")}
