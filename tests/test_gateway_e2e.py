"""End-to-end gateway tests: a real multi-process worker fleet behind
the HTTP front door.

The acceptance criteria of the serving subsystem, verified directly:

* a 2-process fleet serves a grid slice over HTTP with **byte-identical**
  results (and identical content-addressed job ids) to in-process
  mining;
* a second gateway process on the same cache directory answers from
  entries written by the first fleet's workers — cross-process cache
  hits, observable on both the gateway side and the worker side;
* saturated admission sheds with ``429`` + ``Retry-After``, and shed
  jobs never reach a worker process;
* draining refuses new work with ``503`` while completing accepted work;
* a killed worker process is respawned and its work recovered.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.gateway import (
    AdmissionPolicy,
    Gateway,
    GatewayClient,
    GatewayRejected,
    GatewayRejectedError,
)
from repro.graph import PropertyGraph
from repro.mining.persistence import run_to_dict
from repro.service import MiningService, RetryPolicy


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_dataset(name: str) -> Dataset:
    graph = PropertyGraph(name)
    for index in range(8):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


@pytest.fixture()
def loader():
    cache: dict[str, Dataset] = {}

    def load(name: str) -> Dataset:
        if name != "tiny":
            raise KeyError(f"unknown dataset {name!r}")
        if name not in cache:
            cache[name] = build_dataset(name)
        return cache[name]

    return load


def gateway(loader, tmp_path, **kwargs) -> Gateway:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("loader", loader)
    kwargs.setdefault("drain_timeout", 60.0)
    return Gateway(**kwargs)


def cell_payload(method: str, model: str = "llama3", **knobs) -> dict:
    return {
        "dataset": "tiny", "model": model, "method": method,
        "prompt_mode": "zero_shot", **knobs,
    }


def canonical(run_dict: dict) -> str:
    return json.dumps(run_dict, sort_keys=True)


# ----------------------------------------------------------------------
# byte-identical serving
# ----------------------------------------------------------------------
class TestFleetServing:
    def test_grid_over_http_matches_in_process_mining(
        self, loader, tmp_path
    ):
        collector = obs.install()
        cells = [
            ("llama3", "sliding_window"), ("llama3", "rag"),
            ("mixtral", "sliding_window"), ("mixtral", "rag"),
        ]
        with gateway(loader, tmp_path, workers=2) as gw:
            client = GatewayClient(gw.url, client_id="e2e")
            jobs = [
                client.submit("tiny", model, method, "zero_shot")
                for model, method in cells
            ]
            assert all(job["state"] in ("queued", "dispatched", "done")
                       for job in jobs)
            served = {
                job["job_id"]: client.result(job["job_id"], timeout=120)
                for job in jobs
            }
            stats = client.stats()
        # every job was executed by the fleet, none served from cache
        assert stats["dispatcher"]["completed"] == 4
        assert sum(
            worker["executed"] for worker in stats["dispatcher"]["workers"]
        ) == 4
        assert stats["jobs"]["done"] == 4

        svc = MiningService(
            loader=loader, workers=2,
            retry_policy=RetryPolicy(max_retries=3, base_delay=0.0),
        )
        with svc:
            for (model, method), job in zip(cells, jobs):
                job_id = svc.submit("tiny", model, method, "zero_shot")
                # HTTP and in-process agree on the content address ...
                assert job_id == job["job_id"]
                run = svc.result(job_id, timeout=120)
                # ... and on every byte of the result
                assert canonical(run_to_dict(run)) == canonical(
                    served[job_id]["run"]
                )
                assert served[job_id]["source"] == "worker"
        # the fleet agreed with the gateway on every content address
        mismatches = collector.metrics.counter(
            "gateway.fingerprint_mismatches"
        )
        assert mismatches.total() == 0


# ----------------------------------------------------------------------
# cross-process cache hits
# ----------------------------------------------------------------------
class TestCrossProcessCache:
    def mine_once(self, loader, tmp_path) -> str:
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            job = client.submit("tiny", "llama3", "sliding_window",
                                "zero_shot")
            client.result(job["job_id"], timeout=120)
            return str(job["job_id"])

    def test_second_gateway_hits_worker_written_entry(
        self, loader, tmp_path
    ):
        job_id = self.mine_once(loader, tmp_path)
        collector = obs.install()
        # a fresh gateway process (fleet never started) answers from the
        # entry a *worker process* of the first fleet wrote
        second = gateway(loader, tmp_path, workers=1)
        job = second.submit(cell_payload("sliding_window"))
        assert job.job_id == job_id
        assert job.state.value == "done"
        assert job.source == "cache"
        assert job.cache_hit is True
        hits = collector.metrics.counter("gateway.cache.hits")
        assert hits.value(source="gateway") == 1
        run = second.result(job_id, timeout=5)
        assert run.rule_count == job.rules

    def test_worker_side_cross_process_hit(self, loader, tmp_path):
        job_id = self.mine_once(loader, tmp_path)
        collector = obs.install()
        # serve_from_cache=False forces dispatch, so the *worker's*
        # MiningService finds the sibling process's cache entry
        with gateway(
            loader, tmp_path, workers=1, serve_from_cache=False,
        ) as gw:
            client = GatewayClient(gw.url)
            job = client.submit("tiny", "llama3", "sliding_window",
                                "zero_shot")
            assert job["job_id"] == job_id
            final = client.wait(job["job_id"], timeout=120)
        assert final["state"] == "done"
        assert final["source"] == "worker-cache"
        assert final["cache_hit"] is True
        assert final["attempts"] == 0          # nothing was re-mined
        hits = collector.metrics.counter("gateway.cache.hits")
        assert hits.value(source="worker") == 1


# ----------------------------------------------------------------------
# admission control under load
# ----------------------------------------------------------------------
class TestAdmissionE2E:
    def test_rate_limited_clients_shed_with_429(self, loader, tmp_path):
        policy = AdmissionPolicy(
            rate_per_client=0.0001, burst_per_client=1.0,
            retry_after_floor=1.0,
        )
        with gateway(loader, tmp_path, workers=1, policy=policy) as gw:
            outcomes: dict[str, list] = {}
            lock = threading.Lock()

            def run_client(name: str, seed: int) -> None:
                client = GatewayClient(gw.url, client_id=name)
                results = []
                for offset in range(2):
                    try:
                        job = client.submit(
                            "tiny", "llama3", "sliding_window",
                            "zero_shot", base_seed=seed + offset,
                        )
                        results.append(("accepted", job["job_id"]))
                    except GatewayRejectedError as error:
                        results.append(("shed", error))
                with lock:
                    outcomes[name] = results

            threads = [
                threading.Thread(target=run_client, args=(name, seed))
                for name, seed in (("a", 10), ("b", 20), ("c", 30))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            accepted_ids = []
            for name, results in outcomes.items():
                kinds = [kind for kind, _ in results]
                # burst 1 + no refill: exactly one accept per client,
                # submitted in order, so accept precedes shed
                assert kinds == ["accepted", "shed"], name
                accepted_ids.append(results[0][1])
                error = results[1][1]
                assert error.status == 429
                assert error.reason == "rate_limit"
                assert error.retry_after >= 1.0
            client = GatewayClient(gw.url)
            for job_id in accepted_ids:
                assert client.wait(job_id, timeout=120)["state"] == "done"
            stats = client.stats()
        assert stats["admission"]["admitted"] == 3
        assert stats["admission"]["shed"]["rate_limit"] == 3
        # shed requests never reached the fleet: the workers executed
        # exactly the admitted jobs and nothing else
        assert stats["dispatcher"]["dispatched"] == 3
        assert sum(
            worker["executed"] for worker in stats["dispatcher"]["workers"]
        ) == 3

    def test_queue_saturation_sheds_before_dispatch(
        self, loader, tmp_path
    ):
        policy = AdmissionPolicy(
            rate_per_client=1000.0, burst_per_client=1000.0,
            max_queue_depth=2,
        )
        # fleet deliberately not started: the backlog only fills
        gw = gateway(
            loader, tmp_path, workers=1, policy=policy, queue_depth=2,
        )
        for seed in (1, 2):
            job = gw.submit(cell_payload("sliding_window", base_seed=seed))
            assert job.state.value == "queued"
        with pytest.raises(GatewayRejected) as excinfo:
            gw.submit(cell_payload("sliding_window", base_seed=3))
        assert excinfo.value.status == 429
        assert excinfo.value.decision.reason == "queue_full"
        assert excinfo.value.decision.retry_after >= 1.0
        stats = gw.stats()
        assert stats["admission"]["shed"]["queue_full"] == 1
        assert stats["dispatcher"]["backlog"] == 2
        assert stats["dispatcher"]["dispatched"] == 0
        # the shed job was forgotten entirely
        assert stats["jobs"]["queued"] == 2

    def test_inflight_limit_sheds(self, loader, tmp_path):
        policy = AdmissionPolicy(
            rate_per_client=1000.0, burst_per_client=1000.0,
            max_inflight=1, max_queue_depth=100,
        )
        gw = gateway(
            loader, tmp_path, workers=1, policy=policy, queue_depth=100,
        )
        gw.submit(cell_payload("sliding_window", base_seed=1))
        with pytest.raises(GatewayRejected) as excinfo:
            gw.submit(cell_payload("sliding_window", base_seed=2))
        assert excinfo.value.decision.reason == "inflight_limit"
        assert excinfo.value.status == 429


# ----------------------------------------------------------------------
# drain + HTTP error mapping
# ----------------------------------------------------------------------
class TestDrainAndErrors:
    def test_drain_completes_accepted_then_rejects_503(
        self, loader, tmp_path
    ):
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            job = client.submit("tiny", "llama3", "sliding_window",
                                "zero_shot")
            assert gw.drain(timeout=120) is True
            # accepted work finished ...
            assert client.status(job["job_id"])["state"] == "done"
            # ... results stay pollable after the drain ...
            assert client.result(job["job_id"])["source"] in (
                "worker", "cache",
            )
            # ... and new submissions bounce with 503 + Retry-After
            with pytest.raises(GatewayRejectedError) as excinfo:
                client.submit("tiny", "mixtral", "rag", "zero_shot")
            assert excinfo.value.status == 503
            assert excinfo.value.reason == "draining"
            assert excinfo.value.retry_after >= 1.0
            assert client.healthz()["status"] == "draining"
            assert client.stats()["admission"]["shed"]["draining"] == 1

    def test_http_error_mapping(self, loader, tmp_path):
        obs.install()                          # /metrics needs a registry
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            from repro.gateway import GatewayClientError
            with pytest.raises(GatewayClientError) as excinfo:
                client.submit("tiny", "gpt99", "rag", "zero_shot")
            assert excinfo.value.status == 400
            with pytest.raises(GatewayClientError) as excinfo:
                client.submit("no_such_dataset", "llama3", "rag",
                              "zero_shot")
            assert excinfo.value.status == 404
            with pytest.raises(GatewayClientError) as excinfo:
                client.status("deadbeef")
            assert excinfo.value.status == 404
            assert "gateway_admission" in client.metrics_text()


# ----------------------------------------------------------------------
# worker crash recovery
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_jobs_complete(
        self, loader, tmp_path
    ):
        with gateway(loader, tmp_path, workers=1) as gw:
            client = GatewayClient(gw.url)
            # warm the fleet so the worker is past its imports
            first = client.submit("tiny", "llama3", "sliding_window",
                                  "zero_shot")
            client.result(first["job_id"], timeout=120)
            pid = client.stats()["dispatcher"]["workers"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            # wait for the dispatcher to notice and respawn
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                worker = client.stats()["dispatcher"]["workers"][0]
                if worker["alive"] and worker["pid"] != pid:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker was not respawned after SIGKILL")
            job = client.submit("tiny", "mixtral", "rag", "zero_shot")
            final = client.wait(job["job_id"], timeout=120)
            assert final["state"] == "done"
            stats = client.stats()
        assert stats["dispatcher"]["worker_crashes"] >= 1
