"""Dirty-window invalidation: delta batches map to stale incident
blocks, refreshed statements are value-identical to a full re-encode,
and changed-window detection yields the exact re-mining worklist."""

from __future__ import annotations

import pytest

from repro import obs
from repro.encoding import (
    IncidentEncoder,
    SlidingWindowChunker,
    changed_window_indexes,
    dirty_block_subjects,
    invalidated_windows,
    refresh_statements,
)
from repro.graph import GraphChangeLog, PropertyGraph


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_graph(users: int = 6) -> PropertyGraph:
    graph = PropertyGraph("dirty")
    for index in range(users):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet number {index}",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    for index in range(users - 1):
        graph.add_edge(
            f"f{index}", "FOLLOWS", f"u{index}", f"u{index + 1}",
        )
    return graph


def assert_statements_equal(left, right):
    assert [(s.kind, s.subject_id, s.text) for s in left] == [
        (s.kind, s.subject_id, s.text) for s in right
    ]


# ----------------------------------------------------------------------
# delta -> dirty block mapping
# ----------------------------------------------------------------------
class TestDirtySubjects:
    def test_node_props_dirty_their_own_block(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.update_node("u2", {"screen_name": "@renamed"})
        dirty, removed = dirty_block_subjects(log.deltas())
        assert dirty == {"u2"}
        assert removed == set()

    def test_edge_deltas_dirty_the_source_block_only(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.add_edge("x1", "FOLLOWS", "u3", "u0")
        graph.remove_edge("f0")                    # src u0
        graph.update_edge("p1", {"weight": 2})     # src u1
        dirty, removed = dirty_block_subjects(log.deltas())
        assert dirty == {"u3", "u0", "u1"}
        assert removed == set()

    def test_removed_nodes_are_partitioned_out(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.update_node("t5", {"text": "almost gone"})
        graph.remove_node("t5")
        dirty, removed = dirty_block_subjects(log.deltas())
        assert "t5" in removed
        assert "t5" not in dirty
        # the cascaded edge removal dirties the source block
        assert "u5" in dirty

    def test_remove_then_readd_ends_up_dirty_not_removed(self):
        graph = build_graph()
        log = GraphChangeLog().attach(graph)
        graph.remove_node("t0")
        graph.add_node("t0", "Tweet", {"id": 100, "text": "reborn"})
        dirty, removed = dirty_block_subjects(log.deltas())
        assert "t0" in dirty
        assert "t0" not in removed


# ----------------------------------------------------------------------
# refresh_statements == full re-encode
# ----------------------------------------------------------------------
class TestRefresh:
    def mutate_and_refresh(self, graph, mutate):
        encoder = IncidentEncoder()
        statements = encoder.encode(graph)
        log = GraphChangeLog().attach(graph)
        mutate(graph)
        refreshed = refresh_statements(graph, statements, log.deltas())
        assert_statements_equal(refreshed, encoder.encode(graph))
        return statements, refreshed

    def test_property_change_touches_one_block(self):
        self.mutate_and_refresh(
            build_graph(),
            lambda g: g.update_node("u3", {"screen_name": "@other"}),
        )

    def test_node_and_edge_additions(self):
        def mutate(graph):
            graph.add_node("u9", "User", {"id": 9})
            graph.add_edge("x9", "FOLLOWS", "u9", "u0")
            graph.add_edge("x0", "FOLLOWS", "u0", "u9")

        self.mutate_and_refresh(build_graph(), mutate)

    def test_removals_and_cascades(self):
        def mutate(graph):
            graph.remove_node("u2")        # cascades p2 + f1 + f2
            graph.remove_edge("p4")

        self.mutate_and_refresh(build_graph(), mutate)

    def test_readded_node_moves_to_the_tail(self):
        def mutate(graph):
            graph.remove_node("t1")
            graph.add_node("t1", "Tweet", {"id": 101, "text": "back"})
            graph.add_edge("p1b", "POSTS", "u1", "t1")

        self.mutate_and_refresh(build_graph(), mutate)

    def test_batched_mutations_refresh_identically(self):
        def mutate(graph):
            with graph.batch():
                graph.update_node("u0", {"bio": "first"})
                graph.remove_edge("f3")
                graph.add_node("u9", "User", {"id": 9})

        self.mutate_and_refresh(build_graph(), mutate)

    def test_clean_blocks_are_reused_not_reencoded(self):
        collector = obs.install()
        graph = build_graph()
        encoder = IncidentEncoder()
        statements = encoder.encode(graph)
        log = GraphChangeLog().attach(graph)
        graph.update_node("u3", {"screen_name": "@renamed"})
        refresh_statements(graph, statements, log.deltas())
        reused = collector.metrics.counter("encoding.blocks_reused")
        reencoded = collector.metrics.counter("encoding.blocks_reencoded")
        assert reencoded.total() == 1          # only u3's block
        assert reused.total() == len(list(graph.nodes())) - 1


# ----------------------------------------------------------------------
# window invalidation and the re-mining worklist
# ----------------------------------------------------------------------
class TestWindows:
    def setup_windows(self, graph):
        encoder = IncidentEncoder()
        statements = encoder.encode(graph)
        chunker = SlidingWindowChunker(window_size=60, overlap=12)
        window_set = chunker.chunk_statements(statements)
        assert window_set.window_count > 2     # the test needs spread
        return encoder, chunker, statements, window_set

    def test_local_change_invalidates_a_strict_subset(self):
        graph = build_graph(10)
        encoder, chunker, statements, window_set = self.setup_windows(graph)
        log = GraphChangeLog().attach(graph)
        graph.update_node("u0", {"screen_name": "@renamed"})
        invalid = invalidated_windows(window_set, statements, log.deltas())
        assert invalid                          # something is stale
        assert len(invalid) < window_set.window_count

    def test_prediction_covers_the_actual_changed_windows(self):
        graph = build_graph(10)
        encoder, chunker, statements, window_set = self.setup_windows(graph)
        log = GraphChangeLog().attach(graph)
        # token-count-preserving edit: window boundaries stay put, so the
        # old-set prediction is exact (a size-changing edit shifts every
        # downstream boundary and only changed_window_indexes is
        # authoritative — the docstring's caveat)
        graph.update_node("u0", {"screen_name": "@userX"})
        graph.add_node("u99", "User", {"id": 99})
        invalid = invalidated_windows(window_set, statements, log.deltas())
        refreshed = refresh_statements(graph, statements, log.deltas())
        new_set = chunker.chunk_statements(refreshed)
        changed = changed_window_indexes(window_set, new_set)
        # prediction over the old set must cover every surviving changed
        # window (brand-new tail windows have no old counterpart)
        old_count = window_set.window_count
        assert set(c for c in changed if c < old_count) <= set(invalid)

    def test_unchanged_graph_changes_no_windows(self):
        graph = build_graph()
        encoder, chunker, statements, window_set = self.setup_windows(graph)
        assert invalidated_windows(window_set, statements, []) == []
        again = chunker.chunk_statements(encoder.encode(graph))
        assert changed_window_indexes(window_set, again) == []

    def test_appended_node_invalidates_the_tail_window(self):
        graph = build_graph(10)
        encoder, chunker, statements, window_set = self.setup_windows(graph)
        log = GraphChangeLog().attach(graph)
        graph.add_node("u99", "User", {"id": 99})
        invalid = invalidated_windows(window_set, statements, log.deltas())
        assert invalid == [window_set.windows[-1].index]

    def test_changed_window_indexes_pinpoints_the_worklist(self):
        graph = build_graph(10)
        encoder, chunker, statements, window_set = self.setup_windows(graph)
        log = GraphChangeLog().attach(graph)
        graph.update_node("u9", {"screen_name": "@renamed"})
        refreshed = refresh_statements(graph, statements, log.deltas())
        new_set = chunker.chunk_statements(refreshed)
        changed = changed_window_indexes(window_set, new_set)
        assert changed                          # the edit surfaced
        assert len(changed) < new_set.window_count
        unchanged = [
            w for w in new_set.windows if w.index not in changed
        ]
        old = {w.index: w for w in window_set.windows}
        for window in unchanged:
            assert old[window.index].text == window.text
