"""Tests for the rule-driven repair engine."""

import pytest

from repro.cypher import execute
from repro.graph import PropertyGraph, infer_schema
from repro.repair import QUARANTINE_KEY, RepairEngine
from repro.rules import ConsistencyRule, RuleKind


@pytest.fixture()
def dirty_graph():
    """A graph violating several rules at once."""
    g = PropertyGraph("dirty")
    for index in range(6):
        properties = {"id": index, "screen_name": f"@u{index}"}
        if index == 5:
            properties.pop("screen_name")      # missing property
        g.add_node(f"u{index}", "User", properties)
    for index in range(6):
        g.add_node(f"t{index}", "Tweet", {
            "id": index if index != 5 else 0,   # duplicate id with t0
            "created_at": f"2021-01-0{index + 1}T00:00:00",
        })
        g.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    g.add_edge("f1", "FOLLOWS", "u0", "u1")
    g.add_edge("f2", "FOLLOWS", "u2", "u2")     # self-loop
    g.add_edge("r1", "RETWEETS", "t3", "t1")    # fine: later -> earlier
    g.add_edge("r2", "RETWEETS", "t0", "t4")    # violation: earlier -> later
    g.add_edge("bad", "POSTS", "t2", "u2")      # flipped endpoint
    return g


@pytest.fixture()
def engine(dirty_graph):
    return RepairEngine(dirty_graph, infer_schema(dirty_graph))


def rule(kind, **kw):
    return ConsistencyRule(kind=kind, text=kw.pop("text", "r"), **kw)


class TestPlans:
    def test_self_loop_plan_is_destructive(self, engine):
        plan = engine.plan(rule(
            RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS",
        ))
        assert len(plan.actions) == 1
        assert plan.actions[0].destructive
        assert "DELETE" in plan.actions[0].query

    def test_property_plan_uses_default_when_given(self, dirty_graph):
        engine = RepairEngine(
            dirty_graph, infer_schema(dirty_graph),
            defaults={("User", "screen_name"): "@unknown"},
        )
        plan = engine.plan(rule(
            RuleKind.PROPERTY_EXISTS, label="User",
            properties=("screen_name",),
        ))
        assert "SET n.screen_name = '@unknown'" in plan.actions[0].query

    def test_destructive_actions_filterable(self, dirty_graph):
        engine = RepairEngine(
            dirty_graph, infer_schema(dirty_graph),
            allow_destructive=False,
        )
        plan = engine.plan(rule(
            RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS",
        ))
        assert plan.is_empty


class TestApply:
    def test_repair_self_loops(self, engine, dirty_graph):
        report = engine.repair(rule(
            RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS",
        ))
        assert report.stats == {"relationships_deleted": 1}
        assert report.metrics_after.confidence == 100.0
        assert report.confidence_gain > 0
        assert execute(
            dirty_graph,
            "MATCH (u:User)-[:FOLLOWS]->(u) RETURN count(*) AS c",
        ).scalar() == 0

    def test_repair_temporal_order(self, engine, dirty_graph):
        report = engine.repair(rule(
            RuleKind.TEMPORAL_ORDER, edge_label="RETWEETS",
            src_label="Tweet", dst_label="Tweet",
            time_property="created_at",
        ))
        assert report.stats == {"relationships_deleted": 1}
        assert dirty_graph.edge_count("RETWEETS") == 1

    def test_repair_endpoint_deletes_mistyped(self, engine, dirty_graph):
        report = engine.repair(rule(
            RuleKind.ENDPOINT, edge_label="POSTS",
            src_label="User", dst_label="Tweet",
        ))
        assert report.stats == {"relationships_deleted": 1}
        assert report.metrics_after.confidence == 100.0

    def test_repair_uniqueness_quarantines(self, engine, dirty_graph):
        report = engine.repair(rule(
            RuleKind.UNIQUENESS, label="Tweet", properties=("id",),
        ))
        assert report.stats == {"properties_set": 2}
        quarantined = sorted(
            node.id for node in dirty_graph.nodes("Tweet")
            if node.properties.get(QUARANTINE_KEY)
        )
        assert quarantined == ["t0", "t5"]
        # quarantine is non-destructive: confidence unchanged
        assert report.confidence_gain == 0.0

    def test_repair_missing_property_with_default(self, dirty_graph):
        engine = RepairEngine(
            dirty_graph, infer_schema(dirty_graph),
            defaults={("User", "screen_name"): "@unknown"},
        )
        report = engine.repair(rule(
            RuleKind.PROPERTY_EXISTS, label="User",
            properties=("screen_name",),
        ))
        assert report.metrics_before.confidence < 100.0
        assert report.metrics_after.confidence == 100.0
        assert dirty_graph.node("u5").properties["screen_name"] == \
            "@unknown"

    def test_repair_mandatory_edge_quarantines(self, engine, dirty_graph):
        dirty_graph.add_node("t9", "Tweet", {"id": 9})   # orphan tweet
        report = engine.repair(rule(
            RuleKind.MANDATORY_EDGE, label="Tweet", edge_label="POSTS",
            src_label="User", dst_label="Tweet",
        ))
        assert report.stats["properties_set"] >= 1
        assert dirty_graph.node("t9").properties.get(QUARANTINE_KEY)

    def test_report_before_after_metrics(self, engine):
        report = engine.repair(rule(
            RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS",
        ))
        assert report.metrics_before.support == 1
        assert report.metrics_after.support == 1
        assert report.metrics_before.body == 2
        assert report.metrics_after.body == 1


class TestOnDatasets:
    def test_repair_twitter_dirt(self):
        from repro.datasets import load

        dataset = load("twitter", cache=False)   # private mutable copy
        engine = RepairEngine(
            dataset.graph, infer_schema(dataset.graph)
        )
        report = engine.repair(rule(
            RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS",
        ))
        assert report.stats["relationships_deleted"] == 8  # injected dirt
        assert report.metrics_after.confidence == 100.0
