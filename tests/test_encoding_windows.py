"""Unit tests for the sliding-window chunker."""

import pytest

from repro.encoding import (
    IncidentEncoder,
    SlidingWindowChunker,
    Statement,
    count_tokens,
)
from repro.graph import PropertyGraph


def make_statements(count, words_per=10):
    return [
        Statement(
            kind="node",
            text=" ".join(f"word{i}x{j}" for j in range(words_per)),
            subject_id=f"s{i}",
        )
        for i in range(count)
    ]


class TestParameters:
    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            SlidingWindowChunker(window_size=0)

    def test_invalid_overlap(self):
        with pytest.raises(ValueError):
            SlidingWindowChunker(window_size=10, overlap=10)
        with pytest.raises(ValueError):
            SlidingWindowChunker(window_size=10, overlap=-1)

    def test_defaults_match_paper(self):
        chunker = SlidingWindowChunker()
        assert chunker.window_size == 8000
        assert chunker.overlap == 500


class TestChunking:
    def test_single_window_when_text_fits(self):
        chunker = SlidingWindowChunker(window_size=1000, overlap=100)
        windows = chunker.chunk_statements(make_statements(5))
        assert windows.window_count == 1
        assert windows.broken_statement_count == 0

    def test_window_token_budget_respected(self):
        chunker = SlidingWindowChunker(window_size=100, overlap=10)
        windows = chunker.chunk_statements(make_statements(50))
        for window in windows.windows:
            assert window.token_count <= 100
            assert count_tokens(window.text) <= 100

    def test_consecutive_windows_overlap(self):
        chunker = SlidingWindowChunker(window_size=100, overlap=20)
        windows = chunker.chunk_statements(make_statements(50))
        assert windows.window_count > 1
        for first, second in zip(windows.windows, windows.windows[1:]):
            assert second.start_token == first.start_token + 80
            assert second.start_token < first.end_token  # overlap

    def test_every_token_in_some_window(self):
        chunker = SlidingWindowChunker(window_size=64, overlap=16)
        windows = chunker.chunk_statements(make_statements(40))
        covered = set()
        for window in windows.windows:
            covered.update(range(window.start_token, window.end_token))
        assert covered == set(range(windows.total_tokens))

    def test_window_text_is_verbatim_slice(self):
        statements = make_statements(30)
        text = "\n".join(s.text for s in statements)
        chunker = SlidingWindowChunker(window_size=64, overlap=16)
        windows = chunker.chunk_statements(statements)
        for window in windows.windows:
            assert window.text in text

    def test_empty_statements(self):
        windows = SlidingWindowChunker().chunk_statements([])
        assert windows.window_count == 0
        assert windows.total_tokens == 0


class TestFragmentation:
    def test_statement_longer_than_overlap_can_break(self):
        # statements of ~30 tokens with overlap 8: boundary statements
        # cannot always be fully contained
        chunker = SlidingWindowChunker(window_size=40, overlap=8)
        windows = chunker.chunk_statements(make_statements(30, words_per=15))
        assert windows.window_count > 1
        assert windows.broken_statement_count > 0

    def test_overlap_bigger_than_statement_prevents_breaks(self):
        chunker = SlidingWindowChunker(window_size=100, overlap=30)
        windows = chunker.chunk_statements(make_statements(60, words_per=10))
        assert windows.broken_statement_count == 0

    def test_broken_blocks_counts_node_groups(self):
        # one high-degree node whose block exceeds the overlap
        graph = PropertyGraph()
        graph.add_node("hub", "Hub", {"name": "hub"})
        for index in range(40):
            graph.add_node(f"n{index}", "Leaf", {"name": f"leaf{index}"})
            graph.add_edge(f"e{index}", "LINKS", "hub", f"n{index}")
        statements = IncidentEncoder().encode(graph)
        chunker = SlidingWindowChunker(window_size=220, overlap=30)
        windows = chunker.chunk_statements(statements)
        assert windows.window_count > 1
        assert windows.broken_pattern_count >= 1
        assert "hub" in windows.broken_blocks

    def test_chunk_text_mode(self):
        chunker = SlidingWindowChunker(window_size=10, overlap=2)
        windows = chunker.chunk_text("one two three four five six seven "
                                     "eight nine ten eleven twelve")
        assert windows.window_count == 2
        assert windows.broken_statement_count == 0  # no statement info
