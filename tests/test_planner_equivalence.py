"""Planner-on vs planner-off equivalence (hypothesis).

The cost-based planner reorders patterns, reverses traversals, seeds
from property indexes and pushes predicates into the matcher — none of
which may change the *result*: for every graph and every query in the
corpus, the planned executor must produce exactly the same row multiset
as the unplanned one.

Graphs are randomized and small (self-loops, parallel edges and
multi-label nodes included); queries cover index seeds, join-backs,
variable-length paths, named paths, OPTIONAL MATCH, undirected
relationships, multi-pattern joins and parameters.  The corpus sticks
to WHERE predicates that cannot raise on these graphs, since the
planner intentionally keeps legacy error *timing* only for rows it
does not prune.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import Executor, clear_plan_caches, parse
from repro.cypher.executor import _canonical
from repro.graph import PropertyGraph

# ----------------------------------------------------------------------
# graph strategy
# ----------------------------------------------------------------------
_LABEL_SETS = (("A",), ("B",), ("A", "B"))


@st.composite
def graphs(draw):
    node_count = draw(st.integers(min_value=1, max_value=8))
    nodes = []
    for index in range(node_count):
        labels = draw(st.sampled_from(_LABEL_SETS))
        properties = {}
        if draw(st.booleans()):
            properties["p"] = draw(st.integers(min_value=0, max_value=3))
        if draw(st.booleans()):
            properties["q"] = draw(st.booleans())
        nodes.append((f"n{index}", labels, properties))
    edge_count = draw(st.integers(min_value=0, max_value=2 * node_count))
    edges = []
    for number in range(edge_count):
        src = draw(st.integers(min_value=0, max_value=node_count - 1))
        dst = draw(st.integers(min_value=0, max_value=node_count - 1))
        label = draw(st.sampled_from(["R", "S"]))
        edges.append((f"e{number}", label, f"n{src}", f"n{dst}"))
    return nodes, edges


def build(spec) -> PropertyGraph:
    nodes, edges = spec
    graph = PropertyGraph("hyp")
    for node_id, labels, properties in nodes:
        graph.add_node(node_id, labels, properties)
    for edge_id, label, src, dst in edges:
        graph.add_edge(edge_id, label, src, dst)
    return graph


# ----------------------------------------------------------------------
# query corpus
# ----------------------------------------------------------------------
QUERY_CORPUS = (
    # index seed from an equality conjunct
    "MATCH (a:A) WHERE a.p = 1 RETURN a.p AS p",
    # inline property map seed
    "MATCH (a:A {p: 2}) RETURN a.q AS q",
    # plain traversal, both endpoints projected
    "MATCH (a)-[r:R]->(b) RETURN a.p AS x, b.p AS y",
    # traversal with a pushable comparison across both ends
    "MATCH (a:A)-[:R]->(b:B) WHERE a.p > b.p RETURN a.p AS x, b.p AS y",
    # reversal candidate: selective target end
    "MATCH (a)-[:R]->(b:B {p: 0}) RETURN a.p AS x",
    # variable-length with lower/upper bounds
    "MATCH (a)-[:R*1..3]->(b) WHERE a.p = 1 RETURN b.p AS y",
    # unbounded variable-length (parser caps hops)
    "MATCH (a:A)-[:R*]->(b) RETURN b.p AS y",
    # named variable-length relationship (never reversed)
    "MATCH (a)-[rs:R*1..2]->(b) RETURN size(rs) AS hops, b.p AS y",
    # self-loop join-back
    "MATCH (a)-[:R]->(a) RETURN a.p AS p",
    # join-back over two hops
    "MATCH (a)-[:R]->(b)-[:S]->(a) RETURN a.p AS x, b.p AS y",
    # cartesian join of two patterns with a cross-pattern conjunct
    "MATCH (a:A), (b:B) WHERE a.p = b.p RETURN a.p AS p",
    # named path (never reversed)
    "MATCH q = (a)-[:R]->(b) RETURN a.p AS x, b.p AS y",
    # OPTIONAL MATCH padding
    "OPTIONAL MATCH (a:A {p: 3})-[:S]->(b) RETURN a.p AS x, b.p AS y",
    # bound-variable seed in a second MATCH
    "MATCH (t:B) MATCH (t)<-[:R]-(s) RETURN s.p AS x, t.p AS y",
    # undirected relationship
    "MATCH (a)-[r]-(b) WHERE a.p <= b.p RETURN a.p AS x, b.p AS y",
    # IN-list and NOT, all pushable
    "MATCH (a:A) WHERE a.p IN [1, 2, 3] AND NOT a.p = 2 RETURN a.p AS p",
    # IS NULL / boolean property mix
    "MATCH (a) WHERE a.q = true AND a.p IS NULL RETURN a.q AS q",
    # aggregation on top of a planned match
    "MATCH (a:A)-[:R]->(b) RETURN count(*) AS c",
    # DISTINCT + ORDER BY downstream of the planner
    "MATCH (a)-[:R]->(b) RETURN DISTINCT b.p AS y ORDER BY y",
    # UNION with independently planned branches
    "MATCH (a:A {p: 1}) RETURN a.p AS v "
    "UNION MATCH (b:B {p: 2}) RETURN b.p AS v",
)


def row_multiset(result) -> Counter:
    return Counter(
        tuple(_canonical(row[column]) for column in result.columns)
        for row in result.rows
    )


# ----------------------------------------------------------------------
# the property
# ----------------------------------------------------------------------
@given(spec=graphs(), query_index=st.integers(0, len(QUERY_CORPUS) - 1))
@settings(max_examples=200, deadline=None)
def test_planned_equals_unplanned(spec, query_index):
    clear_plan_caches()
    graph = build(spec)
    query = parse(QUERY_CORPUS[query_index])
    planned = Executor(graph).run(query)
    unplanned = Executor(graph, planner=None).run(query)
    assert planned.columns == unplanned.columns
    assert row_multiset(planned) == row_multiset(unplanned)


@given(spec=graphs(), value=st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_parameterized_query_equivalent(spec, value):
    clear_plan_caches()
    graph = build(spec)
    query = parse("MATCH (a:A) WHERE a.p = $v RETURN a.p AS p")
    parameters = {"v": value}
    planned = Executor(graph, parameters).run(query)
    unplanned = Executor(graph, parameters, planner=None).run(query)
    assert row_multiset(planned) == row_multiset(unplanned)


@given(spec=graphs())
@settings(max_examples=40, deadline=None)
def test_plan_cache_round_trip_equivalent(spec):
    """The second (cache-hit) planned run matches the unplanned run."""
    clear_plan_caches()
    graph = build(spec)
    query = parse("MATCH (a:A)-[:R]->(b) WHERE a.p >= 1 RETURN b.p AS y")
    Executor(graph).run(query)                       # populate the cache
    planned = Executor(graph).run(query)             # cache hit
    unplanned = Executor(graph, planner=None).run(query)
    assert row_multiset(planned) == row_multiset(unplanned)
