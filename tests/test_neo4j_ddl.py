"""Tests for the Neo4j constraint-DDL export."""

from repro.graph import infer_schema
from repro.rules import (
    ConsistencyRule,
    RuleKind,
    RuleTranslator,
    export_rules,
    rule_to_neo4j_ddl,
    rule_to_quality_check,
)


def rule(kind, **kw):
    return ConsistencyRule(kind=kind, text=kw.pop("text", "the rule"), **kw)


class TestConstraintRendering:
    def test_uniqueness(self):
        ddl = rule_to_neo4j_ddl(rule(
            RuleKind.UNIQUENESS, label="Tweet", properties=("id",),
        ))
        assert ddl == (
            "CREATE CONSTRAINT tweet_id_unique IF NOT EXISTS "
            "FOR (n:Tweet) REQUIRE n.id IS UNIQUE;"
        )

    def test_property_exists_multi(self):
        ddl = rule_to_neo4j_ddl(rule(
            RuleKind.PROPERTY_EXISTS, label="Match",
            properties=("date", "stage"),
        ))
        assert ddl.count("CREATE CONSTRAINT") == 2
        assert "REQUIRE n.date IS NOT NULL" in ddl
        assert "REQUIRE n.stage IS NOT NULL" in ddl

    def test_edge_property_exists(self):
        ddl = rule_to_neo4j_ddl(rule(
            RuleKind.EDGE_PROP_EXISTS, edge_label="SCORED_GOAL",
            properties=("minute",),
        ))
        assert "FOR ()-[r:SCORED_GOAL]-()" in ddl
        assert "REQUIRE r.minute IS NOT NULL" in ddl

    def test_unenforceable_kinds_return_none(self):
        assert rule_to_neo4j_ddl(rule(
            RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS",
        )) is None
        assert rule_to_neo4j_ddl(rule(
            RuleKind.TEMPORAL_ORDER, edge_label="RETWEETS",
            src_label="Tweet", dst_label="Tweet",
            time_property="created_at",
        )) is None


class TestQualityChecks:
    def test_check_uses_violation_query(self, social_graph):
        schema = infer_schema(social_graph)
        translator = RuleTranslator(schema)
        the_rule = rule(
            RuleKind.NO_SELF_LOOP, label="User", edge_label="FOLLOWS",
        )
        queries = translator.translate(the_rule)
        block = rule_to_quality_check(the_rule, queries)
        assert block.startswith("// consistency rule:")
        assert "WHERE a = b" in block


class TestExport:
    def test_export_sections(self, social_graph):
        schema = infer_schema(social_graph)
        translator = RuleTranslator(schema)
        rules = [
            rule(RuleKind.UNIQUENESS, label="Tweet", properties=("id",)),
            rule(RuleKind.NO_SELF_LOOP, label="User",
                 edge_label="FOLLOWS"),
        ]
        text = export_rules([
            (r, translator.translate(r)) for r in rules
        ])
        assert "enforceable as Neo4j constraints" in text
        assert "scheduled quality checks" in text
        assert "IS UNIQUE" in text

    def test_export_from_mined_run(self, cyber_dataset):
        from repro.mining import PipelineContext, SlidingWindowPipeline

        context = PipelineContext.build(cyber_dataset)
        run = SlidingWindowPipeline(context).mine("llama3", "zero_shot")
        pairs = [
            (result.rule, result.outcome.metric_queries)
            for result in run.results
            if result.outcome.metric_queries is not None
        ]
        text = export_rules(pairs)
        assert "CREATE CONSTRAINT" in text
