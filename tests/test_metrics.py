"""Unit tests for support / coverage / confidence."""

import pytest

from repro.graph import infer_schema
from repro.metrics import (
    AggregateMetrics,
    RuleMetrics,
    aggregate,
    evaluate_rule,
)
from repro.rules import ConsistencyRule, RuleKind, RuleTranslator
from repro.rules.translator import MetricQueries


class TestRuleMetrics:
    def test_coverage_and_confidence(self):
        metrics = RuleMetrics(support=50, relevant=100, body=80)
        assert metrics.coverage == 50.0
        assert metrics.confidence == 62.5

    def test_zero_denominators(self):
        metrics = RuleMetrics(support=0, relevant=0, body=0)
        assert metrics.coverage == 0.0
        assert metrics.confidence == 0.0

    def test_capped_at_100(self):
        metrics = RuleMetrics(support=150, relevant=100, body=100)
        assert metrics.coverage == 100.0
        assert metrics.confidence == 100.0

    @pytest.mark.parametrize("support,relevant,body", [
        (0, 10, 10), (5, 10, 7), (10, 10, 10),
    ])
    def test_bounds_invariant(self, support, relevant, body):
        metrics = RuleMetrics(support=support, relevant=relevant, body=body)
        assert 0.0 <= metrics.coverage <= 100.0
        assert 0.0 <= metrics.confidence <= 100.0


class TestAggregate:
    def test_empty(self):
        assert aggregate([]) == AggregateMetrics(0, 0.0, 0.0, 0.0)

    def test_averages(self):
        cells = aggregate([
            RuleMetrics(support=10, relevant=10, body=10),
            RuleMetrics(support=0, relevant=10, body=10),
        ])
        assert cells.rule_count == 2
        assert cells.avg_support == 5.0
        assert cells.avg_coverage == 50.0
        assert cells.avg_confidence == 50.0


class TestEvaluateRule:
    def test_against_translator(self, sports_graph):
        translator = RuleTranslator(infer_schema(sports_graph))
        rule = ConsistencyRule(
            RuleKind.PROPERTY_EXISTS, "", label="Match",
            properties=("date",),
        )
        metrics = evaluate_rule(sports_graph, translator.translate(rule))
        assert metrics == RuleMetrics(support=2, relevant=2, body=2)
        assert metrics.coverage == 100.0

    def test_failing_query_scores_zero(self, sports_graph):
        queries = MetricQueries(
            check="MATCH (n RETURN count(*) AS c",       # syntax error
            relevant="MATCH (n RETURN count(*) AS c",
            body="MATCH (n RETURN count(*) AS c",
            satisfy="MATCH (n RETURN count(*) AS c",
        )
        metrics = evaluate_rule(sports_graph, queries)
        assert metrics == RuleMetrics(support=0, relevant=0, body=0)

    def test_hallucinated_property_scores_zero_support(self, sports_graph):
        translator = RuleTranslator(infer_schema(sports_graph))
        rule = ConsistencyRule(
            RuleKind.PROPERTY_EXISTS, "", label="Match",
            properties=("penaltyScore",),   # does not exist
        )
        metrics = evaluate_rule(sports_graph, translator.translate(rule))
        assert metrics.support == 0
        assert metrics.relevant == 2        # matches still exist
        assert metrics.coverage == 0.0

    def test_non_numeric_result_counts_zero(self, sports_graph):
        queries = MetricQueries(
            check="MATCH (m:Match) RETURN m.stage AS s",
            relevant="MATCH (m:Match) RETURN m.stage AS s",
            body="MATCH (m:Match) RETURN m.stage AS s",
            satisfy="MATCH (m:Match) RETURN m.stage AS s",
        )
        metrics = evaluate_rule(sports_graph, queries)
        assert metrics.support == 0
