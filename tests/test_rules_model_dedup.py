"""Unit tests for the rule model and deduplication/merging."""

from repro.rules import (
    ConsistencyRule,
    RuleKind,
    RuleSet,
    combine_window_rules,
    deduplicate,
    merge_property_exists,
)


def rule(kind=RuleKind.PROPERTY_EXISTS, **kw):
    return ConsistencyRule(kind=kind, text=kw.pop("text", "t"), **kw)


class TestSignature:
    def test_signature_ignores_text_and_provenance(self):
        a = rule(label="X", properties=("p",), text="one", provenance="w1")
        b = rule(label="X", properties=("p",), text="two", provenance="w2")
        assert a.signature() == b.signature()

    def test_signature_property_order_insensitive(self):
        a = rule(label="X", properties=("p", "q"))
        b = rule(label="X", properties=("q", "p"))
        assert a.signature() == b.signature()

    def test_different_kind_different_signature(self):
        a = rule(RuleKind.PROPERTY_EXISTS, label="X", properties=("p",))
        b = rule(RuleKind.UNIQUENESS, label="X", properties=("p",))
        assert a.signature() != b.signature()

    def test_is_complex(self):
        assert rule(RuleKind.PATTERN, label="X").is_complex
        assert not rule(RuleKind.UNIQUENESS, label="X").is_complex


class TestRuleSet:
    def test_add_rejects_duplicates(self):
        rules = RuleSet()
        assert rules.add(rule(label="X", properties=("p",)))
        assert not rules.add(rule(label="X", properties=("p",)))
        assert len(rules) == 1

    def test_extend_counts_new(self):
        rules = RuleSet()
        added = rules.extend([
            rule(label="X", properties=("p",)),
            rule(label="X", properties=("p",)),
            rule(label="Y", properties=("p",)),
        ])
        assert added == 2

    def test_by_kind_and_complex(self):
        rules = RuleSet()
        rules.add(rule(RuleKind.UNIQUENESS, label="X", properties=("p",)))
        rules.add(rule(RuleKind.PATTERN, label="X", edge_label="E",
                       dst_label="Y", scope_label="Z",
                       scope_edge_label="F"))
        assert len(rules.by_kind(RuleKind.UNIQUENESS)) == 1
        assert len(rules.complex_rules()) == 1


class TestMerge:
    def test_merge_same_label_property_rules(self):
        merged = merge_property_exists([
            rule(label="Match", properties=("date",)),
            rule(label="Match", properties=("stage",)),
        ])
        assert len(merged) == 1
        assert merged[0].properties == ("date", "stage")
        assert "date and stage property" in merged[0].text

    def test_merge_keeps_other_kinds_in_place(self):
        uniq = rule(RuleKind.UNIQUENESS, label="Match", properties=("id",))
        merged = merge_property_exists([
            rule(label="Match", properties=("date",)),
            uniq,
            rule(label="Match", properties=("stage",)),
        ])
        assert [r.kind for r in merged] == [
            RuleKind.PROPERTY_EXISTS, RuleKind.UNIQUENESS,
        ]

    def test_single_member_untouched(self):
        single = rule(label="X", properties=("p",), text="original")
        assert merge_property_exists([single])[0].text == "original"

    def test_deduplicate_keeps_first(self):
        first = rule(label="X", properties=("p",), text="first")
        second = rule(label="X", properties=("p",), text="second")
        assert deduplicate([first, second]) == [first]

    def test_combine_window_rules(self):
        windows = [
            [rule(label="X", properties=("a",)),
             rule(RuleKind.UNIQUENESS, label="X", properties=("a",))],
            [rule(label="X", properties=("b",)),
             rule(RuleKind.UNIQUENESS, label="X", properties=("a",))],
        ]
        combined = combine_window_rules(windows)
        kinds = sorted(r.kind.value for r in combined)
        assert kinds == ["property_exists", "uniqueness"]
        merged = next(
            r for r in combined if r.kind is RuleKind.PROPERTY_EXISTS
        )
        assert merged.properties == ("a", "b")
