"""Trace intelligence (repro.obs.analyze): aggregation, critical path,
cost attribution, flamegraphs, Chrome trace export."""

from __future__ import annotations

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


class StepClock:
    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def build_trace() -> obs.ParsedTrace:
    """A miniature mining-shaped trace with known numbers.

    job (job_id=j1, dataset=d)
      window (index 0)  -> llm.call 100+10 tokens, 2.0 sim
      window (index 1)  -> llm.call 200+20 tokens, 3.0 sim
      translate (rule=R1) -> llm.call 50+5 tokens, 1.0 sim
    """
    collector = obs.install(obs.TraceCollector(wall_clock=StepClock()))
    with obs.span("job", job_id="j1", dataset="d"):
        for index, (prompt, completion, sim) in enumerate(
            [(100, 10, 2.0), (200, 20, 3.0)]
        ):
            with obs.span("window", index=index):
                with obs.span("llm.call") as call:
                    call.set_attribute("prompt_tokens", prompt)
                    call.set_attribute("completion_tokens", completion)
                    call.add_sim_time(sim)
        with obs.span("translate", rule="R1"):
            with obs.span("llm.call") as call:
                call.set_attribute("prompt_tokens", 50)
                call.set_attribute("completion_tokens", 5)
                call.add_sim_time(1.0)
    text = obs.to_jsonl(collector)
    obs.uninstall()
    return obs.parse_jsonl(text)


TOTAL_TOKENS = 100 + 10 + 200 + 20 + 50 + 5


class TestAggregateNames:
    def test_counts_and_self_time(self):
        trace = build_trace()
        stats = obs.aggregate_names(trace)
        assert stats["llm.call"].count == 3
        assert stats["window"].count == 2
        assert stats["llm.call"].tokens == TOTAL_TOKENS
        # the StepClock ticks once per start/end: every span's inclusive
        # wall time covers its children, so self time stays non-negative
        for entry in stats.values():
            assert entry.self_wall_seconds >= 0.0
            assert entry.self_wall_seconds <= entry.wall_seconds

    def test_wall_is_inclusive(self):
        trace = build_trace()
        stats = obs.aggregate_names(trace)
        root = trace.roots[0]
        assert stats["job"].wall_seconds == pytest.approx(
            root.wall_seconds
        )


class TestCriticalPath:
    def test_follows_heaviest_child(self):
        trace = build_trace()
        path = obs.critical_path(trace.roots[0], metric="sim")
        names = [span.name for span, _total in path]
        assert names[0] == "job"
        assert names[1] == "window"
        # window 1 carries 3.0 sim seconds vs window 0's 2.0
        assert path[1][0].attributes["index"] == 1
        assert path[1][1] == pytest.approx(3.0)
        # totals never increase along the path
        totals = [total for _span, total in path]
        assert totals == sorted(totals, reverse=True)

    def test_rejects_unknown_metric(self):
        trace = build_trace()
        with pytest.raises(ValueError):
            obs.critical_path(trace.roots[0], metric="tokens")


class TestAttribution:
    @pytest.mark.parametrize("mode", obs.ATTRIBUTION_MODES)
    def test_totals_conserved_in_every_mode(self, mode):
        # each LLM call lands in exactly one group: attribution always
        # sums to the trace's token total, whatever the grouping
        trace = build_trace()
        rows = obs.attribute_costs(trace, by=mode)
        assert sum(row.tokens for row in rows) == TOTAL_TOKENS
        assert sum(row.calls for row in rows) == 3

    def test_by_rule(self):
        trace = build_trace()
        rows = {row.key: row for row in obs.attribute_costs(trace, by="rule")}
        assert rows["R1"].tokens == 55
        assert rows["(mining: no rule yet)"].tokens == 330

    def test_by_window(self):
        trace = build_trace()
        rows = {
            row.key: row for row in obs.attribute_costs(trace, by="window")
        }
        assert rows["window 0"].tokens == 110
        assert rows["window 1"].tokens == 220
        assert rows["(outside windows)"].tokens == 55

    def test_by_stage_and_job_and_dataset(self):
        trace = build_trace()
        stages = {
            row.key: row.tokens
            for row in obs.attribute_costs(trace, by="stage")
        }
        assert stages == {"window": 330, "translate": 55}
        for mode, expected_key in (("job", "j1"), ("dataset", "d")):
            rows = obs.attribute_costs(trace, by=mode)
            assert len(rows) == 1 and rows[0].key == expected_key

    def test_sorted_heaviest_first(self):
        trace = build_trace()
        rows = obs.attribute_costs(trace, by="window")
        tokens = [row.tokens for row in rows]
        assert tokens == sorted(tokens, reverse=True)

    def test_unknown_mode_rejected(self):
        trace = build_trace()
        with pytest.raises(ValueError):
            obs.attribute_costs(trace, by="nope")


class TestFlamegraph:
    def test_folded_stacks_by_tokens(self):
        trace = build_trace()
        folded = obs.flamegraph_folded(trace, metric="tokens")
        lines = dict(
            line.rsplit(" ", 1) for line in folded.strip().splitlines()
        )
        assert lines["job;window;llm.call"] == str(330)
        assert lines["job;translate;llm.call"] == str(55)

    def test_sim_metric_counts_each_second_once(self):
        trace = build_trace()
        folded = obs.flamegraph_folded(trace, metric="sim")
        total_us = sum(
            int(line.rsplit(" ", 1)[1])
            for line in folded.strip().splitlines()
        )
        assert total_us == pytest.approx(6.0 * 1e6)

    def test_wall_metric_total_matches_roots(self):
        trace = build_trace()
        folded = obs.flamegraph_folded(trace, metric="wall")
        total_us = sum(
            int(line.rsplit(" ", 1)[1])
            for line in folded.strip().splitlines()
        )
        root_us = sum(root.wall_seconds for root in trace.roots) * 1e6
        assert total_us == pytest.approx(root_us, rel=1e-6)


class TestChromeTrace:
    def test_events_are_valid_and_complete(self):
        trace = build_trace()
        payload = json.loads(obs.chrome_trace(trace))
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(list(trace.spans()))
        assert metadata and all(
            e["name"] == "thread_name" for e in metadata
        )
        assert min(e["ts"] for e in complete) == 0
        for event in complete:
            assert event["dur"] >= 0
            assert event["pid"] == 1


class TestLoadTrace:
    def test_round_trip_through_file(self, tmp_path):
        collector = obs.install(obs.TraceCollector(wall_clock=StepClock()))
        with obs.span("root"):
            obs.inc("things", 3)
        obs.write_jsonl(collector, str(tmp_path / "t.jsonl"))
        obs.uninstall()
        trace = obs.load_trace(str(tmp_path / "t.jsonl"))
        assert trace.span_names() == {"root"}
        assert trace.counter_value("things") == 3
