"""Unit tests for embeddings, vector store and retriever."""

import numpy as np
import pytest

from repro.encoding import IncidentEncoder, count_tokens
from repro.rag import (
    GraphRetriever,
    HashedEmbedder,
    VectorStore,
    cosine_similarity,
)


class TestEmbedder:
    def test_deterministic(self):
        a = HashedEmbedder().embed("graph consistency rules")
        b = HashedEmbedder().embed("graph consistency rules")
        assert np.allclose(a, b)

    def test_unit_norm(self):
        vector = HashedEmbedder().embed("some text here")
        assert np.isclose(np.linalg.norm(vector), 1.0)

    def test_empty_text_zero_vector(self):
        vector = HashedEmbedder().embed("")
        assert np.linalg.norm(vector) == 0.0

    def test_case_insensitive(self):
        embedder = HashedEmbedder()
        assert np.allclose(embedder.embed("Node"), embedder.embed("node"))

    def test_similar_texts_score_higher(self):
        embedder = HashedEmbedder()
        base = embedder.embed("User node with id and name properties")
        close = embedder.embed("User node with id and email properties")
        far = embedder.embed("completely unrelated words entirely")
        assert cosine_similarity(base, close) > cosine_similarity(base, far)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            HashedEmbedder(dimension=0)

    def test_embed_many_shape(self):
        matrix = HashedEmbedder(dimension=32).embed_many(["a", "b", "c"])
        assert matrix.shape == (3, 32)
        assert HashedEmbedder().embed_many([]).shape[0] == 0


class TestVectorStore:
    def test_topk_ordering(self):
        store = VectorStore()
        store.add([
            "User node id name screen_name",
            "Tweet node text created_at",
            "User follows user relationship",
        ])
        hits = store.retrieve("User node id", top_k=2)
        assert len(hits) == 2
        assert hits[0].score >= hits[1].score
        assert "User node id" in hits[0].text

    def test_empty_store(self):
        assert VectorStore().retrieve("anything") == []

    def test_topk_clamped_to_store_size(self):
        store = VectorStore()
        store.add(["only one"])
        assert len(store.retrieve("one", top_k=10)) == 1

    def test_incremental_add(self):
        store = VectorStore()
        store.add(["first"])
        store.add(["second", "third"])
        assert len(store) == 3

    def test_mmr_diversifies(self):
        store = VectorStore()
        # three near-duplicates and one different chunk
        store.add([
            "user node alpha beta gamma",
            "user node alpha beta gamma delta",
            "user node alpha beta gamma epsilon",
            "tweet content text words",
        ])
        plain = store.retrieve("user node alpha", top_k=3)
        diverse = store.retrieve("user node alpha", top_k=3, diversity=0.7)
        assert all("user" in hit.text for hit in plain)
        assert any("tweet" in hit.text for hit in diverse)


class TestGraphRetriever:
    def test_chunks_keep_statements_whole(self, social_graph):
        statements = IncidentEncoder().encode(social_graph)
        retriever = GraphRetriever(chunk_tokens=30, top_k=3)
        chunk_count = retriever.index_statements(statements)
        assert chunk_count > 1
        statement_texts = {s.text for s in statements}
        for chunk in retriever.store._texts:
            for line in chunk.splitlines():
                assert line in statement_texts

    def test_chunk_token_budget(self, social_graph):
        statements = IncidentEncoder().encode(social_graph)
        retriever = GraphRetriever(chunk_tokens=50, top_k=3)
        retriever.index_statements(statements)
        for chunk in retriever.store._texts:
            # a chunk may exceed the budget only via a single oversized
            # statement; with small statements it must stay under it
            assert count_tokens(chunk) <= 50 + max(
                count_tokens(s.text) for s in statements
            )

    def test_retrieve_returns_context(self, social_graph):
        statements = IncidentEncoder().encode(social_graph)
        retriever = GraphRetriever(chunk_tokens=40, top_k=2)
        retriever.index_statements(statements)
        result = retriever.retrieve("User id name")
        assert len(result.hits) == 2
        assert result.context
        assert 0 < result.retrieved_fraction <= 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GraphRetriever(chunk_tokens=0)
        with pytest.raises(ValueError):
            GraphRetriever(top_k=0)
        with pytest.raises(ValueError):
            GraphRetriever(diversity=1.5)
