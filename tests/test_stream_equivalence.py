"""Property-based equivalence: incremental maintenance under random
graphs and random mutation batches is value-identical to a from-scratch
recompute — the maintainer's core guarantee (per-rule exact metrics)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correction.corrector import CorrectionOutcome
from repro.graph import GraphChangeLog, PropertyGraph
from repro.graph.errors import GraphError
from repro.metrics.definitions import RuleMetrics
from repro.mining.result import MiningRun, RuleResult
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.translator import MetricQueries
from repro.stream import IncrementalMaintainer

LABELS = ("User", "Tweet", "Item")
EDGE_TYPES = ("FOLLOWS", "POSTS", "LIKES")
PROP_KEYS = ("name", "text", "score")


# ----------------------------------------------------------------------
# a fixed rule pool spanning the footprint shapes
# ----------------------------------------------------------------------
def bundle(satisfy: str, relevant: str, body: str) -> MetricQueries:
    return MetricQueries(
        check=satisfy, relevant=relevant, body=body, satisfy=satisfy,
    )


RULE_POOL = [
    ("user name", bundle(
        "MATCH (u:User) WHERE u.name IS NOT NULL RETURN count(u)",
        "MATCH (u:User) RETURN count(u)",
        "MATCH (u:User) RETURN count(u)",
    )),
    ("tweet text", bundle(
        "MATCH (t:Tweet) WHERE t.text IS NOT NULL RETURN count(t)",
        "MATCH (t:Tweet) RETURN count(t)",
        "MATCH (t:Tweet) RETURN count(t)",
    )),
    ("item score", bundle(
        "MATCH (i:Item) WHERE i.score IS NOT NULL RETURN count(i)",
        "MATCH (i:Item) RETURN count(i)",
        "MATCH (i:Item) RETURN count(i)",
    )),
    ("follows shape", bundle(
        "MATCH (:User)-[f:FOLLOWS]->(:User) RETURN count(f)",
        "MATCH ()-[f:FOLLOWS]->() RETURN count(f)",
        "MATCH ()-[f:FOLLOWS]->() RETURN count(f)",
    )),
    ("posts shape", bundle(
        "MATCH (:User)-[p:POSTS]->(:Tweet) RETURN count(p)",
        "MATCH ()-[p:POSTS]->() RETURN count(p)",
        "MATCH ()-[p:POSTS]->() RETURN count(p)",
    )),
    ("any node", bundle(
        "MATCH (n) RETURN count(n)",
        "MATCH (n) RETURN count(n)",
        "MATCH (n) RETURN count(n)",
    )),
    ("any edge", bundle(
        "MATCH ()-[r]->() RETURN count(r)",
        "MATCH ()-[r]->() RETURN count(r)",
        "MATCH ()-[r]->() RETURN count(r)",
    )),
    ("unparsable", bundle(
        "THIS IS NOT CYPHER", "NOR IS THIS", "STILL NOT CYPHER",
    )),
    ("untranslatable", None),
]


def make_run() -> MiningRun:
    results = []
    for text, queries in RULE_POOL:
        rule = ConsistencyRule(kind=RuleKind.PATTERN, text=text)
        results.append(RuleResult(
            rule=rule,
            outcome=CorrectionOutcome(
                rule=rule, generated_query="", final_query="",
                classification=None, corrected=False,
                left_uncorrected=False, metric_queries=queries,
            ),
            metrics=RuleMetrics(support=0, relevant=0, body=0),
        ))
    return MiningRun(
        dataset="prop", model="llama3", method="sliding_window",
        prompt_mode="zero_shot", results=results,
    )


# ----------------------------------------------------------------------
# graph and mutation strategies
# ----------------------------------------------------------------------
node_specs = st.lists(
    st.tuples(
        st.sampled_from(LABELS),
        st.dictionaries(
            st.sampled_from(PROP_KEYS),
            st.integers(min_value=0, max_value=9),
            max_size=2,
        ),
    ),
    min_size=1, max_size=8,
)

edge_specs = st.lists(
    st.tuples(
        st.sampled_from(EDGE_TYPES),
        st.integers(min_value=0, max_value=7),   # src index (mod nodes)
        st.integers(min_value=0, max_value=7),   # dst index (mod nodes)
    ),
    max_size=10,
)

# ops are interpreted against the live graph, so indexes are taken
# modulo the current population — every generated op is applicable
mutation_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add_node"), st.sampled_from(LABELS),
            st.dictionaries(
                st.sampled_from(PROP_KEYS),
                st.integers(min_value=0, max_value=9), max_size=2,
            ),
        ),
        st.tuples(st.just("remove_node"), st.integers(0, 30)),
        st.tuples(
            st.just("add_edge"), st.sampled_from(EDGE_TYPES),
            st.integers(0, 30), st.integers(0, 30),
        ),
        st.tuples(st.just("remove_edge"), st.integers(0, 30)),
        st.tuples(
            st.just("set_prop"), st.integers(0, 30),
            st.sampled_from(PROP_KEYS), st.integers(0, 9),
        ),
        st.tuples(
            st.just("del_prop"), st.integers(0, 30),
            st.sampled_from(PROP_KEYS),
        ),
    ),
    min_size=1, max_size=8,
)


def build_graph(nodes, edges) -> PropertyGraph:
    graph = PropertyGraph("prop")
    for index, (label, props) in enumerate(nodes):
        graph.add_node(f"n{index}", label, dict(props))
    node_ids = [node.id for node in graph.nodes()]
    for index, (edge_type, src, dst) in enumerate(edges):
        graph.add_edge(
            f"e{index}", edge_type,
            node_ids[src % len(node_ids)], node_ids[dst % len(node_ids)],
        )
    return graph


def apply_ops(graph: PropertyGraph, ops) -> None:
    counter = [0]

    def pick(population, index):
        items = list(population)
        return items[index % len(items)] if items else None

    for op in ops:
        if op[0] == "add_node":
            counter[0] += 1
            graph.add_node(f"m{counter[0]}", op[1], dict(op[2]))
        elif op[0] == "remove_node":
            victim = pick(graph.nodes(), op[1])
            if victim is not None:
                graph.remove_node(victim.id)
        elif op[0] == "add_edge":
            src = pick(graph.nodes(), op[2])
            dst = pick(graph.nodes(), op[3])
            if src is not None and dst is not None:
                counter[0] += 1
                graph.add_edge(f"me{counter[0]}", op[1], src.id, dst.id)
        elif op[0] == "remove_edge":
            victim = pick(graph.edges(), op[1])
            if victim is not None:
                graph.remove_edge(victim.id)
        elif op[0] == "set_prop":
            target = pick(graph.nodes(), op[1])
            if target is not None:
                graph.update_node(target.id, {op[2]: op[3]})
        else:  # del_prop
            target = pick(graph.nodes(), op[1])
            if target is not None and op[2] in target.properties:
                graph.remove_node_property(target.id, op[2])


def assert_equivalent(maintainer: IncrementalMaintainer) -> None:
    maintained = [result.metrics for result in maintainer.run.results]
    fresh = maintainer.recompute()
    for index, (kept, truth) in enumerate(zip(maintained, fresh)):
        assert kept == truth, (
            f"rule {index} ({maintainer.run.results[index].rule.text!r}): "
            f"maintained {kept} != recomputed {truth}"
        )


# ----------------------------------------------------------------------
# the property
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(nodes=node_specs, edges=edge_specs, ops=mutation_ops)
def test_incremental_maintenance_equals_full_recompute(nodes, edges, ops):
    graph = build_graph(nodes, edges)
    run = make_run()
    maintainer = IncrementalMaintainer(run, graph)
    for index, metrics in enumerate(maintainer.recompute()):
        run.results[index].metrics = metrics

    log = GraphChangeLog().attach(graph)
    since = graph.epoch
    apply_ops(graph, ops)
    maintainer.apply_log(log, since)
    assert_equivalent(maintainer)


@settings(max_examples=25, deadline=None)
@given(nodes=node_specs, edges=edge_specs, ops=mutation_ops)
def test_equivalence_holds_for_batched_mutations(nodes, edges, ops):
    graph = build_graph(nodes, edges)
    run = make_run()
    maintainer = IncrementalMaintainer(run, graph)
    for index, metrics in enumerate(maintainer.recompute()):
        run.results[index].metrics = metrics

    log = GraphChangeLog().attach(graph)
    since = graph.epoch
    with graph.batch():
        apply_ops(graph, ops)
    maintainer.apply_log(log, since)
    assert_equivalent(maintainer)


@settings(max_examples=25, deadline=None)
@given(nodes=node_specs, edges=edge_specs, ops=mutation_ops)
def test_equivalence_survives_ring_buffer_overflow(nodes, edges, ops):
    graph = build_graph(nodes, edges)
    run = make_run()
    maintainer = IncrementalMaintainer(run, graph)
    for index, metrics in enumerate(maintainer.recompute()):
        run.results[index].metrics = metrics

    log = GraphChangeLog(capacity=2).attach(graph)
    since = graph.epoch
    apply_ops(graph, ops)
    maintainer.apply_log(log, since)
    assert_equivalent(maintainer)


@settings(max_examples=25, deadline=None)
@given(nodes=node_specs, edges=edge_specs, ops=mutation_ops)
def test_successive_batches_stay_equivalent(nodes, edges, ops):
    graph = build_graph(nodes, edges)
    run = make_run()
    maintainer = IncrementalMaintainer(run, graph)
    for index, metrics in enumerate(maintainer.recompute()):
        run.results[index].metrics = metrics

    log = GraphChangeLog().attach(graph)
    half = max(1, len(ops) // 2)
    for chunk in (ops[:half], ops[half:]):
        since = graph.epoch
        try:
            apply_ops(graph, chunk)
        except GraphError:  # an op invalidated by the previous chunk
            pass
        maintainer.apply_log(log, since)
        log.clear(through_epoch=graph.epoch)
        assert_equivalent(maintainer)
