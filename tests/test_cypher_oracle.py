"""Differential tests: the Cypher engine vs. a straight-Python oracle.

For randomly generated small graphs, a family of query shapes is
executed both by the engine and by hand-written Python; results must
agree exactly.  This catches matcher/executor semantics bugs that
example-based tests miss.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cypher import execute
from repro.graph import PropertyGraph

LABELS = ("A", "B")
RELS = ("R", "S")


@st.composite
def random_graphs(draw):
    graph = PropertyGraph()
    node_count = draw(st.integers(min_value=1, max_value=8))
    node_meta = []
    for index in range(node_count):
        label = draw(st.sampled_from(LABELS))
        value = draw(st.integers(min_value=0, max_value=3))
        graph.add_node(f"n{index}", label, {"v": value})
        node_meta.append((f"n{index}", label, value))
    edge_count = draw(st.integers(min_value=0, max_value=12))
    edge_meta = []
    for number in range(edge_count):
        src = draw(st.integers(min_value=0, max_value=node_count - 1))
        dst = draw(st.integers(min_value=0, max_value=node_count - 1))
        rel = draw(st.sampled_from(RELS))
        graph.add_edge(f"e{number}", rel, f"n{src}", f"n{dst}")
        edge_meta.append((f"n{src}", rel, f"n{dst}"))
    return graph, node_meta, edge_meta


@given(random_graphs())
@settings(max_examples=80)
def test_label_count_matches_oracle(data):
    graph, node_meta, _edges = data
    for label in LABELS:
        engine = execute(
            graph, f"MATCH (n:{label}) RETURN count(*) AS c"
        ).scalar()
        oracle = sum(1 for _id, lbl, _v in node_meta if lbl == label)
        assert engine == oracle


@given(random_graphs())
@settings(max_examples=80)
def test_property_filter_matches_oracle(data):
    graph, node_meta, _edges = data
    engine = execute(
        graph, "MATCH (n) WHERE n.v >= 2 RETURN count(*) AS c"
    ).scalar()
    oracle = sum(1 for _id, _lbl, value in node_meta if value >= 2)
    assert engine == oracle


@given(random_graphs())
@settings(max_examples=80)
def test_one_hop_count_matches_oracle(data):
    graph, node_meta, edge_meta = data
    labels = {node_id: label for node_id, label, _v in node_meta}
    for rel in RELS:
        engine = execute(
            graph,
            f"MATCH (a:A)-[:{rel}]->(b:B) RETURN count(*) AS c",
        ).scalar()
        oracle = sum(
            1 for src, r, dst in edge_meta
            if r == rel and labels[src] == "A" and labels[dst] == "B"
        )
        assert engine == oracle


@given(random_graphs())
@settings(max_examples=80)
def test_undirected_hop_matches_oracle(data):
    graph, _nodes, edge_meta = data
    engine = execute(
        graph, "MATCH (a)-[:R]-(b) RETURN count(*) AS c"
    ).scalar()
    # each R edge matches twice (once per direction), including loops
    oracle = 2 * sum(1 for _s, rel, _d in edge_meta if rel == "R")
    assert engine == oracle


@given(random_graphs())
@settings(max_examples=80)
def test_grouped_count_matches_oracle(data):
    graph, node_meta, edge_meta = data
    engine = execute(
        graph,
        "MATCH (a)-[:R]->(b) WITH a, count(*) AS c "
        "RETURN sum(c) AS total, count(*) AS groups",
    )
    out_counts = Counter(
        src for src, rel, _dst in edge_meta if rel == "R"
    )
    if not out_counts:
        assert engine.rows == [{"total": 0, "groups": 0}]
    else:
        assert engine.rows[0]["total"] == sum(out_counts.values())
        assert engine.rows[0]["groups"] == len(out_counts)


@given(random_graphs())
@settings(max_examples=80)
def test_distinct_values_match_oracle(data):
    graph, node_meta, _edges = data
    engine = execute(
        graph,
        "MATCH (n) RETURN DISTINCT n.v AS v ORDER BY v",
    ).values()
    oracle = sorted({value for _id, _lbl, value in node_meta})
    assert engine == oracle


@given(random_graphs())
@settings(max_examples=80)
def test_pattern_predicate_matches_oracle(data):
    graph, node_meta, edge_meta = data
    engine = execute(
        graph,
        "MATCH (n) WHERE (n)-[:R]->() RETURN count(*) AS c",
    ).scalar()
    sources = {src for src, rel, _dst in edge_meta if rel == "R"}
    assert engine == len(sources)


@given(random_graphs())
@settings(max_examples=60)
def test_optional_match_row_count_matches_oracle(data):
    graph, node_meta, edge_meta = data
    engine = execute(
        graph,
        "MATCH (n) OPTIONAL MATCH (n)-[:R]->(m) RETURN count(*) AS c",
    ).scalar()
    out_counts = Counter(
        src for src, rel, _dst in edge_meta if rel == "R"
    )
    oracle = sum(
        out_counts.get(node_id, 0) or 1 for node_id, _l, _v in node_meta
    )
    assert engine == oracle


@given(random_graphs())
@settings(max_examples=60)
def test_two_hop_matches_oracle(data):
    graph, _nodes, edge_meta = data
    engine = execute(
        graph,
        "MATCH (a)-[r1:R]->(b)-[r2:R]->(c) RETURN count(*) AS c",
    ).scalar()
    r_edges = [(s, d) for s, rel, d in edge_meta if rel == "R"]
    # relationship uniqueness: the two hops must use different edges
    oracle = 0
    for i, (s1, d1) in enumerate(r_edges):
        for j, (s2, d2) in enumerate(r_edges):
            if i != j and d1 == s2:
                oracle += 1
    assert engine == oracle
