"""Watch mode over the gateway's HTTP front door: mutation submission,
drift telemetry, snapshot republishing and error mapping."""

from __future__ import annotations

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.gateway import Gateway, GatewayClient
from repro.gateway.client import GatewayClientError
from repro.graph import PropertyGraph


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_dataset(name: str) -> Dataset:
    graph = PropertyGraph(name)
    for index in range(6):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


@pytest.fixture()
def loader():
    cache: dict[str, Dataset] = {}

    def load(name: str) -> Dataset:
        if name != "tiny":
            raise KeyError(f"unknown dataset {name!r}")
        if name not in cache:
            cache[name] = build_dataset(name)
        return cache[name]

    return load


def watch_gateway(loader, tmp_path, **kwargs) -> Gateway:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("loader", loader)
    kwargs.setdefault("watch", True)
    # a huge debounce keeps the background poller inert so tests flush
    # deterministically by hand
    kwargs.setdefault("watch_debounce", 300.0)
    kwargs.setdefault("drain_timeout", 60.0)
    return Gateway(**kwargs)


FOLLOW_BATCH = [
    {"op": "add_node", "id": "u9", "labels": ["User"],
     "properties": {"id": 9, "screen_name": "@nine"}},
    {"op": "add_edge", "id": "f9", "label": "FOLLOWS",
     "src": "u9", "dst": "u0"},
]


class TestMutationRoute:
    def test_mutations_apply_and_republish_the_snapshot(
        self, loader, tmp_path
    ):
        obs.install()
        with watch_gateway(loader, tmp_path) as gw:
            client = GatewayClient(gw.url, client_id="stream")
            ack = client.mutate("tiny", FOLLOW_BATCH)
            assert ack["applied"] == 2
            assert ack["dataset"] == "tiny"
            # the snapshot was republished under an epoch-stamped name,
            # so the worker fleet reloads the mutated graph
            assert ack["snapshot"].startswith("tiny.e")
            path, _ = gw._datasets["tiny"]
            assert path.endswith(ack["snapshot"])
            epoch = gw._watchers["tiny"].graph.epoch
            assert ack["snapshot"] == f"tiny.e{epoch}.json"

    def test_mutated_graph_is_mined_under_a_fresh_address(
        self, loader, tmp_path
    ):
        obs.install()
        with watch_gateway(loader, tmp_path) as gw:
            client = GatewayClient(gw.url, client_id="stream")
            before = client.submit("tiny", "llama3", "sliding_window",
                                   "zero_shot")
            client.result(before["job_id"], timeout=120)
            client.mutate("tiny", FOLLOW_BATCH)
            after = client.submit("tiny", "llama3", "sliding_window",
                                  "zero_shot")
            # same cell, different graph content => different address
            assert after["job_id"] != before["job_id"]
            result = client.result(after["job_id"], timeout=120)
            assert result["source"] in ("worker", "cache")

    def test_malformed_batch_maps_to_400(self, loader, tmp_path):
        obs.install()
        with watch_gateway(loader, tmp_path) as gw:
            client = GatewayClient(gw.url)
            with pytest.raises(GatewayClientError) as excinfo:
                client.mutate("tiny", [{"op": "warp", "id": "x"}])
            assert excinfo.value.status == 400
            with pytest.raises(GatewayClientError) as excinfo:
                client.mutate("tiny", [
                    {"op": "add_edge", "id": "e1", "label": "FOLLOWS",
                     "src": "u0", "dst": "missing"},
                ])
            assert excinfo.value.status == 400

    def test_unknown_dataset_maps_to_404(self, loader, tmp_path):
        obs.install()
        with watch_gateway(loader, tmp_path) as gw:
            client = GatewayClient(gw.url)
            with pytest.raises(GatewayClientError) as excinfo:
                client.mutate("no_such", FOLLOW_BATCH)
            assert excinfo.value.status == 404

    def test_watch_disabled_gateway_refuses_mutations(
        self, loader, tmp_path
    ):
        obs.install()
        with watch_gateway(loader, tmp_path, watch=False) as gw:
            client = GatewayClient(gw.url)
            with pytest.raises(GatewayClientError) as excinfo:
                client.mutate("tiny", FOLLOW_BATCH)
            assert excinfo.value.status == 404
            assert "watch mode is disabled" in str(excinfo.value)


class TestDriftRoute:
    def test_drift_payload_lists_watched_datasets(self, loader, tmp_path):
        obs.install()
        with watch_gateway(loader, tmp_path) as gw:
            client = GatewayClient(gw.url, client_id="stream")
            assert client.drift() == {"watch": True, "datasets": {}}
            client.mutate("tiny", FOLLOW_BATCH)
            gw._watchers["tiny"].flush()
            payload = client.drift()
            telemetry = payload["datasets"]["tiny"]
            assert telemetry["batches_received"] == 1
            assert telemetry["mutations_applied"] == 2
            assert telemetry["maintenance"]["batches"] == 1
            assert telemetry["dirty"] is False

    def test_drift_on_disabled_gateway_reports_off(self, loader, tmp_path):
        obs.install()
        with watch_gateway(loader, tmp_path, watch=False) as gw:
            client = GatewayClient(gw.url)
            assert client.drift() == {"watch": False, "datasets": {}}

    def test_stats_expose_the_watch_section(self, loader, tmp_path):
        obs.install()
        with watch_gateway(loader, tmp_path) as gw:
            client = GatewayClient(gw.url, client_id="stream")
            assert client.stats()["watch"] == {
                "enabled": True, "watched": [],
            }
            client.mutate("tiny", FOLLOW_BATCH)
            assert client.stats()["watch"]["watched"] == ["tiny"]
