"""Unit tests for graph pattern matching."""

import pytest

from repro.cypher.matcher import match_patterns, pattern_exists
from repro.cypher.parser import Parser
from repro.graph import PropertyGraph


def patterns_of(text):
    query = Parser(f"MATCH {text} RETURN 1").parse()
    return query.clauses[0].patterns


def match_ids(graph, text, **bindings):
    """All matches as sorted tuples of element ids for bound vars."""
    results = []
    for row in match_patterns(graph, patterns_of(text), dict(bindings)):
        results.append({
            key: getattr(value, "id", value) for key, value in row.items()
        })
    return results


@pytest.fixture()
def chain_graph():
    g = PropertyGraph()
    g.add_node("a", "A", {"k": 1})
    g.add_node("b", "B", {"k": 2})
    g.add_node("c", "C", {"k": 3})
    g.add_edge("e1", "R", "a", "b")
    g.add_edge("e2", "S", "b", "c")
    return g


class TestBasicMatching:
    def test_node_scan_by_label(self, chain_graph):
        assert match_ids(chain_graph, "(n:A)") == [{"n": "a"}]

    def test_unlabeled_scan(self, chain_graph):
        assert len(match_ids(chain_graph, "(n)")) == 3

    def test_property_filter(self, chain_graph):
        assert match_ids(chain_graph, "(n {k: 2})") == [{"n": "b"}]
        assert match_ids(chain_graph, "(n:A {k: 9})") == []

    def test_directed_edge(self, chain_graph):
        rows = match_ids(chain_graph, "(x:A)-[r:R]->(y)")
        assert rows == [{"x": "a", "r": "e1", "y": "b"}]

    def test_incoming_edge(self, chain_graph):
        rows = match_ids(chain_graph, "(y:B)<-[r:R]-(x)")
        assert rows == [{"y": "b", "r": "e1", "x": "a"}]

    def test_undirected_edge(self, chain_graph):
        rows = match_ids(chain_graph, "(x:B)-[r:R]-(y)")
        assert rows == [{"x": "b", "r": "e1", "y": "a"}]

    def test_two_hop_chain(self, chain_graph):
        rows = match_ids(chain_graph, "(x:A)-[:R]->(y)-[:S]->(z)")
        assert rows == [{"x": "a", "y": "b", "z": "c"}]

    def test_type_alternation(self, chain_graph):
        rows = match_ids(chain_graph, "(x)-[r:R|S]->(y)")
        assert {row["r"] for row in rows} == {"e1", "e2"}

    def test_wrong_direction_no_match(self, chain_graph):
        assert match_ids(chain_graph, "(x:B)-[:R]->(y:A)") == []


class TestBindingsAndJoins:
    def test_prebound_variable_restricts(self, chain_graph):
        node_a = chain_graph.node("a")
        rows = match_ids(chain_graph, "(x)-[:R]->(y)", x=node_a)
        assert rows == [{"x": "a", "y": "b"}]

    def test_repeated_variable_joins(self):
        g = PropertyGraph()
        g.add_node("a", "X")
        g.add_node("b", "X")
        g.add_edge("e1", "R", "a", "b")
        g.add_edge("e2", "R", "a", "a")
        rows = match_ids(g, "(x)-[:R]->(x)")
        assert rows == [{"x": "a"}]

    def test_multiple_patterns_cartesian_with_join(self, chain_graph):
        rows = match_ids(chain_graph, "(x:A), (y:C)")
        assert rows == [{"x": "a", "y": "c"}]

    def test_named_path_binding(self, chain_graph):
        results = list(match_patterns(
            chain_graph, patterns_of("p = (a:A)-[:R]->(b)"), {}
        ))
        assert len(results) == 1
        path = results[0]["p"]
        assert len(path) == 1
        assert [n.id for n in path.nodes()] == ["a", "b"]


class TestRelationshipUniqueness:
    def test_same_edge_not_reused_in_one_match(self):
        g = PropertyGraph()
        g.add_node("a", "X")
        g.add_node("b", "X")
        g.add_edge("e1", "R", "a", "b")
        # a-[r1]->b<-[r2]-a requires two distinct edges; only one exists
        assert match_ids(g, "(a)-[r1:R]->(b)<-[r2:R]-(a)") == []
        g.add_edge("e2", "R", "a", "b")
        rows = match_ids(g, "(a)-[r1:R]->(b)<-[r2:R]-(a)")
        assert {(row["r1"], row["r2"]) for row in rows} == {
            ("e1", "e2"), ("e2", "e1"),
        }

    def test_uniqueness_spans_comma_patterns(self):
        g = PropertyGraph()
        g.add_node("a", "X")
        g.add_node("b", "X")
        g.add_edge("e1", "R", "a", "b")
        assert match_ids(g, "(a)-[r1:R]->(b), (a)-[r2:R]->(b)") == []


class TestVariableLength:
    @pytest.fixture()
    def line(self):
        g = PropertyGraph()
        for index in range(4):
            g.add_node(f"n{index}", "N", {"i": index})
        for index in range(3):
            g.add_edge(f"e{index}", "R", f"n{index}", f"n{index + 1}")
        return g

    def test_star_range(self, line):
        rows = match_ids(line, "(a {i: 0})-[:R*1..2]->(b)")
        assert {row["b"] for row in rows} == {"n1", "n2"}

    def test_fixed_hops(self, line):
        rows = match_ids(line, "(a {i: 0})-[:R*3]->(b)")
        assert [row["b"] for row in rows] == ["n3"]

    def test_variable_binds_edge_list(self, line):
        results = list(match_patterns(
            line, patterns_of("(a {i: 0})-[r:R*2]->(b)"), {}
        ))
        assert len(results) == 1
        assert [edge.id for edge in results[0]["r"]] == ["e0", "e1"]

    def test_no_edge_revisit_in_varlength(self):
        g = PropertyGraph()
        g.add_node("a", "N")
        g.add_node("b", "N")
        g.add_edge("e1", "R", "a", "b")
        g.add_edge("e2", "R", "b", "a")
        rows = match_ids(g, "(x)-[:R*2..4]->(x)")
        # a->b->a and b->a->b only; 3+ hops would need edge reuse
        assert len(rows) == 2


class TestPatternExists:
    def test_exists_true_false(self, chain_graph):
        pattern = patterns_of("(x:A)-[:R]->(:B)")[0]
        assert pattern_exists(chain_graph, pattern, {})
        missing = patterns_of("(x:C)-[:R]->(:B)")[0]
        assert not pattern_exists(chain_graph, missing, {})

    def test_exists_respects_bindings(self, chain_graph):
        pattern = patterns_of("(x)-[:R]->(:B)")[0]
        assert pattern_exists(
            chain_graph, pattern, {"x": chain_graph.node("a")}
        )
        assert not pattern_exists(
            chain_graph, pattern, {"x": chain_graph.node("b")}
        )
