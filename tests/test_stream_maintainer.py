"""Incremental rule maintenance: footprint extraction, affected-rule
pruning, constant rules and the full-re-evaluation fallback."""

from __future__ import annotations

import pytest

from repro import obs
from repro.correction.corrector import CorrectionOutcome
from repro.graph import (
    DeltaKind,
    GraphChangeLog,
    GraphDelta,
    PropertyGraph,
)
from repro.metrics.definitions import RuleMetrics
from repro.mining.result import MiningRun, RuleResult
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.translator import MetricQueries
from repro.stream import (
    IncrementalMaintainer,
    RuleFootprint,
    WILDCARD_FOOTPRINT,
    delta_affects,
    extract_footprint,
    footprint_of_queries,
    resolve_footprint,
)


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


# ----------------------------------------------------------------------
# fixtures: a small graph and a hand-built mined run over it
# ----------------------------------------------------------------------
def build_graph() -> PropertyGraph:
    graph = PropertyGraph("stream")
    graph.add_node("u1", "User", {"name": "alice"})
    graph.add_node("u2", "User", {"name": "bob"})
    graph.add_node("t1", "Tweet", {"text": "first"})
    graph.add_node("t2", "Tweet", {})
    graph.add_edge("f1", "FOLLOWS", "u1", "u2")
    graph.add_edge("p1", "POSTS", "u1", "t1")
    graph.add_edge("p2", "POSTS", "u2", "t2")
    return graph


def bundle(satisfy: str, relevant: str, body: str) -> MetricQueries:
    return MetricQueries(
        check=satisfy, relevant=relevant, body=body, satisfy=satisfy,
    )


USER_NAME = bundle(
    "MATCH (u:User) WHERE u.name IS NOT NULL RETURN count(u)",
    "MATCH (u:User) RETURN count(u)",
    "MATCH (u:User) RETURN count(u)",
)
TWEET_TEXT = bundle(
    "MATCH (t:Tweet) WHERE t.text IS NOT NULL RETURN count(t)",
    "MATCH (t:Tweet) RETURN count(t)",
    "MATCH (t:Tweet) RETURN count(t)",
)
FOLLOWS_SHAPE = bundle(
    "MATCH (:User)-[f:FOLLOWS]->(:User) RETURN count(f)",
    "MATCH ()-[f:FOLLOWS]->() RETURN count(f)",
    "MATCH ()-[f:FOLLOWS]->() RETURN count(f)",
)


def make_result(
    queries: MetricQueries | None,
    text: str = "rule",
    triage_skipped: bool = False,
) -> RuleResult:
    rule = ConsistencyRule(kind=RuleKind.PATTERN, text=text)
    outcome = CorrectionOutcome(
        rule=rule,
        generated_query=queries.check if queries else "",
        final_query=queries.check if queries else "",
        classification=None,
        corrected=False,
        left_uncorrected=False,
        metric_queries=queries,
    )
    return RuleResult(
        rule=rule, outcome=outcome,
        metrics=RuleMetrics(support=0, relevant=0, body=0),
        triage_skipped=triage_skipped,
    )


def make_run(results: list[RuleResult]) -> MiningRun:
    return MiningRun(
        dataset="stream", model="llama3", method="sliding_window",
        prompt_mode="zero_shot", results=results,
    )


def fresh_maintainer() -> tuple[PropertyGraph, IncrementalMaintainer]:
    graph = build_graph()
    run = make_run([
        make_result(USER_NAME, "user name"),
        make_result(TWEET_TEXT, "tweet text"),
        make_result(FOLLOWS_SHAPE, "follows shape"),
        make_result(None, "untranslatable"),
        make_result(USER_NAME, "triaged", triage_skipped=True),
    ])
    maintainer = IncrementalMaintainer(run, graph)
    for index, metrics in enumerate(maintainer.recompute()):
        run.results[index].metrics = metrics
    return graph, maintainer


def node_props(subject: str, labels, keys, epoch: int = 1) -> GraphDelta:
    return GraphDelta(
        kind=DeltaKind.NODE_PROPS, epoch=epoch, subject_id=subject,
        labels=tuple(labels), keys=tuple(keys),
    )


# ----------------------------------------------------------------------
# footprints
# ----------------------------------------------------------------------
class TestFootprints:
    def test_labelled_query_footprint(self):
        footprint = extract_footprint(
            "MATCH (u:User) WHERE u.name IS NOT NULL RETURN count(u)"
        )
        assert footprint.labels == {"User"}
        assert footprint.property_keys == {"name"}
        assert not footprint.any_label

    def test_unlabelled_pattern_sets_any_label(self):
        footprint = extract_footprint("MATCH (n) RETURN count(n)")
        assert footprint.any_label
        assert footprint.labels == frozenset()

    def test_untyped_relationship_sets_any_edge_type(self):
        footprint = extract_footprint(
            "MATCH (:User)-[r]->() RETURN count(r)"
        )
        assert footprint.any_edge_type

    def test_dynamic_property_access_sets_any_property(self):
        footprint = extract_footprint(
            "MATCH (u:User) WHERE size(keys(u)) > 2 RETURN count(u)"
        )
        assert footprint.any_property

    def test_unparsable_query_contributes_nothing(self):
        assert extract_footprint("THIS IS NOT CYPHER") is None
        footprint = footprint_of_queries([
            "THIS IS NOT CYPHER",
            "MATCH (t:Tweet) RETURN count(t)",
        ])
        assert footprint.labels == {"Tweet"}
        assert not footprint.wildcard

    def test_resolution_grounds_wildcards_in_catalog_and_batch(self):
        graph = build_graph()
        footprint = RuleFootprint(any_label=True)
        resolved = resolve_footprint(
            footprint, graph.catalog(),
            frozenset({"Ghost"}), frozenset(),
        )
        # every live label plus the batch-mentioned (possibly removed) one
        assert resolved.labels == {"User", "Tweet", "Ghost"}

    def test_delta_affects_requires_key_overlap_for_props(self):
        footprint = extract_footprint(
            "MATCH (u:User) WHERE u.name IS NOT NULL RETURN count(u)"
        )
        hit = node_props("u1", ("User",), ("name",))
        miss_key = node_props("u1", ("User",), ("bio",))
        miss_label = node_props("t1", ("Tweet",), ("name",))
        assert delta_affects(footprint, hit)
        assert not delta_affects(footprint, miss_key)
        assert not delta_affects(footprint, miss_label)

    def test_wildcard_footprint_is_affected_by_everything(self):
        delta = node_props("u1", ("User",), ("anything",))
        assert delta_affects(WILDCARD_FOOTPRINT, delta)


# ----------------------------------------------------------------------
# the maintainer
# ----------------------------------------------------------------------
class TestMaintainer:
    def test_baseline_metrics_match_direct_evaluation(self):
        _, maintainer = fresh_maintainer()
        user = maintainer.run.results[0].metrics
        assert (user.support, user.relevant, user.body) == (2, 2, 2)
        tweet = maintainer.run.results[1].metrics
        assert (tweet.support, tweet.relevant, tweet.body) == (1, 2, 2)

    def test_unaffected_rules_are_pruned_not_reevaluated(self):
        graph, maintainer = fresh_maintainer()
        log = GraphChangeLog().attach(graph)
        since = graph.epoch
        graph.update_node("t2", {"text": "filled in"})
        report = maintainer.apply_log(log, since)
        # only the Tweet rule touches Tweet.text
        assert report.reevaluated == 1
        assert report.pruned == 2
        assert report.constant_rules == 2
        assert [c.rule_text for c in report.changes] == ["tweet text"]
        after = maintainer.run.results[1].metrics
        assert (after.support, after.relevant) == (2, 2)

    def test_maintained_metrics_equal_recompute(self):
        graph, maintainer = fresh_maintainer()
        log = GraphChangeLog().attach(graph)
        since = graph.epoch
        with graph.batch():
            graph.add_node("u3", "User", {})
            graph.add_edge("f2", "FOLLOWS", "u3", "u1")
            graph.remove_edge("p2")
            graph.remove_node("t2")
        maintainer.apply_log(log, since)
        maintained = [r.metrics for r in maintainer.run.results]
        assert maintained == maintainer.recompute()

    def test_constant_rules_are_never_reevaluated(self):
        graph, maintainer = fresh_maintainer()
        log = GraphChangeLog().attach(graph)
        since = graph.epoch
        graph.add_node("u9", "User", {"name": "zoe"})
        report = maintainer.apply_log(log, since)
        assert report.constant_rules == 2
        assert report.reevaluated + report.pruned == 3
        zero = RuleMetrics(support=0, relevant=0, body=0)
        assert maintainer.run.results[3].metrics == zero
        assert maintainer.run.results[4].metrics == zero

    def test_empty_batch_is_free(self):
        _, maintainer = fresh_maintainer()
        collector = obs.install()
        report = maintainer.apply([])
        assert report.reevaluated == 0
        assert report.pruned == 3
        assert collector.metrics.counter("metrics.rules_evaluated").total() == 0

    def test_incomplete_log_falls_back_to_full_reevaluation(self):
        graph, maintainer = fresh_maintainer()
        log = GraphChangeLog(capacity=1).attach(graph)
        since = graph.epoch
        graph.update_node("t2", {"text": "one"})
        graph.update_node("u1", {"name": "renamed"})   # drops the first
        assert not log.complete_since(since)
        report = maintainer.apply_log(log, since)
        assert report.full_fallback
        assert report.reevaluated == 3                 # every evaluable rule
        assert report.pruned == 0
        maintained = [r.metrics for r in maintainer.run.results]
        assert maintained == maintainer.recompute()

    def test_savings_fraction_counts_only_evaluable_rules(self):
        graph, maintainer = fresh_maintainer()
        log = GraphChangeLog().attach(graph)
        since = graph.epoch
        graph.update_node("t2", {"text": "x"})
        report = maintainer.apply_log(log, since)
        assert report.savings == pytest.approx(2 / 3)

    def test_edge_delta_reaches_rules_via_edge_type(self):
        graph, maintainer = fresh_maintainer()
        log = GraphChangeLog().attach(graph)
        since = graph.epoch
        graph.remove_edge("f1")
        report = maintainer.apply_log(log, since)
        assert [c.rule_text for c in report.changes] == ["follows shape"]
        follows = maintainer.run.results[2].metrics
        assert follows.support == 0

    def test_obs_counters_account_for_the_pass(self):
        graph, maintainer = fresh_maintainer()
        collector = obs.install()
        log = GraphChangeLog().attach(graph)
        since = graph.epoch
        graph.update_node("t2", {"text": "x"})
        maintainer.apply_log(log, since)
        counters = collector.metrics
        assert counters.counter("stream.maintenance_batches").total() == 1
        assert counters.counter("stream.rules_reevaluated").total() == 1
        assert counters.counter("stream.rules_pruned").total() == 2
        assert counters.counter("stream.rules_changed").total() == 1
