"""Tests for the experiment harness (tables, figures, CLI).

The full-grid cells are exercised on the two smaller datasets; the
Twitter cells are covered by the benchmarks and the integration test.
"""

import pytest

from repro.experiments import figures, metric_tables, table1, table5, table6
from repro.experiments.cli import emit, main
from repro.experiments.report import Table, fmt_float, fmt_int
from repro.mining.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(base_seed=0)


class TestReport:
    def test_table_renders_aligned(self):
        table = Table("T", ["a", "bbbb"], [["1", "2"], ["333", "4"]])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len({len(line) for line in lines[2:3]}) == 1

    def test_fmt_helpers(self):
        assert fmt_float(98.670) == "98.67"
        assert fmt_float(100.0) == "100"
        assert fmt_float(0.0) == "0"
        assert fmt_int(12.6) == "13"


class TestTable1:
    def test_matches_paper_exactly(self):
        assert table1.verify() is True

    def test_render_contains_rows(self):
        text = table1.build().render()
        assert "WWC2019" in text
        assert "43325" in text
        assert "56493" in text


class TestMetricTables:
    def test_build_for_cybersecurity(self, runner):
        table = metric_tables.build(runner, "cybersecurity")
        text = table.render()
        assert "Table 3" in text
        assert "Llama-3" in text and "Mixtral" in text
        assert "Zero-shot" in text and "Few-shot" in text
        # 4 data rows: 2 prompts x 2 models
        assert len(table.rows) == 4
        for row in table.rows:
            assert len(row) == 10


class TestTables5And6:
    def test_table5_swa_slower_than_rag(self, runner):
        # force the cyber dataset cells only (cheap); table5 needs all
        # datasets, so check the underlying runs instead
        swa = runner.run("cybersecurity", "llama3", "sliding_window",
                         "zero_shot")
        rag = runner.run("cybersecurity", "llama3", "rag", "zero_shot")
        assert swa.mining_seconds > 10 * rag.mining_seconds

    def test_table6_fraction_format(self, runner):
        run = runner.run("cybersecurity", "mixtral", "sliding_window",
                         "zero_shot")
        assert 0 <= run.correct_queries <= run.generated_queries


class TestRunnerCaching:
    def test_same_cell_cached(self, runner):
        first = runner.run("cybersecurity", "llama3", "rag", "zero_shot")
        second = runner.run("cybersecurity", "llama3", "rag", "zero_shot")
        assert first is second

    def test_context_shared_between_methods(self, runner):
        context = runner.context("cybersecurity")
        swa = runner.pipeline("cybersecurity", "sliding_window")
        rag = runner.pipeline("cybersecurity", "rag")
        assert swa.context is context
        assert rag.context is context

    def test_unknown_method_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.pipeline("cybersecurity", "quantum")


class TestFigures:
    def test_pipeline_trace(self, runner):
        text = figures.pipeline_trace(runner, "cybersecurity")
        assert "Step 1" in text
        assert "windows" in text


class TestCli:
    def test_emit_table1(self, runner):
        assert "Table 1" in emit("table1", runner)

    def test_emit_unknown(self, runner):
        with pytest.raises(ValueError):
            emit("table99", runner)

    def test_main_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_main_rejects_unknown_target(self, capsys):
        with pytest.raises(SystemExit):
            main(["tableX"])


class TestExtensions:
    def test_extensions_table(self, runner):
        from repro.experiments import extensions

        table = extensions.build(
            runner, dataset="cybersecurity", workers=4
        )
        text = table.render()
        assert "SWA (paper)" in text
        assert "SWA parallel x4" in text
        assert "Summary" in text
        # the parallel row's mining time is ~1/4 of the sequential row's
        rows = {row[0]: row for row in table.rows}
        sequential = float(rows["SWA (paper)"][5])
        parallel = float(rows["SWA parallel x4"][5])
        assert parallel < sequential / 3
        # parallelism never changes the mined rules
        assert rows["SWA (paper)"][1] == rows["SWA parallel x4"][1]

    def test_emit_extensions(self, runner):
        from repro.experiments.cli import emit

        assert "Extensions" in emit("extensions", runner)
