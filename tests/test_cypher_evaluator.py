"""Unit tests for expression evaluation (including ternary logic)."""

import pytest

from repro.cypher import CypherTypeError, execute, parse
from repro.cypher.evaluator import EvalContext, evaluate
from repro.cypher.parser import Parser
from repro.graph import PropertyGraph


@pytest.fixture()
def graph():
    g = PropertyGraph()
    g.add_node("a", "X", {"n": 5, "s": "hello", "flag": True})
    return g


def expr(text):
    """Parse a bare expression."""
    parser = Parser(f"RETURN {text}")
    query = parser.parse()
    return query.clauses[-1].items[0].expression


def run(text, graph, **bindings):
    ctx = EvalContext(graph=graph, bindings=bindings)
    return evaluate(expr(text), ctx)


class TestArithmetic:
    def test_numbers(self, graph):
        assert run("1 + 2 * 3", graph) == 7
        assert run("2 ^ 3", graph) == 8.0
        assert run("7 % 3", graph) == 1
        assert run("-(3)", graph) == -3

    def test_integer_division_exact(self, graph):
        assert run("6 / 3", graph) == 2
        assert run("7 / 2", graph) == 3.5

    def test_division_by_zero_raises(self, graph):
        with pytest.raises(CypherTypeError):
            run("1 / 0", graph)

    def test_string_concat(self, graph):
        assert run("'a' + 'b'", graph) == "ab"
        assert run("'a' + 1", graph) == "a1"

    def test_list_concat(self, graph):
        assert run("[1] + [2]", graph) == [1, 2]
        assert run("[1] + 2", graph) == [1, 2]

    def test_null_propagates(self, graph):
        assert run("NULL + 1", graph) is None
        assert run("1 - NULL", graph) is None


class TestTernaryLogic:
    def test_and(self, graph):
        assert run("true AND true", graph) is True
        assert run("true AND false", graph) is False
        assert run("false AND NULL", graph) is False
        assert run("true AND NULL", graph) is None

    def test_or(self, graph):
        assert run("false OR true", graph) is True
        assert run("false OR NULL", graph) is None
        assert run("true OR NULL", graph) is True

    def test_xor(self, graph):
        assert run("true XOR false", graph) is True
        assert run("true XOR true", graph) is False
        assert run("true XOR NULL", graph) is None

    def test_not(self, graph):
        assert run("NOT false", graph) is True
        assert run("NOT NULL", graph) is None

    def test_boolean_type_errors(self, graph):
        with pytest.raises(CypherTypeError):
            run("1 AND true", graph)


class TestComparisons:
    def test_equality(self, graph):
        assert run("1 = 1.0", graph) is True
        assert run("'a' = 'a'", graph) is True
        assert run("1 = 'a'", graph) is False
        assert run("true = 1", graph) is False

    def test_null_comparison_is_null(self, graph):
        assert run("NULL = NULL", graph) is None
        assert run("1 < NULL", graph) is None

    def test_incomparable_types_yield_null(self, graph):
        assert run("1 < 'a'", graph) is None

    def test_ordering(self, graph):
        assert run("'abc' < 'abd'", graph) is True
        assert run("2 >= 2", graph) is True

    def test_list_equality(self, graph):
        assert run("[1, 2] = [1, 2]", graph) is True
        assert run("[1, NULL] = [1, 2]", graph) is None
        assert run("[1, NULL] = [2, 2]", graph) is False


class TestPredicates:
    def test_in(self, graph):
        assert run("2 IN [1, 2]", graph) is True
        assert run("3 IN [1, 2]", graph) is False
        assert run("3 IN [1, NULL]", graph) is None
        assert run("NULL IN []", graph) is False

    def test_string_predicates(self, graph):
        assert run("'hello' STARTS WITH 'he'", graph) is True
        assert run("'hello' ENDS WITH 'lo'", graph) is True
        assert run("'hello' CONTAINS 'ell'", graph) is True
        assert run("'hello' CONTAINS NULL", graph) is None

    def test_regex_full_match(self, graph):
        assert run("'abc' =~ 'a.+'", graph) is True
        assert run("'abc' =~ 'b'", graph) is False  # full-string semantics

    def test_is_null(self, graph):
        assert run("NULL IS NULL", graph) is True
        assert run("1 IS NOT NULL", graph) is True


class TestAccessors:
    def test_property_access_on_node(self, graph):
        node = graph.node("a")
        assert run("x.n", graph, x=node) == 5
        assert run("x.missing", graph, x=node) is None

    def test_property_access_on_null(self, graph):
        assert run("x.n", graph, x=None) is None

    def test_label_predicate(self, graph):
        node = graph.node("a")
        assert run("x:X", graph, x=node) is True
        assert run("x:Y", graph, x=node) is False

    def test_list_index_and_slice(self, graph):
        assert run("[1,2,3][0]", graph) == 1
        assert run("[1,2,3][-1]", graph) == 3
        assert run("[1,2,3][9]", graph) is None
        assert run("[1,2,3][1..]", graph) == [2, 3]
        assert run("[1,2,3][..2]", graph) == [1, 2]

    def test_map_index(self, graph):
        assert run("{a: 1}['a']", graph) == 1

    def test_case_searched(self, graph):
        assert run(
            "CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END", graph
        ) == "b"
        assert run("CASE WHEN false THEN 1 END", graph) is None

    def test_case_simple(self, graph):
        assert run(
            "CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", graph
        ) == "two"

    def test_list_comprehension(self, graph):
        assert run("[x IN [1,2,3] WHERE x > 1 | x * 10]", graph) == [20, 30]
        assert run("[x IN [1,2,3] | x]", graph) == [1, 2, 3]
        assert run("[x IN [1,2,3] WHERE x > 5]", graph) == []


class TestParameters:
    def test_parameter_binding(self, graph):
        ctx = EvalContext(graph=graph, parameters={"p": 9})
        assert evaluate(expr("$p"), ctx) == 9

    def test_parameters_in_query(self, graph):
        result = execute(
            graph, "MATCH (n:X) WHERE n.n = $v RETURN count(*) AS c",
            parameters={"v": 5},
        )
        assert result.scalar() == 1


class TestPatternPredicates:
    def test_pattern_exists_in_where(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) WHERE (u)-[:POSTS]->(:Tweet) "
            "RETURN count(*) AS c",
        )
        assert result.scalar() == 2

    def test_negated_pattern(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) WHERE NOT (u)-[:FOLLOWS]->(:User) "
            "RETURN u.name AS n",
        )
        assert result.values() == ["bob"]
