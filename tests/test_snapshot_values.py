"""Dataset snapshot round-trips for awkward property values: unicode,
lists, None and the nested-container rejection contract.

Watch mode re-snapshots the dataset after every mutation batch, so any
value a client can push through the mutation API must survive
serialise -> JSON -> deserialise exactly.  The graph model mirrors
Neo4j's storable types — primitives, None and flat lists of primitives —
and anything nested is rejected *before* it can reach a snapshot, so the
wire format never has to represent a value it cannot round-trip."""

from __future__ import annotations

import pytest

from repro.datasets.base import Dataset, DirtReport
from repro.datasets.snapshot import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)
from repro.graph import PropertyGraph
from repro.graph.errors import InvalidPropertyError
from repro.service.jobs import graph_fingerprint

AWKWARD_NODE_PROPS = {
    "unicode": "héllo wörld — ßß 中文 🦜",
    "rtl": "שלום עולם",
    "combining": "éclair",            # e + combining acute
    "empty": "",
    "none": None,
    "zero": 0,
    "negative": -17,
    "float": 3.5,
    "bool_true": True,
    "bool_false": False,
    "list_ints": [3, 1, 2],
    "list_mixed": [1, "a", True, 2.5],
    "list_empty": [],
}

AWKWARD_EDGE_PROPS = {
    "note": "crème brûlée > naïve café",
    "weights": [0.5, -1.25, 99],
    "tags": ["α", "β"],
    "missing": None,
}


def awkward_dataset() -> Dataset:
    graph = PropertyGraph("awkward")
    graph.add_node("n1", "Thing", dict(AWKWARD_NODE_PROPS))
    graph.add_node("n2", ("Thing", "Détail"), {"label_test": "värde"})
    graph.add_edge("e1", "RELATES", "n1", "n2", dict(AWKWARD_EDGE_PROPS))
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


class TestAwkwardValues:
    def test_dict_round_trip_preserves_every_value(self):
        dataset = awkward_dataset()
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        assert rebuilt.graph.node("n1").properties == AWKWARD_NODE_PROPS
        assert rebuilt.graph.edge("e1").properties == AWKWARD_EDGE_PROPS
        assert rebuilt.graph.node("n2").labels == frozenset(
            {"Thing", "Détail"}
        )

    def test_file_round_trip_preserves_the_fingerprint(self, tmp_path):
        dataset = awkward_dataset()
        path = save_dataset(dataset, tmp_path / "awkward.json")
        rebuilt = load_dataset(path)
        assert graph_fingerprint(rebuilt.graph) == graph_fingerprint(
            dataset.graph
        )
        assert rebuilt.graph.node("n1").properties == AWKWARD_NODE_PROPS

    def test_double_round_trip_is_stable(self, tmp_path):
        dataset = awkward_dataset()
        once = load_dataset(save_dataset(dataset, tmp_path / "one.json"))
        twice = load_dataset(save_dataset(once, tmp_path / "two.json"))
        assert dataset_to_dict(once) == dataset_to_dict(twice)

    def test_none_valued_property_is_kept_not_dropped(self):
        dataset = awkward_dataset()
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        properties = rebuilt.graph.node("n1").properties
        assert "none" in properties
        assert properties["none"] is None
        assert rebuilt.graph.edge("e1").properties["missing"] is None

    def test_list_values_keep_order_and_element_types(self):
        dataset = awkward_dataset()
        rebuilt = dataset_from_dict(dataset_to_dict(dataset))
        properties = rebuilt.graph.node("n1").properties
        assert properties["list_ints"] == [3, 1, 2]       # order preserved
        assert properties["list_mixed"] == [1, "a", True, 2.5]
        assert properties["list_mixed"][2] is True        # bool, not int
        assert properties["list_empty"] == []

    def test_tuple_input_normalises_to_list_and_round_trips(self, tmp_path):
        graph = PropertyGraph("tuples")
        graph.add_node("n", "T", {"v": (1, 2, 3)})
        dataset = Dataset(graph=graph, true_rules=[], dirt=DirtReport())
        rebuilt = load_dataset(save_dataset(dataset, tmp_path / "t.json"))
        assert rebuilt.graph.node("n").properties["v"] == [1, 2, 3]

    @pytest.mark.parametrize("value", [
        "plain text with spaces",
        "line\nbreaks\tand tabs",
        'quotes " and \' and \\ backslash',
        "😀 astral-plane emoji",
    ])
    def test_tricky_strings_survive(self, tmp_path, value):
        graph = PropertyGraph("strings")
        graph.add_node("n", "T", {"v": value})
        dataset = Dataset(graph=graph, true_rules=[], dirt=DirtReport())
        rebuilt = load_dataset(save_dataset(dataset, tmp_path / "s.json"))
        assert rebuilt.graph.node("n").properties["v"] == value

    @pytest.mark.parametrize("value", [
        {"a": 1},                     # maps are not storable
        [1, [2, 3]],                  # nested lists are not storable
        [None],                       # None inside a list is not storable
        [{"k": "v"}],
    ])
    def test_nested_values_are_rejected_before_snapshotting(self, value):
        # the model mirrors Neo4j's storable types: rejection happens at
        # the graph boundary, so snapshots never contain nested values
        graph = PropertyGraph("nested")
        with pytest.raises(InvalidPropertyError):
            graph.add_node("n", "T", {"v": value})
        graph.add_node("n", "T", {})
        with pytest.raises(InvalidPropertyError):
            graph.update_node("n", {"v": value})

    def test_mutated_then_snapshotted_graph_round_trips(self, tmp_path):
        # the watch-mode path: mutate under batch(), then re-snapshot
        dataset = awkward_dataset()
        with dataset.graph.batch():
            dataset.graph.update_node("n1", {"unicode": "ωmega", "new": None})
            dataset.graph.add_node("n3", "Thing", {"π": 3.14159})
        rebuilt = load_dataset(save_dataset(dataset, tmp_path / "m.json"))
        assert rebuilt.graph.node("n1").properties["unicode"] == "ωmega"
        assert rebuilt.graph.node("n1").properties["new"] is None
        assert rebuilt.graph.node("n3").properties == {"π": 3.14159}
        assert graph_fingerprint(rebuilt.graph) == graph_fingerprint(
            dataset.graph
        )
