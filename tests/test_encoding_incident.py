"""Unit tests for the incident and adjacency encoders."""

from repro.encoding import (
    AdjacencyEncoder,
    IncidentEncoder,
    format_properties,
    format_value,
)
from repro.llm.prompt_io import parse_visible_graph


class TestFormatting:
    def test_format_value(self):
        assert format_value("x") == "'x'"
        assert format_value(True) == "True"
        assert format_value(3) == "3"
        assert format_value([1, "a"]) == "[1, 'a']"

    def test_format_properties_sorted(self):
        assert format_properties({"b": 1, "a": "x"}) == "(a: 'x', b: 1)"
        assert format_properties({}) == "()"


class TestIncidentEncoder:
    def test_node_statement(self, social_graph):
        encoder = IncidentEncoder()
        statement = encoder.encode_node(social_graph.node("u1"))
        assert statement.kind == "node"
        assert statement.text == (
            "Node u1 with label User has properties "
            "(active: True, id: 1, name: 'alice')."
        )

    def test_edge_statement_includes_endpoint_labels(self, social_graph):
        encoder = IncidentEncoder()
        statement = encoder.encode_edge(
            social_graph, social_graph.edge("p1")
        )
        assert statement.kind == "edge"
        assert "Node u1 (User) connects to node t1 (Tweet)" in statement.text
        assert "label POSTS" in statement.text

    def test_statement_order_groups_by_node(self, social_graph):
        statements = IncidentEncoder().encode(social_graph)
        # u1's node statement is immediately followed by its out-edges
        texts = [s.text for s in statements]
        u1_index = next(
            i for i, t in enumerate(texts) if t.startswith("Node u1 with")
        )
        assert "via edge p1" in texts[u1_index + 1]

    def test_round_trip_through_prompt_parser(self, social_graph):
        text = IncidentEncoder().encode_text(social_graph)
        view = parse_visible_graph(text)
        assert view.unparsed_lines == 0
        assert set(view.nodes) == {"u1", "u2", "t1", "t2", "t3"}
        assert len(view.edges) == 5
        tweet = view.nodes["t1"]
        assert tweet.labels == ("Tweet",)
        assert tweet.properties["id"] == 10
        posts = [e for e in view.edges if e.label == "POSTS"]
        assert all(e.src_labels == ("User",) for e in posts)


class TestAdjacencyEncoder:
    def test_edges_after_all_nodes(self, social_graph):
        statements = AdjacencyEncoder().encode(social_graph)
        kinds = [s.kind for s in statements]
        assert kinds == ["node"] * 5 + ["edge"] * 5

    def test_edge_statement_without_labels(self, social_graph):
        text = AdjacencyEncoder().encode_text(social_graph)
        view = parse_visible_graph(text)
        assert view.unparsed_lines == 0
        posts = [e for e in view.edges if e.label == "POSTS"]
        assert all(e.src_labels == () for e in posts)
        # but the parser can resolve them from visible node statements
        assert view.resolve_labels(posts[0].src) == ("User",)

    def test_adjacency_is_cheaper_in_tokens(self, social_graph):
        from repro.encoding import count_tokens

        incident = IncidentEncoder().encode_text(social_graph)
        adjacency = AdjacencyEncoder().encode_text(social_graph)
        assert count_tokens(adjacency) < count_tokens(incident)
