"""Integration tests for query execution (clause pipeline)."""

import pytest

from repro.cypher import CypherSemanticError, execute
from repro.graph import PropertyGraph


class TestReturnShapes:
    def test_column_names_and_aliases(self, social_graph):
        result = execute(
            social_graph, "MATCH (u:User) RETURN u.name AS name, u.id"
        )
        assert result.columns == ["name", "u.id"]

    def test_values_helper(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) RETURN u.name AS n ORDER BY n",
        )
        assert result.values() == ["alice", "bob"]
        assert result.values("n") == ["alice", "bob"]

    def test_scalar_empty_result(self, social_graph):
        result = execute(
            social_graph, "MATCH (u:User {name: 'nobody'}) RETURN u.id"
        )
        assert result.scalar() is None
        assert len(result) == 0

    def test_return_star(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User {name: 'alice'})-[:FOLLOWS]->(v) RETURN *",
        )
        assert result.columns == ["u", "v"]

    def test_iteration(self, social_graph):
        result = execute(social_graph, "MATCH (u:User) RETURN u.id AS i")
        assert sorted(row["i"] for row in result) == [1, 2]


class TestAggregation:
    def test_global_count(self, social_graph):
        assert execute(
            social_graph, "MATCH (t:Tweet) RETURN count(*) AS c"
        ).scalar() == 3

    def test_count_over_empty_input_is_zero(self, social_graph):
        assert execute(
            social_graph, "MATCH (x:Nothing) RETURN count(*) AS c"
        ).scalar() == 0

    def test_grouped_count(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User)-[:POSTS]->(t:Tweet) "
            "RETURN u.name AS name, count(t) AS posts ORDER BY name",
        )
        assert result.rows == [
            {"name": "alice", "posts": 2},
            {"name": "bob", "posts": 1},
        ]

    def test_grouped_empty_input_has_no_rows(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (x:Nothing) RETURN x.name AS n, count(*) AS c",
        )
        assert result.rows == []

    def test_collect_distinct(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (t:Tweet) RETURN collect(DISTINCT t.id) AS ids",
        )
        assert sorted(result.scalar()) == [10, 12]

    def test_aggregate_inside_expression(self, social_graph):
        # the paper's WITH ... COLLECT(...) AS xs WHERE size(xs) > 1 shape
        result = execute(
            social_graph,
            "MATCH (t:Tweet) WITH t.id AS id, collect(t.text) AS texts "
            "WHERE size(texts) > 1 RETURN id, size(texts) AS n",
        )
        assert result.rows == [{"id": 10, "n": 2}]

    def test_min_max_avg_sum(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (t:Tweet) RETURN min(t.id) AS lo, max(t.id) AS hi, "
            "sum(t.id) AS s, avg(t.id) AS a",
        )
        assert result.rows == [{"lo": 10, "hi": 12, "s": 32, "a": 32 / 3}]

    def test_aggregate_in_where_rejected(self, social_graph):
        with pytest.raises(CypherSemanticError):
            execute(
                social_graph,
                "MATCH (t:Tweet) WHERE count(*) > 1 RETURN t",
            )


class TestWithPipeline:
    def test_with_filters_before_return(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (t:Tweet) WITH t WHERE t.id = 10 "
            "RETURN count(*) AS c",
        )
        assert result.scalar() == 2

    def test_with_narrows_scope(self, social_graph):
        with pytest.raises(CypherSemanticError):
            execute(
                social_graph,
                "MATCH (t:Tweet) WITH t.id AS i RETURN t.text",
            )

    def test_chained_aggregation(self, social_graph):
        # count of duplicate-id groups
        result = execute(
            social_graph,
            "MATCH (t:Tweet) WITH t.id AS id, count(*) AS c "
            "WHERE c > 1 RETURN count(*) AS dup_groups",
        )
        assert result.scalar() == 1

    def test_match_after_with(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User {name: 'alice'}) WITH u "
            "MATCH (u)-[:POSTS]->(t) RETURN count(t) AS c",
        )
        assert result.scalar() == 2


class TestOptionalMatch:
    def test_optional_pads_with_null(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) OPTIONAL MATCH (u)-[:FOLLOWS]->(v:User) "
            "RETURN u.name AS a, v.name AS b ORDER BY a",
        )
        assert result.rows == [
            {"a": "alice", "b": "bob"},
            {"a": "bob", "b": None},
        ]

    def test_optional_where_inside_match(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) OPTIONAL MATCH (u)-[:POSTS]->(t:Tweet) "
            "WHERE t.id = 12 RETURN u.name AS n, t.id AS t ORDER BY n",
        )
        assert result.rows == [
            {"n": "alice", "t": 12},
            {"n": "bob", "t": None},
        ]


class TestUnwind:
    def test_unwind_expands(self, social_graph):
        result = execute(
            social_graph, "UNWIND [1, 2, 3] AS x RETURN x * 2 AS y"
        )
        assert result.values() == [2, 4, 6]

    def test_unwind_null_produces_nothing(self, social_graph):
        result = execute(social_graph, "UNWIND NULL AS x RETURN x")
        assert result.rows == []

    def test_unwind_scalar_single_row(self, social_graph):
        result = execute(social_graph, "UNWIND 5 AS x RETURN x")
        assert result.values() == [5]


class TestOrderingAndPaging:
    def test_order_desc(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (t:Tweet) RETURN t.text AS x ORDER BY t.created_at DESC",
        )
        assert result.values() == ["third", "second", "first"]

    def test_order_nulls_last(self):
        g = PropertyGraph()
        g.add_node("a", "X", {"v": 2})
        g.add_node("b", "X", {})
        g.add_node("c", "X", {"v": 1})
        result = execute(g, "MATCH (n:X) RETURN n.v AS v ORDER BY v")
        assert result.values() == [1, 2, None]

    def test_skip_limit(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (t:Tweet) RETURN t.text AS x ORDER BY x SKIP 1 LIMIT 1",
        )
        assert result.values() == ["second"]

    def test_order_by_preprojection_variable(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) RETURN u.name AS team ORDER BY u.id DESC",
        )
        assert result.values() == ["bob", "alice"]


class TestDistinctAndUnion:
    def test_distinct(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (t:Tweet) RETURN DISTINCT t.id AS i ORDER BY i",
        )
        assert result.values() == [10, 12]

    def test_union_dedups(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) RETURN u.name AS n "
            "UNION MATCH (u:User) RETURN u.name AS n",
        )
        assert sorted(result.values()) == ["alice", "bob"]

    def test_union_all_keeps_duplicates(self, social_graph):
        result = execute(
            social_graph,
            "MATCH (u:User) RETURN u.name AS n "
            "UNION ALL MATCH (u:User) RETURN u.name AS n",
        )
        assert len(result) == 4

    def test_union_column_mismatch(self, social_graph):
        with pytest.raises(CypherSemanticError):
            execute(
                social_graph,
                "MATCH (u:User) RETURN u.name AS a "
                "UNION MATCH (u:User) RETURN u.name AS b",
            )


class TestPaperQueries:
    """The actual query shapes from the paper run end-to-end."""

    def test_support_count_query(self, sports_graph):
        result = execute(
            sports_graph,
            "MATCH (m:Match)-[:IN_TOURNAMENT]->(t:Tournament) "
            "WITH t.id AS tournament_id, m.id AS match_id, "
            "COUNT(*) AS count WHERE count = 1 "
            "RETURN COUNT(*) AS support",
        )
        assert result.scalar() == 2

    def test_regex_validation_query(self):
        g = PropertyGraph()
        g.add_node("d1", "Domain", {"domain": "example.com"})
        g.add_node("d2", "Domain", {"domain": "not a domain"})
        result = execute(
            g,
            "MATCH (n) WHERE n.domain IS NOT NULL AND "
            "n.domain =~ '([a-z0-9-]+\\\\.)+[a-z]{2,}' "
            "RETURN COUNT(*) AS valid_domains",
        )
        assert result.scalar() == 1

    def test_same_minute_goals_query(self, sports_graph):
        result = execute(
            sports_graph,
            "MATCH (p:Person)-[g:SCORED_GOAL]->(m:Match) "
            "WITH p, m, g.minute AS minute, count(*) AS c WHERE c > 1 "
            "RETURN p.name AS player, m.id AS match, minute",
        )
        assert result.rows == [{"player": "Ada", "match": 1, "minute": 12}]
