"""Unit tests for the Cypher lexer."""

import pytest

from repro.cypher import CypherSyntaxError, tokenize
from repro.cypher.tokens import TokenType


def kinds(text):
    return [t.type for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasics:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_case_insensitive_but_text_preserved(self):
        tokens = tokenize("match Match MATCH")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])
        assert [t.text for t in tokens[:-1]] == ["match", "Match", "MATCH"]
        assert tokens[0].is_keyword("MATCH")
        assert tokens[1].is_keyword("MATCH")

    def test_identifiers(self):
        tokens = tokenize("foo _bar baz2")
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_backtick_identifier(self):
        tokens = tokenize("`weird name`")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].text == "weird name"

    def test_positions_point_into_source(self):
        tokens = tokenize("MATCH (n)")
        assert tokens[0].position == 0
        assert tokens[1].position == 6


class TestStrings:
    def test_single_and_double_quotes(self):
        assert texts("'abc' \"xyz\"") == ["abc", "xyz"]

    def test_escapes(self):
        assert texts(r"'a\'b'") == ["a'b"]
        assert texts(r"'a\nb'") == ["a\nb"]
        assert texts(r"'a\\b'") == ["a\\b"]

    def test_unknown_escape_kept_verbatim(self):
        assert texts(r"'a\db'") == [r"a\db"]

    def test_unterminated_string(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("'oops")


class TestNumbers:
    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.INTEGER
        assert tokens[0].text == "42"

    def test_float(self):
        assert tokenize("3.25")[0].type is TokenType.FLOAT

    def test_scientific(self):
        assert tokenize("1e5")[0].type is TokenType.FLOAT
        assert tokenize("2.5e-3")[0].type is TokenType.FLOAT

    def test_dot_without_digits_is_property_access(self):
        assert kinds("a.b") == [
            TokenType.IDENT, TokenType.DOT, TokenType.IDENT,
        ]


class TestOperators:
    def test_regex_match_operator(self):
        assert kinds("a =~ b") == [
            TokenType.IDENT, TokenType.REGEX_MATCH, TokenType.IDENT,
        ]

    def test_comparison_operators(self):
        assert kinds("< <= > >= <> !=") == [
            TokenType.LT, TokenType.LTE, TokenType.GT, TokenType.GTE,
            TokenType.NEQ, TokenType.NEQ,
        ]

    def test_arrows(self):
        assert kinds("-[r]->") == [
            TokenType.DASH, TokenType.LBRACKET, TokenType.IDENT,
            TokenType.RBRACKET, TokenType.ARROW_RIGHT,
        ]
        assert kinds("<-[r]-") == [
            TokenType.ARROW_LEFT, TokenType.LBRACKET, TokenType.IDENT,
            TokenType.RBRACKET, TokenType.DASH,
        ]

    def test_bare_arrows(self):
        assert kinds("-->") == [TokenType.DASH, TokenType.ARROW_RIGHT]
        assert kinds("<--") == [TokenType.ARROW_LEFT, TokenType.DASH]

    def test_comparison_lt_not_arrow(self):
        # 'a < b' must not lex '<' as part of an arrow
        assert kinds("a < b") == [
            TokenType.IDENT, TokenType.LT, TokenType.IDENT,
        ]

    def test_unexpected_character(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("a ~ b")


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CypherSyntaxError):
            tokenize("a /* oops")
