"""Unit tests for the semantic static analyzer (repro.analysis) plus the
end-to-end triage path through the mining pipeline."""

from __future__ import annotations

import dataclasses

import pytest

from repro import obs
from repro.analysis import (
    AnalysisReport,
    StaticAnalyzer,
    Verdict,
    analyze_query,
    canonical_form,
    canonical_signature,
    worst,
)
from repro.cypher import parse
from repro.datasets.base import Dataset, DirtReport
from repro.graph import PropertyGraph, infer_schema
from repro.mining import PipelineContext, SlidingWindowPipeline
from repro.mining.persistence import run_from_dict, run_to_dict
from repro.rules.dedup import deduplicate
from repro.rules.model import ConsistencyRule, RuleKind
from repro.rules.translator import MetricQueries


def verdict_of(text, schema=None):
    return analyze_query(text, schema).verdict


# ----------------------------------------------------------------------
# dataflow pass
# ----------------------------------------------------------------------
class TestDataflow:
    def test_clean_query_is_clean(self):
        report = analyze_query(
            "MATCH (a:User)-[:POSTS]->(t:Tweet) "
            "WHERE a.id > 0 RETURN t.id AS i"
        )
        assert report.is_clean
        assert report.verdict is Verdict.OK

    def test_use_before_bind(self):
        report = analyze_query(
            "MATCH (a:User) WHERE b.id > 0 RETURN a.id AS i"
        )
        assert report.has("use-before-bind")
        assert report.verdict is Verdict.WARN

    def test_use_after_with_projection_drop(self):
        report = analyze_query(
            "MATCH (a:User)-[:POSTS]->(t:Tweet) "
            "WITH t.id AS i RETURN a.name AS n"
        )
        assert report.has("use-after-with")

    def test_unused_variable(self):
        report = analyze_query(
            "MATCH (a:User)-[r:POSTS]->(t:Tweet) RETURN a.id AS i"
        )
        unused = {f.subject for f in report.findings
                  if f.code == "unused-variable"}
        assert {"r", "t"} == unused

    def test_count_star_suppresses_unused(self):
        report = analyze_query(
            "MATCH (a:User)-[r:POSTS]->(t:Tweet) RETURN count(*) AS c"
        )
        assert not report.has("unused-variable")

    def test_shadowed_variable(self):
        report = analyze_query(
            "MATCH (a:User) WITH a.id AS a RETURN a AS i"
        )
        assert report.has("shadowed-variable")

    def test_cartesian_product_warns(self):
        report = analyze_query(
            "MATCH (a:User), (b:Tweet) RETURN a.id AS x, b.id AS y"
        )
        assert report.has("cartesian-product")

    def test_connected_patterns_do_not_warn(self):
        report = analyze_query(
            "MATCH (a:User), (a)-[:POSTS]->(t:Tweet) "
            "RETURN a.id AS x, t.id AS y"
        )
        assert not report.has("cartesian-product")

    def test_with_resets_cartesian_segments(self):
        report = analyze_query(
            "MATCH (a:User) WITH count(a) AS c "
            "MATCH (t:Tweet) RETURN c AS c, t.id AS i"
        )
        assert not report.has("cartesian-product")


# ----------------------------------------------------------------------
# type inference pass
# ----------------------------------------------------------------------
class TestTypecheck:
    def test_number_vs_string_comparison(self, social_schema):
        report = analyze_query(
            "MATCH (u:User) WHERE u.id = 'abc' RETURN u.id AS i",
            social_schema,
        )
        assert report.has("type-confused-comparison")

    def test_regex_on_number(self, social_schema):
        report = analyze_query(
            "MATCH (u:User) WHERE u.id =~ 'a.*' RETURN u.id AS i",
            social_schema,
        )
        assert report.has("regex-on-non-string")

    def test_string_predicate_on_boolean(self, social_schema):
        report = analyze_query(
            "MATCH (u:User) WHERE u.active STARTS WITH 'tr' "
            "RETURN u.id AS i",
            social_schema,
        )
        assert report.has("string-predicate-on-non-string")

    def test_comparison_with_null_is_typed_finding(self, social_schema):
        # '=' against NULL evaluates to null, never true — the checker
        # reports it instead of silently treating it as class-disjoint
        report = analyze_query(
            "MATCH (u:User) WHERE u.id = null RETURN u.id AS i",
            social_schema,
        )
        finding = next(
            f for f in report.findings if f.code == "comparison-with-null"
        )
        assert finding.severity is Verdict.WARN
        assert "IS NULL" in finding.message

    def test_int_float_widening_is_clean(self, social_schema):
        # ints and floats share the 'number' class; comparing an int
        # property against a float literal is not a confusion
        report = analyze_query(
            "MATCH (u:User) WHERE u.id > 1.5 RETURN u.id AS i",
            social_schema,
        )
        assert not report.by_pass("types")

    def test_string_vs_numeric_inequality(self, social_schema):
        report = analyze_query(
            "MATCH (u:User) WHERE u.name < 5 RETURN u.id AS i",
            social_schema,
        )
        assert report.has("type-confused-comparison")
        assert report.verdict is Verdict.WARN

    def test_matching_types_are_clean(self, social_schema):
        report = analyze_query(
            "MATCH (u:User) WHERE u.name = 'alice' AND u.id > 0 "
            "RETURN u.id AS i",
            social_schema,
        )
        assert not report.by_pass("types")

    def test_no_schema_skips_type_pass(self):
        report = analyze_query(
            "MATCH (u:User) WHERE u.id = 'abc' RETURN u.id AS i"
        )
        assert not report.by_pass("types")


# ----------------------------------------------------------------------
# satisfiability pass
# ----------------------------------------------------------------------
class TestSatisfiability:
    @pytest.mark.parametrize("predicate", [
        "n.x > 5 AND n.x < 3",
        "n.x >= 4 AND n.x < 4",
        "n.x = 1 AND n.x = 2",
        "n.x = 1 AND n.x <> 1",
        "n.x IS NULL AND n.x > 0",
        "n.x IN [1, 2] AND n.x IN [3, 4]",
        "n.x = 7 AND NOT n.x = 7",
        "n.name STARTS WITH 'ab' AND n.name STARTS WITH 'cd'",
        "n.name = 'p' AND n.name ENDS WITH 'q'",
    ])
    def test_unsat_conjunctions(self, predicate):
        report = analyze_query(
            f"MATCH (n:User) WHERE {predicate} RETURN count(*) AS c"
        )
        assert report.verdict is Verdict.UNSAT, predicate
        assert report.has("unsatisfiable-predicate")

    @pytest.mark.parametrize("predicate", [
        "n.x > 3 AND n.x < 5",
        "n.x = 1 AND n.name = 'p'",
        "n.x IN [1, 2] AND n.x IN [2, 3]",
        "n.name STARTS WITH 'ab' AND n.name STARTS WITH 'abc'",
        "n.x > 0 OR n.x < 0",
    ])
    def test_satisfiable_conjunctions_pass(self, predicate):
        report = analyze_query(
            f"MATCH (n:User) WHERE {predicate} RETURN count(*) AS c"
        )
        assert report.verdict is not Verdict.UNSAT, predicate

    def test_tautology_is_trivial(self):
        report = analyze_query("MATCH (n:User) WHERE 1 = 1 RETURN n.x AS x")
        assert report.verdict is Verdict.TRIVIAL
        assert report.has("tautological-predicate")

    def test_real_predicate_is_not_trivial(self):
        report = analyze_query(
            "MATCH (n:User) WHERE n.x > 0 RETURN n.x AS x"
        )
        assert not report.has("tautological-predicate")

    def test_optional_match_where_is_exempt(self):
        report = analyze_query(
            "MATCH (n:User) OPTIONAL MATCH (n)-[:POSTS]->(t:Tweet) "
            "WHERE t.id > 5 AND t.id < 3 RETURN n.id AS i, t.id AS j"
        )
        assert report.verdict is not Verdict.UNSAT

    def test_union_unsat_requires_every_branch(self):
        one_dead = analyze_query(
            "MATCH (n:User) WHERE n.x > 5 AND n.x < 3 RETURN n.x AS v "
            "UNION MATCH (m:User) RETURN m.x AS v"
        )
        assert one_dead.verdict is Verdict.WARN
        assert one_dead.has("dead-union-branch")

        both_dead = analyze_query(
            "MATCH (n:User) WHERE n.x > 5 AND n.x < 3 RETURN n.x AS v "
            "UNION MATCH (m:User) WHERE m.x = 1 AND m.x = 2 "
            "RETURN m.x AS v"
        )
        assert both_dead.verdict is Verdict.UNSAT


# ----------------------------------------------------------------------
# canonicalization
# ----------------------------------------------------------------------
class TestCanonical:
    def test_alpha_renaming_collapses(self):
        a = parse("MATCH (x:User)-[e:POSTS]->(y:Tweet) "
                  "WHERE x.id > 0 RETURN count(*) AS c")
        b = parse("MATCH (alpha:User)-[beta:POSTS]->(gamma:Tweet) "
                  "WHERE alpha.id > 0 RETURN count(*) AS c")
        assert canonical_signature(a) == canonical_signature(b)

    def test_edge_direction_flip_collapses(self):
        out = parse("MATCH (u:User)-[:POSTS]->(t:Tweet) "
                    "RETURN count(*) AS c")
        inc = parse("MATCH (t:Tweet)<-[:POSTS]-(u:User) "
                    "RETURN count(*) AS c")
        assert canonical_signature(out) == canonical_signature(inc)

    def test_comparison_flip_collapses(self):
        lt = parse("MATCH (n:User) WHERE n.id < 10 RETURN count(*) AS c")
        gt = parse("MATCH (n:User) WHERE 10 > n.id RETURN count(*) AS c")
        assert canonical_signature(lt) == canonical_signature(gt)

    def test_conjunct_order_collapses(self):
        ab = parse("MATCH (n:User) WHERE n.id > 0 AND n.name = 'p' "
                   "RETURN count(*) AS c")
        ba = parse("MATCH (n:User) WHERE n.name = 'p' AND n.id > 0 "
                   "RETURN count(*) AS c")
        assert canonical_signature(ab) == canonical_signature(ba)

    def test_distinct_queries_stay_distinct(self):
        a = parse("MATCH (n:User) WHERE n.id > 0 RETURN count(*) AS c")
        b = parse("MATCH (n:User) WHERE n.id > 1 RETURN count(*) AS c")
        c = parse("MATCH (n:Tweet) WHERE n.id > 0 RETURN count(*) AS c")
        signatures = {canonical_signature(q) for q in (a, b, c)}
        assert len(signatures) == 3

    def test_form_is_printable_and_prefixed(self):
        query = parse("MATCH (n:User) RETURN count(*) AS c")
        assert canonical_form(query)
        assert canonical_signature(query).startswith("cq1:")


# ----------------------------------------------------------------------
# facade, report plumbing
# ----------------------------------------------------------------------
class TestAnalyzerFacade:
    def test_parse_failure_is_error_verdict(self):
        report = analyze_query("MATCH (n:User RETURN n")
        assert report.parse_failed
        assert report.verdict is Verdict.ERROR
        assert report.signature is None
        analyzer = StaticAnalyzer()
        assert not analyzer.triage("MATCH (n:User RETURN n").should_evaluate

    def test_unsat_triage_blocks_evaluation(self):
        triage = StaticAnalyzer().triage(
            "MATCH (n:User) WHERE n.x > 5 AND n.x < 3 "
            "RETURN count(*) AS c"
        )
        assert triage.verdict is Verdict.UNSAT
        assert not triage.should_evaluate
        assert "can never hold" in triage.reason

    def test_warnings_do_not_block_evaluation(self):
        triage = StaticAnalyzer().triage(
            "MATCH (a:User), (b:Tweet) RETURN a.id AS x, b.id AS y"
        )
        assert triage.verdict is Verdict.WARN
        assert triage.should_evaluate

    def test_memoization_returns_same_report(self):
        analyzer = StaticAnalyzer()
        text = "MATCH (n:User) RETURN count(*) AS c"
        assert analyzer.analyze(text) is analyzer.analyze(text)

    def test_report_round_trips_through_dict(self):
        report = analyze_query(
            "MATCH (a:User) WHERE b.id > 0 AND a.id > 5 AND a.id < 3 "
            "RETURN a.id AS i"
        )
        rebuilt = AnalysisReport.from_dict(
            report.query_text, report.to_dict()
        )
        assert rebuilt.verdict is report.verdict
        assert rebuilt.signature == report.signature
        assert rebuilt.codes() == report.codes()

    def test_worst_orders_by_severity(self):
        assert worst([]) is Verdict.OK
        assert worst([Verdict.WARN, Verdict.UNSAT]) is Verdict.UNSAT
        assert worst([Verdict.TRIVIAL, Verdict.WARN]) is Verdict.TRIVIAL


# ----------------------------------------------------------------------
# semantic dedup (satellite 2)
# ----------------------------------------------------------------------
class TestSemanticDedup:
    def make_rules(self):
        first = ConsistencyRule(
            kind=RuleKind.VALUE_DOMAIN, text="stage one way",
            label="Match", properties=("stage",),
            allowed_values=("Group", "Final"),
        )
        second = ConsistencyRule(
            kind=RuleKind.VALUE_DOMAIN, text="stage other way",
            label="Match", properties=("stage",),
            allowed_values=("Final", "Group"),
        )
        return first, second

    def test_field_signature_alone_keeps_both(self):
        first, second = self.make_rules()
        assert first.signature() != second.signature()
        assert len(deduplicate([first, second])) == 2

    def test_schema_collapses_semantic_duplicates(self, sports_graph):
        schema = infer_schema(sports_graph)
        first, second = self.make_rules()
        kept = deduplicate([first, second], schema=schema)
        assert kept == [first]       # first occurrence wins

    def test_distinct_rules_survive_with_schema(self, sports_graph):
        schema = infer_schema(sports_graph)
        first, _ = self.make_rules()
        other = ConsistencyRule(
            kind=RuleKind.PROPERTY_EXISTS, text="matches have a date",
            label="Match", properties=("date",),
        )
        assert len(deduplicate([first, other], schema=schema)) == 2


# ----------------------------------------------------------------------
# end-to-end: injected UNSAT rule is triaged out (acceptance criterion)
# ----------------------------------------------------------------------
UNSAT_SATISFY = (
    "MATCH (u:User) WHERE u.id > 5 AND u.id < 3 RETURN count(*) AS support"
)


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_dataset() -> Dataset:
    graph = PropertyGraph("mini")
    for index in range(40):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
    for index in range(80):
        graph.add_node(f"t{index}", "Tweet", {
            "id": index,
            "text": f"tweet number {index}",
            "created_at": f"2021-02-{(index % 28) + 1:02d}T08:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index % 40}", f"t{index}")
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


class TestPipelineTriage:
    def run_with_injection(self, monkeypatch):
        """Mine once with the first rule's satisfy query forced UNSAT.

        Returns ``(run, collector, evaluated_bundles)``.
        """
        import repro.mining.pipeline as pipeline_module

        collector = obs.install()
        context = PipelineContext.build(build_dataset())
        pipeline = SlidingWindowPipeline(
            context, window_size=1500, overlap=150
        )

        original_correct = pipeline.corrector.correct
        injected = {"done": False}

        def inject(rule, generated_query):
            outcome = original_correct(rule, generated_query)
            if not injected["done"] and outcome.metric_queries is not None:
                injected["done"] = True
                outcome = dataclasses.replace(
                    outcome,
                    metric_queries=dataclasses.replace(
                        outcome.metric_queries, satisfy=UNSAT_SATISFY
                    ),
                )
            return outcome

        evaluated: list[MetricQueries] = []
        original_evaluate = pipeline_module.evaluate_rule

        def spy(graph, queries):
            evaluated.append(queries)
            return original_evaluate(graph, queries)

        monkeypatch.setattr(pipeline.corrector, "correct", inject)
        monkeypatch.setattr(pipeline_module, "evaluate_rule", spy)
        run = pipeline.mine("llama3", "zero_shot")
        assert injected["done"], "no translatable rule to inject into"
        return run, collector, evaluated

    def test_injected_unsat_rule_is_triaged_out(self, monkeypatch):
        run, collector, evaluated = self.run_with_injection(monkeypatch)

        # the doomed bundle never reached the executor...
        assert all(q.satisfy != UNSAT_SATISFY for q in evaluated)
        # ...and exactly the other rules did
        skipped = [r for r in run.results if r.triage_skipped]
        assert len(skipped) == 1
        assert run.triaged_out == 1
        evaluable = [
            r for r in run.results
            if r.outcome.metric_queries is not None and not r.triage_skipped
        ]
        assert len(evaluated) == len(evaluable)

        # the skipped rule scores zero across the board
        victim = skipped[0]
        assert victim.metrics.support == 0
        assert victim.metrics.relevant == 0
        assert victim.metrics.body == 0
        assert victim.analysis is not None

        # verdict census is reflected on the run itself
        census = run.triage_census()
        assert sum(census.values()) == len(run.results)

        # counters are visible through obs, including the summary table
        metrics = collector.metrics
        assert metrics.counter("analysis.triaged_out").total() == 1
        assert sum(
            metrics.counter(f"analysis.verdict.{v.value}").total()
            for v in Verdict
        ) == len(run.results)
        summary = obs.summary_table(collector)
        assert "analysis.triaged_out" in summary
        assert "analysis.verdict.ok" in summary

    def test_triage_persists_through_round_trip(self, monkeypatch):
        run, _collector, _evaluated = self.run_with_injection(monkeypatch)
        rebuilt = run_from_dict(run_to_dict(run))
        assert rebuilt.triaged_out == 1
        assert rebuilt.triage_census() == run.triage_census()
        victim = next(r for r in rebuilt.results if r.triage_skipped)
        assert victim.analysis is not None
        assert victim.analysis.signature

    def test_disabling_analyzer_disables_triage(self, monkeypatch):
        import repro.mining.pipeline as pipeline_module

        context = PipelineContext.build(build_dataset())
        pipeline = SlidingWindowPipeline(
            context, window_size=1500, overlap=150
        )
        pipeline.analyzer = None
        run = pipeline.mine("llama3", "zero_shot")
        assert run.triaged_out == 0
        assert all(r.analysis is None for r in run.results)
