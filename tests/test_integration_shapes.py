"""Integration tests: the paper's headline *shapes* must hold.

These run the actual experiment cells (on the two smaller datasets, to
keep the suite fast) and assert the qualitative findings of §4:

* sliding-window mining costs grow with graph size; RAG is near-constant
  and orders of magnitude faster;
* few-shot prompting yields fewer rules than zero-shot and is faster;
* the Cypher correctness ratio stays high (the paper reports >= 70% as
  the typical floor) and all three §4.4 error categories exist somewhere
  in the grid;
* rule sets contain both simple schema rules and at least some complex
  (pattern/temporal/scoped-key) rules, with Mixtral skewing complex.
"""

import pytest

from repro.mining.runner import ExperimentRunner
from repro.rules.model import SIMPLE_KINDS

DATASETS = ("wwc2019", "cybersecurity")


@pytest.fixture(scope="module")
def runner():
    runner = ExperimentRunner(base_seed=0)
    for dataset in DATASETS:
        runner.run_dataset(dataset)
    return runner


def cells(runner, **filters):
    selected = []
    for dataset in DATASETS:
        for run in runner.run_dataset(dataset):
            if all(getattr(run, key) == value
                   for key, value in filters.items()):
                selected.append(run)
    return selected


class TestTimingShapes:
    def test_rag_much_faster_than_swa(self, runner):
        for dataset in DATASETS:
            for model in ("llama3", "mixtral"):
                swa = runner.run(dataset, model, "sliding_window",
                                 "zero_shot")
                rag = runner.run(dataset, model, "rag", "zero_shot")
                assert swa.mining_seconds > 20 * rag.mining_seconds

    def test_swa_time_grows_with_graph_encoding(self, runner):
        small = runner.run("cybersecurity", "llama3", "sliding_window",
                           "zero_shot")
        big = runner.run("wwc2019", "llama3", "sliding_window",
                         "zero_shot")
        assert big.window_count > small.window_count
        assert big.mining_seconds > small.mining_seconds

    def test_few_shot_swa_faster(self, runner):
        for dataset in DATASETS:
            zero = runner.run(dataset, "llama3", "sliding_window",
                              "zero_shot")
            few = runner.run(dataset, "llama3", "sliding_window",
                             "few_shot")
            assert few.mining_seconds < zero.mining_seconds

    def test_rag_single_digit_seconds(self, runner):
        for run in cells(runner, method="rag"):
            assert run.mining_seconds < 10.0


class TestRuleCountShapes:
    def test_counts_in_paper_band(self, runner):
        for run in cells(runner, method="sliding_window"):
            assert 4 <= run.rule_count <= 12
        for run in cells(runner, method="rag"):
            assert 1 <= run.rule_count <= 9

    def test_few_shot_not_more_rules(self, runner):
        for dataset in DATASETS:
            for model in ("llama3", "mixtral"):
                zero = runner.run(dataset, model, "sliding_window",
                                  "zero_shot")
                few = runner.run(dataset, model, "sliding_window",
                                 "few_shot")
                assert few.rule_count <= zero.rule_count

    def test_rag_not_more_rules_than_swa(self, runner):
        for dataset in DATASETS:
            for model in ("llama3", "mixtral"):
                swa = runner.run(dataset, model, "sliding_window",
                                 "zero_shot")
                rag = runner.run(dataset, model, "rag", "zero_shot")
                assert rag.rule_count <= swa.rule_count


class TestQualityShapes:
    def test_metrics_within_bounds(self, runner):
        for run in cells(runner):
            metrics = run.aggregate_metrics()
            assert 0 <= metrics.avg_coverage <= 100
            assert 0 <= metrics.avg_confidence <= 100
            assert metrics.avg_support >= 0

    def test_swa_beats_rag_on_average_quality(self, runner):
        swa_scores = [
            run.aggregate_metrics().avg_confidence
            for run in cells(runner, method="sliding_window")
        ]
        rag_scores = [
            run.aggregate_metrics().avg_confidence
            for run in cells(runner, method="rag")
        ]
        assert sum(swa_scores) / len(swa_scores) >= \
            sum(rag_scores) / len(rag_scores)

    def test_mixtral_skews_complex(self, runner):
        def complex_fraction(model):
            runs = cells(runner, model=model, method="sliding_window")
            total = sum(run.rule_count for run in runs)
            complex_count = sum(
                1 for run in runs for rule in run.rules
                if rule.kind not in SIMPLE_KINDS
            )
            return complex_count / total if total else 0

        assert complex_fraction("mixtral") > complex_fraction("llama3")


class TestCorrectnessShapes:
    def test_overall_accuracy_above_paper_floor(self, runner):
        correct = sum(run.correct_queries for run in cells(runner))
        generated = sum(run.generated_queries for run in cells(runner))
        assert generated > 0
        assert correct / generated >= 0.7

    def test_all_error_categories_appear(self, runner):
        seen = set()
        for run in cells(runner):
            seen.update(run.error_census())
        # across two datasets at least hallucination + syntax appear;
        # direction flips are rare (paper: ~5 in the whole study)
        assert "syntax" in seen
        assert "hallucinated_property" in seen

    def test_direction_flips_rare(self, runner):
        flips = sum(
            run.error_census().get("direction", 0)
            for run in cells(runner)
        )
        assert flips <= 6


class TestFragmentationShapes:
    def test_broken_patterns_small(self, runner):
        for dataset in DATASETS:
            run = runner.run(dataset, "llama3", "sliding_window",
                             "zero_shot")
            assert 0 <= run.broken_patterns <= 20
            assert run.broken_patterns < run.window_count
