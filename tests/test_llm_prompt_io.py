"""Unit tests for prompt parsing (the simulated LLM's input channel)."""

from repro.llm.prompt_io import (
    extract_section,
    parse_property_block,
    parse_schema_summary,
    parse_visible_graph,
)
from repro.prompts import (
    cypher_prompt,
    examples_text,
    few_shot_prompt,
    zero_shot_prompt,
)


class TestSectionExtraction:
    def test_zero_shot_sections(self):
        prompt = zero_shot_prompt("GRAPH TEXT HERE")
        assert extract_section(prompt, "### Graph data:") == \
            "GRAPH TEXT HERE"
        assert "consistency rules" in extract_section(prompt, "### Task:")
        assert extract_section(
            prompt, "### Examples of consistency rules:"
        ) is None

    def test_few_shot_sections(self):
        prompt = few_shot_prompt("G", examples_text())
        examples = extract_section(
            prompt, "### Examples of consistency rules:"
        )
        assert "Book" in examples
        assert extract_section(prompt, "### Graph data:") == "G"

    def test_cypher_prompt_sections(self):
        prompt = cypher_prompt("THE RULE.", "THE SCHEMA")
        assert extract_section(prompt, "### Rule:") == "THE RULE."
        assert extract_section(
            prompt, "### Property graph information:"
        ) == "THE SCHEMA"

    def test_missing_section(self):
        assert extract_section("no sections here", "### Rule:") is None


class TestPropertyBlock:
    def test_simple_values(self):
        assert parse_property_block("a: 1, b: 'x', c: True, d: 2.5") == {
            "a": 1, "b": "x", "c": True, "d": 2.5,
        }

    def test_comma_inside_string(self):
        assert parse_property_block("t: 'a, b', n: 3") == {
            "t": "a, b", "n": 3,
        }

    def test_list_value(self):
        assert parse_property_block("xs: [1, 2, 3]") == {"xs": [1, 2, 3]}

    def test_empty_block(self):
        assert parse_property_block("") == {}
        assert parse_property_block("   ") == {}

    def test_malformed_entry_skipped(self):
        assert parse_property_block("novalue, a: 1") == {"a": 1}


class TestVisibleGraphParsing:
    def test_clipped_lines_are_dropped_and_counted(self):
        text = (
            "label User has properties (id: 1).\n"          # clipped head
            "Node u2 with label User has properties (id: 2).\n"
            "Node u2 (User) connects to node t9 (Tweet) via edge e7 "
            "with label POSTS and properties ().\n"
            "Node t9 with label Tweet has prop"              # clipped tail
        )
        view = parse_visible_graph(text)
        assert set(view.nodes) == {"u2"}
        assert len(view.edges) == 1
        assert view.unparsed_lines == 2

    def test_multi_label_node(self):
        view = parse_visible_graph(
            "Node x with label A:B has properties ()."
        )
        assert view.nodes["x"].labels == ("A", "B")

    def test_view_helpers(self):
        text = (
            "Node a with label X has properties (k: 1).\n"
            "Node b with label X has properties ().\n"
            "Node a (X) connects to node b (X) via edge e1 with label R "
            "and properties (w: 2)."
        )
        view = parse_visible_graph(text)
        assert view.node_count("X") == 2
        assert view.labels() == ["X"]
        assert view.edge_labels() == ["R"]
        assert len(view.edges_with_label("R")) == 1
        assert view.resolve_labels("a") == ("X",)
        assert view.resolve_labels("zz") == ()


class TestSchemaSummary:
    def test_round_trip_from_describe(self, social_schema):
        mini = parse_schema_summary(social_schema.describe())
        assert mini.node_properties["User"] == ["active", "id", "name"]
        assert mini.edge_properties["FOLLOWS"] == ["since"]
        assert mini.edge_connects("User", "POSTS", "Tweet")
        assert not mini.edge_connects("Tweet", "POSTS", "User")

    def test_none_properties(self):
        summary = (
            "Node labels and properties:\n"
            "  Bare: (none)\n"
            "Edge labels and properties:\n"
            "Connections (source)-[edge]->(target):\n"
        )
        mini = parse_schema_summary(summary)
        assert mini.node_properties["Bare"] == []
