"""Cross-thread trace-context propagation (repro.obs.propagate)."""

from __future__ import annotations

import threading

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


class TestCapture:
    def test_without_collector_is_empty(self):
        context = obs.capture()
        assert context is obs.EMPTY_CONTEXT
        assert not context.active
        # attaching an empty context is a harmless no-op
        with context.attach():
            with obs.span("anything"):
                pass

    def test_captures_current_span(self):
        collector = obs.install()
        with obs.span("outer") as outer:
            context = obs.capture()
            assert context.active
            assert context.span is outer
            assert context.collector is collector

    def test_stale_after_uninstall(self):
        obs.install()
        with obs.span("outer"):
            context = obs.capture()
        obs.uninstall()
        assert not context.active
        with context.attach():          # must not raise or record
            with obs.span("orphan"):
                pass

    def test_stale_after_reinstall(self):
        obs.install()
        with obs.span("outer"):
            context = obs.capture()
        obs.uninstall()
        fresh = obs.install()
        # the captured collector is no longer the installed one: the
        # context must not graft spans into a retired trace
        assert not context.active
        with context.attach():
            with obs.span("new-root"):
                pass
        assert [s.name for s in fresh.roots] == ["new-root"]


class TestAttach:
    def test_spans_cross_the_thread_hop(self):
        collector = obs.install()
        with obs.span("client") as client:
            context = obs.capture()

            def work():
                with context.attach():
                    with obs.span("remote"):
                        pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert len(collector.roots) == 1
        root = collector.roots[0]
        assert root is client
        assert [c.name for c in root.children] == ["remote"]
        assert root.children[0].parent_id == root.span_id
        # the hop is recorded: parent and child ran on different threads
        assert root.children[0].thread != root.thread

    def test_without_attach_threads_grow_orphan_roots(self):
        collector = obs.install()
        with obs.span("client"):
            thread = threading.Thread(
                target=lambda: obs.span("remote").__enter__()
            )
            thread.start()
            thread.join()
        assert {s.name for s in collector.roots} == {"client", "remote"}

    def test_release_unwinds_leaked_spans(self):
        collector = obs.install()
        with obs.span("client"):
            context = obs.capture()

        def work():
            attachment = context.attach()
            attachment.__enter__()
            obs.span("leaked").__enter__()      # never exited
            attachment.__exit__(None, None, None)
            # after release this thread starts fresh roots again
            with obs.span("after"):
                pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert "after" in {s.name for s in collector.roots}

    def test_concurrent_children_all_attach(self):
        collector = obs.install()
        with obs.span("client") as client:
            context = obs.capture()

            def work(index: int) -> None:
                with context.attach():
                    with obs.span("child", index=index):
                        pass

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(collector.roots) == 1
        indexes = {c.attributes["index"] for c in client.children}
        assert indexes == set(range(8))


class TestWrap:
    def test_wrap_carries_context(self):
        collector = obs.install()
        with obs.span("client"):
            def work():
                with obs.span("wrapped"):
                    pass

            thread = threading.Thread(target=obs.wrap(work))
            thread.start()
            thread.join()
        assert len(collector.roots) == 1
        assert [c.name for c in collector.roots[0].children] == ["wrapped"]

    def test_wrap_without_collector_calls_through(self):
        calls = []
        obs.wrap(lambda: calls.append(1))()
        assert calls == [1]
