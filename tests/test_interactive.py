"""Tests for interactive refinement and explanations."""

import pytest

from repro.graph import infer_schema
from repro.interactive import (
    RefinementSession,
    RuleStatus,
    explain_rule,
)
from repro.rules import ConsistencyRule, RuleKind, to_natural_language


def named(rule):
    return ConsistencyRule(
        kind=rule.kind, text=to_natural_language(rule), label=rule.label,
        properties=rule.properties, edge_label=rule.edge_label,
        src_label=rule.src_label, dst_label=rule.dst_label,
        allowed_values=rule.allowed_values,
        pattern_regex=rule.pattern_regex,
        scope_edge_label=rule.scope_edge_label,
        scope_label=rule.scope_label, time_property=rule.time_property,
    )


@pytest.fixture()
def session(sports_graph):
    schema = infer_schema(sports_graph)
    rules = [
        named(ConsistencyRule(RuleKind.PROPERTY_EXISTS, "", label="Match",
                              properties=("date", "stage"))),
        named(ConsistencyRule(RuleKind.UNIQUENESS, "", label="Person",
                              properties=("id",))),
        named(ConsistencyRule(RuleKind.TEMPORAL_UNIQUE, "",
                              edge_label="SCORED_GOAL",
                              src_label="Person", dst_label="Match",
                              time_property="minute")),
        named(ConsistencyRule(RuleKind.VALUE_DOMAIN, "", label="Match",
                              properties=("stage",),
                              allowed_values=("Group",))),  # too narrow
    ]
    return RefinementSession.from_rules(sports_graph, schema, rules)


class TestReviewFlow:
    def test_entries_scored_on_entry(self, session):
        assert all(entry.metrics is not None for entry in session.entries)
        assert session.pending() == [0, 1, 2, 3]

    def test_accept_and_export(self, session):
        session.accept(0, "essential attributes")
        session.accept(1)
        exported = session.export()
        assert len(exported) == 2
        rule, query, metrics = exported[0]
        assert "Match" in rule.text
        assert "count" in query
        assert metrics.support == 2

    def test_reject(self, session):
        session.reject(2, "minute collisions are legal")
        assert session.entries[2].status is RuleStatus.REJECTED
        assert session.entries[2].note == "minute collisions are legal"

    def test_double_review_rejected(self, session):
        session.accept(0)
        with pytest.raises(ValueError):
            session.reject(0)

    def test_summary_tally(self, session):
        session.accept(0)
        session.reject(1)
        tally = session.summary()
        assert tally == {"accepted": 1, "rejected": 1, "pending": 2}

    def test_audit_log(self, session):
        session.accept(0, "keep")
        session.reject(1, "drop")
        actions = [(record.action, record.entry_index)
                   for record in session.audit_log]
        assert actions == [("accept", 0), ("reject", 1)]


class TestEditing:
    def test_edit_replaces_with_rescored_rule(self, session):
        new_entry = session.edit(
            0, "Each Match node should have a date property."
        )
        assert session.entries[0].status is RuleStatus.EDITED
        assert session.entries[0].replaced_by == 4
        assert new_entry.rule.properties == ("date",)
        assert new_entry.metrics.support == 2

    def test_edit_rejects_unparseable(self, session):
        with pytest.raises(ValueError):
            session.edit(0, "make it nicer please")

    def test_tighten_domain(self, session):
        # entry 3's domain is only ('Group'), but the data has 'Final'
        before = session.entries[3].metrics
        assert before.confidence < 100.0
        new_entry = session.tighten_domain(3)
        assert set(new_entry.rule.allowed_values) == {"Group", "Final"}
        assert new_entry.metrics.confidence == 100.0

    def test_tighten_requires_domain_rule(self, session):
        with pytest.raises(ValueError):
            session.tighten_domain(0)


class TestViolations:
    def test_violations_surface_offenders(self, session, sports_graph):
        sports_graph.remove_node_property("m1", "stage")
        rows = session.violations(0)
        assert rows and rows[0]["id"] == 1

    def test_clean_rule_no_violations(self, session):
        assert session.violations(1) == []


class TestExplanations:
    def test_explains_every_translatable_kind(self, session, sports_graph):
        schema = infer_schema(sports_graph)
        for entry in session.entries:
            explanation = explain_rule(sports_graph, schema, entry.rule)
            assert explanation.rationale
            assert "support" in explanation.evidence
            assert explanation.render().startswith("RULE")

    def test_explanation_counts_are_grounded(self, sports_graph):
        schema = infer_schema(sports_graph)
        rule = named(ConsistencyRule(
            RuleKind.TEMPORAL_UNIQUE, "", edge_label="SCORED_GOAL",
            src_label="Person", dst_label="Match",
            time_property="minute",
        ))
        explanation = explain_rule(sports_graph, schema, rule)
        # 3 goals, one colliding pair -> 1 unique, 2 collide
        assert "1 of 3" in explanation.rationale
        assert explanation.counter_examples

    def test_untranslatable_rule_graceful(self, sports_graph):
        schema = infer_schema(sports_graph)
        broken = ConsistencyRule(RuleKind.PROPERTY_EXISTS, "no fields")
        explanation = explain_rule(sports_graph, schema, broken)
        assert "underspecified" in explanation.rationale
