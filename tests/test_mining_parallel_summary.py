"""Tests for the future-work pipelines: parallel SWA and summary mining."""

import pytest

from repro.mining import (
    ParallelSlidingWindowPipeline,
    PipelineContext,
    SlidingWindowPipeline,
    SummaryPipeline,
    build_summary_statements,
)


@pytest.fixture(scope="module")
def context(cyber_dataset):
    return PipelineContext.build(cyber_dataset)


class TestParallelPipeline:
    def test_worker_validation(self, context):
        with pytest.raises(ValueError):
            ParallelSlidingWindowPipeline(context, workers=0)

    def test_same_rules_as_sequential(self, context):
        sequential = SlidingWindowPipeline(context).mine(
            "llama3", "zero_shot"
        )
        parallel = ParallelSlidingWindowPipeline(context, workers=4).mine(
            "llama3", "zero_shot"
        )
        assert [r.text for r in parallel.rules] == \
            [r.text for r in sequential.rules]

    def test_makespan_near_linear_speedup(self, context):
        sequential = SlidingWindowPipeline(context).mine(
            "llama3", "zero_shot"
        )
        pipeline = ParallelSlidingWindowPipeline(context, workers=4)
        parallel = pipeline.mine("llama3", "zero_shot")
        speedup = sequential.mining_seconds / parallel.mining_seconds
        assert 3.0 < speedup <= 4.001
        assert pipeline.speedup_over_sequential(parallel) == \
            pytest.approx(speedup, rel=0.05)

    def test_one_worker_equals_sequential_time(self, context):
        sequential = SlidingWindowPipeline(context).mine(
            "mixtral", "zero_shot"
        )
        parallel = ParallelSlidingWindowPipeline(context, workers=1).mine(
            "mixtral", "zero_shot"
        )
        assert parallel.mining_seconds == pytest.approx(
            sequential.mining_seconds
        )

    def test_windows_distributed_round_robin(self, context):
        pipeline = ParallelSlidingWindowPipeline(context, workers=3)
        pipeline.mine("llama3", "zero_shot")
        counts = [report.windows for report in pipeline.worker_reports]
        assert sum(counts) == pipeline.window_set.window_count
        assert max(counts) - min(counts) <= 1

    def test_more_workers_never_slower(self, context):
        two = ParallelSlidingWindowPipeline(context, workers=2).mine(
            "llama3", "zero_shot"
        )
        eight = ParallelSlidingWindowPipeline(context, workers=8).mine(
            "llama3", "zero_shot"
        )
        assert eight.mining_seconds <= two.mining_seconds


class TestSummaryPipeline:
    def test_summary_covers_every_label(self, context):
        statements = build_summary_statements(context)
        text = "\n".join(s.text for s in statements)
        for label in context.graph.node_labels():
            assert f"label {label} " in text or f"({label})" in text
        for edge_label in context.graph.edge_labels():
            assert f"label {edge_label} " in text

    def test_summary_much_smaller_than_graph(self, context):
        from repro.encoding import count_tokens

        statements = build_summary_statements(context)
        summary_tokens = sum(count_tokens(s.text) for s in statements)
        full_tokens = sum(
            count_tokens(s.text) for s in context.statements
        )
        assert summary_tokens < full_tokens / 4

    def test_mine_single_call_speed(self, context):
        run = SummaryPipeline(context).mine("llama3", "zero_shot")
        assert run.method == "summary"
        assert run.rule_count >= 3
        assert run.mining_seconds < 60  # one call, RAG-like cost

    def test_summary_quality_between_rag_and_swa(self, context):
        from repro.mining import RAGPipeline

        summary = SummaryPipeline(context).mine("llama3", "zero_shot")
        swa = SlidingWindowPipeline(context).mine("llama3", "zero_shot")
        rag = RAGPipeline(context).mine("llama3", "zero_shot")
        # stratified coverage: at least as many rules as RAG
        assert summary.rule_count >= rag.rule_count - 1
        assert summary.rule_count <= swa.rule_count + 2

    def test_deterministic(self, context):
        first = SummaryPipeline(context).mine("mixtral", "few_shot")
        second = SummaryPipeline(context).mine("mixtral", "few_shot")
        assert [r.text for r in first.rules] == \
            [r.text for r in second.rules]
