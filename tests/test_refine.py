"""Tests for the bounded refine loop (repro.refine) and its wiring:
mechanical-fix recovery, feedback-driven regeneration, exhaustion, obs
accounting, and the end-to-end recovered-yield report."""

from __future__ import annotations

import dataclasses

import pytest

from repro import obs
from repro.correction.corrector import QueryCorrector
from repro.experiments.refine_report import stressed_profile, yield_rows
from repro.graph import infer_schema
from repro.llm.base import SimulatedClock
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedLLM
from repro.prompts.templates import cypher_prompt
from repro.refine import RefineLoop
from repro.rules.nl import from_natural_language


@pytest.fixture()
def cyber_schema(cyber_dataset):
    return infer_schema(cyber_dataset.graph)


@pytest.fixture()
def corrector(cyber_schema):
    return QueryCorrector(cyber_schema)


def make_llm(seed: int = 7) -> SimulatedLLM:
    return SimulatedLLM(
        profile=get_profile("mixtral"), seed=seed, clock=SimulatedClock(),
    )


def correct_outcome(corrector, llm, rule, summary):
    completion = llm.complete(cypher_prompt(rule.text, summary))
    return corrector.correct(rule, completion.text)


class TestRefineLoop:
    def test_healthy_outcome_passes_through(
        self, corrector, cyber_schema, cyber_dataset
    ):
        summary = cyber_schema.describe()
        llm = make_llm()
        rule = from_natural_language(
            "Each Computer node should have a operatingsystem property."
        )
        outcome = correct_outcome(corrector, llm, rule, summary)
        loop = RefineLoop(
            corrector, summary, llm, graph=cyber_dataset.graph, budget=2
        )
        result = loop.refine(rule, outcome)
        assert result.recovered
        assert result.attempts == []
        assert result.llm_calls == 0

    def test_unsat_query_recovered_by_mechanical_fix(
        self, corrector, cyber_schema, cyber_dataset
    ):
        summary = cyber_schema.describe()
        llm = make_llm()
        rule = from_natural_language(
            "Each Computer node should have a operatingsystem property."
        )
        outcome = correct_outcome(corrector, llm, rule, summary)
        broken = dataclasses.replace(
            outcome,
            final_query=(
                "MATCH (n:Computer) WHERE n.operatingsystem IS NOT NULL "
                "AND n.objectid < null RETURN count(*) AS satisfy"
            ),
        )
        loop = RefineLoop(
            corrector, summary, llm, graph=cyber_dataset.graph, budget=2
        )
        result = loop.refine(rule, broken)
        assert result.recovered
        assert result.llm_calls == 0          # mechanical repair is free
        assert result.attempts[-1].strategy == "fix"
        assert result.fix is not None
        assert "< null" not in result.outcome.final_query.lower()
        assert result.rule is rule            # the rule text was fine

    def test_hallucinated_rule_recovered_by_regeneration(
        self, corrector, cyber_schema, cyber_dataset
    ):
        summary = cyber_schema.describe()
        llm = make_llm()
        rule = from_natural_language(
            "Each Computer node should have a score property."
        )
        outcome = correct_outcome(corrector, llm, rule, summary)
        loop = RefineLoop(
            corrector, summary, llm, graph=cyber_dataset.graph, budget=2
        )
        result = loop.refine(rule, outcome)
        assert result.recovered
        assert result.llm_calls >= 1
        assert result.attempts[-1].strategy == "regenerate"
        assert "score" not in result.rule.text
        assert result.metrics is not None
        assert result.metrics.support > 0

    def test_exhaustion_returns_the_original_pair(
        self, corrector, cyber_schema, cyber_dataset
    ):
        summary = cyber_schema.describe()
        llm = make_llm()
        rule = from_natural_language(
            "Each Computer node should have a score property."
        )
        outcome = correct_outcome(corrector, llm, rule, summary)
        # budget 0 forbids regeneration, and no mechanical fix can
        # conjure a property the graph does not have
        loop = RefineLoop(
            corrector, summary, llm, graph=cyber_dataset.graph, budget=0
        )
        result = loop.refine(rule, outcome)
        assert not result.recovered
        assert result.rule is rule
        assert result.outcome is outcome
        assert result.llm_calls == 0

    def test_obs_counters_emitted(
        self, corrector, cyber_schema, cyber_dataset
    ):
        summary = cyber_schema.describe()
        llm = make_llm()
        rule = from_natural_language(
            "Each Computer node should have a operatingsystem property."
        )
        outcome = correct_outcome(corrector, llm, rule, summary)
        broken = dataclasses.replace(
            outcome,
            final_query=(
                "MATCH (n:Computer) WHERE n.objectid < null "
                "RETURN count(*) AS satisfy"
            ),
        )
        collector = obs.install()
        try:
            loop = RefineLoop(
                corrector, summary, llm,
                graph=cyber_dataset.graph, budget=2,
            )
            result = loop.refine(rule, broken)
            assert result.recovered
            registry = collector.metrics
            assert registry.counter("refine.attempts").total() == 1
            assert registry.counter("refine.fix_applied").total() == 1
            assert registry.counter("refine.recovered").value(
                strategy="fix"
            ) == 1
            assert registry.counter("analysis.fix.accepted").total() >= 1
        finally:
            obs.uninstall()


class TestYieldReport:
    def test_stressed_profile_only_changes_fault_rates(self):
        base = get_profile("mixtral")
        stressed = stressed_profile("mixtral")
        assert stressed.unsat_fault_rate > 0
        assert stressed.type_fault_rate > 0
        assert stressed.name == base.name
        assert stressed.swa_rule_cap == base.swa_rule_cap

    def test_budget_two_recovers_at_least_thirty_percent(self):
        rows, runs = yield_rows(
            "cybersecurity", "mixtral", "zero_shot", budgets=(0, 2),
        )
        control, best = rows
        assert control["budget"] == 0
        assert control["zero_scored"] >= 1
        assert control["recovered"] == 0
        # the acceptance floor: >=30% of zero-scored rules recovered
        # within a 2-retry budget
        assert best["zero_scored"] == control["zero_scored"]
        assert best["yield"] >= 0.30
        assert best["recovered"] == (
            best["fix_repaired"] + best["regenerated"]
        )

        # refinement never perturbs rules that were already healthy
        control_run, refined_run = runs
        healthy = [
            (a.rule.signature(), b.rule.signature())
            for a, b in zip(control_run.results, refined_run.results)
            if b.refinement is None
        ]
        assert healthy
        assert all(sig_a == sig_b for sig_a, sig_b in healthy)
