"""Unit tests for the rule ↔ natural-language round trip."""

import pytest

from repro.rules import (
    ConsistencyRule,
    RuleKind,
    from_natural_language,
    parse_rule_list,
    to_natural_language,
)

ALL_KIND_SAMPLES = [
    ConsistencyRule(RuleKind.PROPERTY_EXISTS, "", label="Match",
                    properties=("date", "stage")),
    ConsistencyRule(RuleKind.PROPERTY_EXISTS, "", label="User",
                    properties=("id",)),
    ConsistencyRule(RuleKind.EDGE_PROP_EXISTS, "",
                    edge_label="SCORED_GOAL", properties=("minute",)),
    ConsistencyRule(RuleKind.UNIQUENESS, "", label="Tweet",
                    properties=("id",)),
    ConsistencyRule(RuleKind.PRIMARY_KEY, "", label="Match",
                    properties=("id",), scope_label="Tournament",
                    scope_edge_label="IN_TOURNAMENT"),
    ConsistencyRule(RuleKind.VALUE_DOMAIN, "", label="User",
                    properties=("owned",), allowed_values=(True, False)),
    ConsistencyRule(RuleKind.VALUE_DOMAIN, "", label="Match",
                    properties=("stage",),
                    allowed_values=("Group", "Final")),
    ConsistencyRule(RuleKind.VALUE_FORMAT, "", label="Domain",
                    properties=("name",),
                    pattern_regex=r"([a-z0-9-]+\.)+[a-z]{2,}"),
    ConsistencyRule(RuleKind.ENDPOINT, "", edge_label="POSTS",
                    src_label="User", dst_label="Tweet"),
    ConsistencyRule(RuleKind.MANDATORY_EDGE, "", label="Tweet",
                    edge_label="POSTS", src_label="User",
                    dst_label="Tweet"),
    ConsistencyRule(RuleKind.MANDATORY_EDGE, "", label="Person",
                    edge_label="REPRESENTS", src_label="Person",
                    dst_label="Team"),
    ConsistencyRule(RuleKind.NO_SELF_LOOP, "", label="User",
                    edge_label="FOLLOWS"),
    ConsistencyRule(RuleKind.TEMPORAL_ORDER, "", edge_label="RETWEETS",
                    src_label="Tweet", dst_label="Tweet",
                    time_property="created_at"),
    ConsistencyRule(RuleKind.TEMPORAL_UNIQUE, "",
                    edge_label="SCORED_GOAL", src_label="Person",
                    dst_label="Match", time_property="minute"),
    ConsistencyRule(RuleKind.PATTERN, "", label="Person",
                    edge_label="IN_SQUAD", dst_label="Squad",
                    scope_label="Tournament", scope_edge_label="FOR"),
]


@pytest.mark.parametrize(
    "rule", ALL_KIND_SAMPLES, ids=lambda r: r.kind.value
)
def test_round_trip_preserves_signature(rule):
    sentence = to_natural_language(rule)
    parsed = from_natural_language(sentence)
    assert parsed is not None, sentence
    expected = ConsistencyRule(
        kind=rule.kind, text=sentence, label=rule.label,
        properties=rule.properties, edge_label=rule.edge_label,
        src_label=rule.src_label, dst_label=rule.dst_label,
        allowed_values=rule.allowed_values,
        pattern_regex=rule.pattern_regex,
        scope_edge_label=rule.scope_edge_label,
        scope_label=rule.scope_label, time_property=rule.time_property,
    )
    assert parsed.signature() == expected.signature()


def test_unparseable_sentence_returns_none():
    assert from_natural_language("This is not a rule at all.") is None
    assert from_natural_language("") is None


def test_parse_rule_list_with_numbering_and_noise():
    completion = """
1. Each Tweet node should have a unique id property.
2) Every POSTS relationship should connect a User node to a Tweet node.
- A User node cannot have a FOLLOWS relationship to itself.
* Each Match node should have a date and stage property.
Some chatty preamble the model added.
"""
    rules, unparsed = parse_rule_list(completion, provenance="test")
    assert len(rules) == 4
    assert unparsed == ["Some chatty preamble the model added."]
    assert all(rule.provenance == "test" for rule in rules)
    kinds = [rule.kind for rule in rules]
    assert kinds == [
        RuleKind.UNIQUENESS, RuleKind.ENDPOINT,
        RuleKind.NO_SELF_LOOP, RuleKind.PROPERTY_EXISTS,
    ]


def test_value_domain_boolean_values_parsed_as_booleans():
    rule = from_natural_language(
        "The owned property of User nodes should only be True or False."
    )
    assert rule.allowed_values == (True, False)


def test_value_domain_string_values_keep_quotes():
    rule = from_natural_language(
        "The stage property of Match nodes should only be 'Group' "
        "or 'Final'."
    )
    assert rule.allowed_values == ("Group", "Final")


def test_mandatory_edge_direction_from_wording():
    incoming = from_natural_language(
        "Every Tweet node must have an incoming POSTS relationship "
        "from a User node."
    )
    assert (incoming.src_label, incoming.dst_label) == ("User", "Tweet")
    outgoing = from_natural_language(
        "Every Person node must have an outgoing REPRESENTS relationship "
        "to a Team node."
    )
    assert (outgoing.src_label, outgoing.dst_label) == ("Person", "Team")
