"""Unit tests for the indexed graph store."""

import pytest

from repro.graph import (
    DanglingEdgeError,
    DuplicateElementError,
    ElementNotFoundError,
    PropertyGraph,
)


@pytest.fixture()
def graph():
    g = PropertyGraph("t")
    g.add_node("a", "Person", {"name": "A"})
    g.add_node("b", "Person", {"name": "B"})
    g.add_node("c", "City", {"name": "C"})
    g.add_edge("e1", "KNOWS", "a", "b")
    g.add_edge("e2", "LIVES_IN", "a", "c")
    g.add_edge("e3", "LIVES_IN", "b", "c")
    return g


class TestMutation:
    def test_duplicate_node_rejected(self, graph):
        with pytest.raises(DuplicateElementError):
            graph.add_node("a", "Person")

    def test_duplicate_edge_rejected(self, graph):
        with pytest.raises(DuplicateElementError):
            graph.add_edge("e1", "KNOWS", "a", "b")

    def test_dangling_edge_rejected(self, graph):
        with pytest.raises(DanglingEdgeError):
            graph.add_edge("e9", "KNOWS", "a", "nope")

    def test_update_node_merges(self, graph):
        graph.update_node("a", {"age": 3})
        assert graph.node("a").properties == {"name": "A", "age": 3}

    def test_remove_node_property(self, graph):
        graph.remove_node_property("a", "name")
        assert graph.node("a").properties == {}

    def test_update_edge(self, graph):
        graph.update_edge("e1", {"since": 2020})
        assert graph.edge("e1").properties == {"since": 2020}

    def test_remove_edge_deindexes(self, graph):
        graph.remove_edge("e1")
        assert not graph.has_edge("e1")
        assert graph.edge_count("KNOWS") == 0
        assert list(graph.out_edges("a", "KNOWS")) == []

    def test_remove_node_cascades_edges(self, graph):
        graph.remove_node("c")
        assert not graph.has_node("c")
        assert graph.edge_count("LIVES_IN") == 0
        assert graph.edge_count() == 1  # only KNOWS remains

    def test_lookup_missing_raises(self, graph):
        with pytest.raises(ElementNotFoundError):
            graph.node("zzz")
        with pytest.raises(ElementNotFoundError):
            graph.edge("zzz")


class TestScans:
    def test_nodes_by_label_uses_index(self, graph):
        assert [n.id for n in graph.nodes("Person")] == ["a", "b"]
        assert [n.id for n in graph.nodes("City")] == ["c"]
        assert [n.id for n in graph.nodes("Nope")] == []

    def test_all_nodes_in_insertion_order(self, graph):
        assert [n.id for n in graph.nodes()] == ["a", "b", "c"]

    def test_edges_by_label(self, graph):
        assert [e.id for e in graph.edges("LIVES_IN")] == ["e2", "e3"]

    def test_adjacency(self, graph):
        assert [e.id for e in graph.out_edges("a")] == ["e1", "e2"]
        assert [e.id for e in graph.in_edges("c")] == ["e2", "e3"]
        assert [e.id for e in graph.out_edges("a", "KNOWS")] == ["e1"]
        assert [e.id for e in graph.incident_edges("b")] == ["e3", "e1"]

    def test_degree(self, graph):
        assert graph.degree("a") == 2
        assert graph.degree("c") == 2
        assert graph.degree("b") == 2

    def test_vocabulary(self, graph):
        assert graph.node_labels() == ["City", "Person"]
        assert graph.edge_labels() == ["KNOWS", "LIVES_IN"]

    def test_counts(self, graph):
        assert graph.node_count() == 3
        assert graph.node_count("Person") == 2
        assert graph.edge_count() == 3
        assert graph.edge_count("LIVES_IN") == 2
        assert len(graph) == 3

    def test_label_gone_after_removal(self, graph):
        graph.remove_node("c")
        assert graph.node_labels() == ["Person"]


class TestMultiLabel:
    def test_node_in_both_label_indexes(self):
        g = PropertyGraph()
        g.add_node("x", ["A", "B"])
        assert [n.id for n in g.nodes("A")] == ["x"]
        assert [n.id for n in g.nodes("B")] == ["x"]
        g.remove_node("x")
        assert g.node_labels() == []

    def test_parallel_edges_allowed(self):
        g = PropertyGraph()
        g.add_node("a", "X")
        g.add_node("b", "X")
        g.add_edge("e1", "R", "a", "b")
        g.add_edge("e2", "R", "a", "b")
        assert g.edge_count("R") == 2

    def test_self_loop_allowed(self):
        g = PropertyGraph()
        g.add_node("a", "X")
        g.add_edge("e1", "R", "a", "a")
        assert [e.id for e in g.out_edges("a")] == ["e1"]
        assert [e.id for e in g.in_edges("a")] == ["e1"]
        # a self-loop is ONE incident edge: degree counts distinct
        # edges, and incident_edges must not yield it twice
        assert g.degree("a") == 1
        assert [e.id for e in g.incident_edges("a")] == ["e1"]

    def test_self_loop_beside_plain_edges(self):
        g = PropertyGraph()
        g.add_node("a", "X")
        g.add_node("b", "X")
        g.add_edge("loop", "R", "a", "a")
        g.add_edge("ab", "R", "a", "b")
        g.add_edge("ba", "S", "b", "a")
        assert g.degree("a") == 3
        assert {e.id for e in g.incident_edges("a")} == {"loop", "ab", "ba"}
        assert [e.id for e in g.incident_edges("a", "R")] == ["loop", "ab"]
