"""Render → parse round-trip tests for the Cypher pretty-printer."""

import pytest

from repro.cypher import parse, render_query
from repro.cypher.render import render_expression, render_literal

ROUND_TRIP_QUERIES = [
    "MATCH (n) RETURN n",
    "MATCH (n:Person {age: 3}) RETURN n.name AS name",
    "MATCH (a:A)-[r:R]->(b:B) WHERE r.w > 2 RETURN count(*) AS c",
    "MATCH (a)<-[:R]-(b) RETURN a",
    "MATCH (a)-[:R|S]-(b) RETURN a, b",
    "MATCH (a)-[:R*1..3]->(b) RETURN b",
    "OPTIONAL MATCH (a:A) RETURN a",
    "MATCH (n) WHERE n.x IS NOT NULL AND n.y IN [1, 2] RETURN n",
    "MATCH (n) WHERE n.s STARTS WITH 'a' OR n.s =~ 'x+' RETURN n",
    "MATCH (n) WITH n.x AS x, count(*) AS c WHERE c > 1 RETURN x, c",
    "MATCH (n) RETURN DISTINCT n.x AS x ORDER BY x DESC SKIP 1 LIMIT 5",
    "UNWIND [1, 2] AS v RETURN v",
    "MATCH (u) WHERE NOT (u)-[:F]->(u) RETURN count(*) AS ok",
    "MATCH (n) RETURN CASE WHEN n.x > 1 THEN 'hi' ELSE 'lo' END AS b",
    "MATCH (n) RETURN collect(DISTINCT n.x) AS xs",
    "MATCH (a:X) RETURN a.v AS v UNION MATCH (b:Y) RETURN b.v AS v",
    "MATCH p = (a)-[:R]->(b) RETURN p",
    "MATCH (n) RETURN [x IN n.xs WHERE x > 0 | x * 2] AS ys",
    "MATCH (n) RETURN n.list[0] AS head, n.list[1..2] AS mid",
    "MATCH (n) WHERE n:Person:Admin RETURN n",
]


@pytest.mark.parametrize("query_text", ROUND_TRIP_QUERIES)
def test_render_parse_fixpoint(query_text):
    """render(parse(q)) must itself parse to the same AST."""
    ast1 = parse(query_text)
    rendered = render_query(ast1)
    ast2 = parse(rendered)
    assert ast1 == ast2, rendered


def test_render_literals():
    assert render_literal(None) == "NULL"
    assert render_literal(True) == "true"
    assert render_literal("it's") == "'it\\'s'"
    assert render_literal([1, "a"]) == "[1, 'a']"
    assert render_literal(2.5) == "2.5"


def test_render_expression_function_case():
    ast = parse("MATCH (n) RETURN toString(n.x)")
    text = render_expression(ast.clauses[-1].items[0].expression)
    assert text == "toString(n.x)"


def test_rendered_query_is_single_line():
    ast = parse("MATCH (n)\nWHERE n.x = 1\nRETURN n")
    assert "\n" not in render_query(ast)
