"""Unit tests for the gateway building blocks: token buckets, the
admission controller, the wire protocol, dataset snapshots, the
hardened cross-process cache and service drain — everything below the
subprocess fleet (which test_gateway_e2e covers)."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.datasets.snapshot import (
    SnapshotError,
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)
from repro.gateway import protocol
from repro.gateway.admission import (
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.graph import PropertyGraph
from repro.rules.model import ConsistencyRule, RuleKind
from repro.service import MiningService, RetryPolicy, ServiceDraining
from repro.service.cache import ResultCache
from repro.service.jobs import JobSpec, cache_key, graph_fingerprint


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_dataset(name: str = "tiny") -> Dataset:
    graph = PropertyGraph(name)
    for index in range(4):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    rule = ConsistencyRule(
        kind=RuleKind.UNIQUENESS,
        text="Each tweet node should have a unique id property",
        label="Tweet", properties=("id",), provenance="fixture",
    )
    return Dataset(graph=graph, true_rules=[rule], dirt=DirtReport())


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refusal_with_hint(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        ok, retry_after = bucket.try_acquire()
        assert ok is False
        assert retry_after == pytest.approx(0.5)   # 1 token / 2 per sec

    def test_refill_restores_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert bucket.try_acquire()[0] is False
        clock.advance(1.0)                         # +2 tokens
        assert bucket.try_acquire()[0] is True
        assert bucket.try_acquire()[0] is True
        assert bucket.try_acquire()[0] is False

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()[0] is True
        ok, retry_after = bucket.try_acquire()
        assert ok is False
        assert retry_after == float("inf")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


# ----------------------------------------------------------------------
# admission controller
# ----------------------------------------------------------------------
class TestAdmission:
    def policy(self, **kwargs) -> AdmissionPolicy:
        defaults = dict(
            rate_per_client=1.0, burst_per_client=2.0,
            max_inflight=4, max_queue_depth=3, retry_after_floor=1.0,
        )
        defaults.update(kwargs)
        return AdmissionPolicy(**defaults)

    def test_rate_limit_sheds_with_floored_hint(self):
        clock = FakeClock()
        controller = AdmissionController(self.policy(), clock=clock)
        for _ in range(2):
            decision = controller.admit("alice", 0, 0)
            assert decision.admitted is True
        decision = controller.admit("alice", 0, 0)
        assert decision.admitted is False
        assert decision.reason == "rate_limit"
        assert decision.retry_after >= 1.0         # floor applies
        assert controller.stats.shed["rate_limit"] == 1
        assert controller.stats.admitted == 2

    def test_clients_have_independent_buckets(self):
        clock = FakeClock()
        controller = AdmissionController(self.policy(), clock=clock)
        assert controller.admit("alice", 0, 0).admitted
        assert controller.admit("alice", 0, 0).admitted
        assert not controller.admit("alice", 0, 0).admitted
        assert controller.admit("bob", 0, 0).admitted   # unaffected

    def test_queue_full_wins_over_rate_limit(self):
        clock = FakeClock()
        controller = AdmissionController(self.policy(), clock=clock)
        decision = controller.admit("alice", 3, 0)       # at high water
        assert decision.reason == "queue_full"
        # the refused request burned no tokens
        assert controller.admit("alice", 0, 0).admitted

    def test_inflight_limit(self):
        controller = AdmissionController(self.policy(), clock=FakeClock())
        decision = controller.admit("alice", 0, 4)
        assert decision.reason == "inflight_limit"

    def test_shed_counters_reach_obs(self):
        collector = obs.install()
        controller = AdmissionController(self.policy(), clock=FakeClock())
        controller.admit("a", 3, 0)
        controller.admit("a", 0, 4)
        controller.admit("a", 0, 0)
        shed = collector.metrics.counter("gateway.admission.shed")
        assert shed.value(reason="queue_full") == 1
        assert shed.value(reason="inflight_limit") == 1
        admitted = collector.metrics.counter("gateway.admission.admitted")
        assert admitted.total() == 1

    def test_bucket_table_is_lru_bounded(self):
        clock = FakeClock()
        controller = AdmissionController(
            self.policy(max_clients=2, burst_per_client=1.0), clock=clock,
        )
        controller.admit("a", 0, 0)
        clock.advance(0.001)
        controller.admit("b", 0, 0)
        clock.advance(0.001)
        controller.admit("c", 0, 0)                # evicts "a"
        snapshot = controller.snapshot()
        assert snapshot["clients"] == 2
        # "a" got a fresh bucket, so its burst token is back
        clock.advance(0.001)
        assert controller.admit("a", 0, 0).admitted

    def test_snapshot_shape(self):
        controller = AdmissionController(self.policy(), clock=FakeClock())
        controller.admit("a", 0, 0)
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 1
        assert snapshot["shed_total"] == 0
        assert set(snapshot["shed"]) == {
            "rate_limit", "inflight_limit", "queue_full", "draining",
        }


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def valid_payload(self, **extra) -> dict:
        payload = {
            "dataset": "tiny", "model": "llama3",
            "method": "rag", "prompt_mode": "zero_shot",
        }
        payload.update(extra)
        return payload

    def test_parse_submit_applies_defaults(self):
        spec = protocol.parse_submit(
            self.valid_payload(),
            protocol.SpecDefaults(base_seed=7, rag_top_k=4),
        )
        assert spec == JobSpec(
            dataset="tiny", model="llama3", method="rag",
            prompt_mode="zero_shot", base_seed=7, rag_top_k=4,
        )

    def test_overrides_and_case_folding(self):
        spec = protocol.parse_submit(self.valid_payload(
            dataset="TINY", model="LLaMA3", window_size=256, overlap=0,
        ))
        assert spec.dataset == "tiny"
        assert spec.model == "llama3"
        assert spec.window_size == 256

    @pytest.mark.parametrize("field,value", [
        ("model", "gpt99"),
        ("method", "teleport"),
        ("prompt_mode", "mind_reading"),
        ("dataset", ""),
        ("dataset", 7),
    ])
    def test_bad_vocabulary_rejected(self, field, value):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit(self.valid_payload(**{field: value}))

    @pytest.mark.parametrize("field,value", [
        ("window_size", 1),            # below floor
        ("window_size", 10**9),        # above ceiling
        ("rag_top_k", 0),
        ("base_seed", -1),
        ("overlap", "lots"),
        ("base_seed", True),           # bools are not seeds
    ])
    def test_knob_bounds_enforced(self, field, value):
        with pytest.raises(protocol.ProtocolError):
            protocol.parse_submit(self.valid_payload(**{field: value}))

    def test_unknown_fields_rejected(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.parse_submit(self.valid_payload(sudo=True))
        assert "sudo" in str(excinfo.value)

    def test_client_and_priority_are_allowed_passthrough(self):
        spec = protocol.parse_submit(
            self.valid_payload(client="alice", priority=2)
        )
        assert spec.dataset == "tiny"

    def test_spec_round_trips_through_payload(self):
        spec = protocol.parse_submit(self.valid_payload(base_seed=3))
        again = protocol.spec_from_payload(protocol.spec_to_payload(spec))
        assert again == spec

    def test_line_round_trip_and_version_check(self):
        line = protocol.encode_line(protocol.shutdown_message())
        assert line.endswith("\n")
        message = protocol.decode_line(line)
        assert message["op"] == "shutdown"
        stale = json.dumps({"v": 999, "op": "shutdown"})
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(stale)
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line("not json")
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line("[1, 2]")


# ----------------------------------------------------------------------
# dataset snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_round_trip_preserves_fingerprint(self, tmp_path):
        dataset = tiny_dataset()
        path = tmp_path / "tiny.json"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        # the whole point: a worker loading the snapshot computes the
        # same content address as the gateway that wrote it
        assert graph_fingerprint(loaded.graph) == graph_fingerprint(
            dataset.graph
        )
        spec = JobSpec("tiny", "llama3", "rag", "zero_shot")
        assert cache_key(spec, graph_fingerprint(loaded.graph)) == cache_key(
            spec, graph_fingerprint(dataset.graph)
        )

    def test_round_trip_preserves_rules_and_dirt(self):
        dataset = tiny_dataset()
        again = dataset_from_dict(dataset_to_dict(dataset))
        assert len(again.true_rules) == 1
        rule = again.true_rules[0]
        assert rule.kind is RuleKind.UNIQUENESS
        assert rule.label == "Tweet"
        assert rule.properties == ("id",)
        assert rule.provenance == "fixture"
        assert rule.signature() == dataset.true_rules[0].signature()

    def test_corrupt_snapshot_raises_snapshot_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ nope")
        with pytest.raises(SnapshotError):
            load_dataset(path)
        path.write_text("[]")
        with pytest.raises(SnapshotError):
            load_dataset(path)
        with pytest.raises(SnapshotError):
            load_dataset(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# hardened result cache
# ----------------------------------------------------------------------
class TestCacheHardening:
    def mined_run(self):
        svc = MiningService(
            loader=lambda name: tiny_dataset(name), workers=1,
            retry_policy=RetryPolicy(max_retries=0, base_delay=0.0),
        )
        with svc:
            return svc.mine("tiny", "llama3", "sliding_window", "zero_shot")

    def test_concurrent_same_key_writers_leave_valid_entry(self, tmp_path):
        run = self.mined_run()
        cache = ResultCache(tmp_path)
        errors: list[BaseException] = []

        def store() -> None:
            try:
                for _ in range(10):
                    cache.put("ab" * 32, run)
            except BaseException as error:  # noqa - test must see it
                errors.append(error)

        threads = [threading.Thread(target=store) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        fetched = cache.get("ab" * 32)
        assert fetched is not None
        assert fetched.key() == run.key()
        # no temp files leaked next to the entry
        leftovers = [
            p.name for p in cache.path_for("ab" * 32).parent.iterdir()
            if p.suffix == ".tmp"
        ]
        assert leftovers == []

    @pytest.mark.parametrize("payload", [
        "",                                    # truncated to nothing
        '{"key": "wrong"',                     # cut mid-object
        '"just a string"',                     # not an object
        '{"key": "other", "run": {}}',         # key mismatch
        '{"key": "%s"}',                       # missing run payload
    ])
    def test_corrupt_entries_degrade_to_miss_and_evict(
        self, tmp_path, payload
    ):
        collector = obs.install()
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload % key if "%s" in payload else payload)
        assert cache.get(key) is None
        assert not path.exists()               # evicted, not left to rot
        assert cache.stats.evictions == 1
        assert cache.stats.misses == 1
        evictions = collector.metrics.counter("service.cache.evictions")
        assert evictions.total() == 1

    def test_keys_skip_internal_files(self, tmp_path):
        run = self.mined_run()
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, run)
        (tmp_path / ".snapshots").mkdir()
        (tmp_path / ".snapshots" / "tiny.json").write_text("{}")
        (cache.path_for(key).parent / ".hidden.json").write_text("{}")
        assert cache.keys() == [key]
        assert len(cache) == 1
        assert key in cache

    def test_lock_files_created_per_key(self, tmp_path):
        run = self.mined_run()
        cache = ResultCache(tmp_path, lock_files=True)
        key = "0a" * 32
        cache.put(key, run)
        if cache.lock_files:                   # POSIX platforms
            assert cache.lock_path_for(key).exists()


# ----------------------------------------------------------------------
# LRU bound on the result cache
# ----------------------------------------------------------------------
class TestCacheLRU:
    def mined_run(self):
        svc = MiningService(
            loader=lambda name: tiny_dataset(name), workers=1,
            retry_policy=RetryPolicy(max_retries=0, base_delay=0.0),
        )
        with svc:
            return svc.mine("tiny", "llama3", "sliding_window", "zero_shot")

    @staticmethod
    def keys(count: int) -> list[str]:
        return [f"{index:02x}" * 32 for index in range(1, count + 1)]

    def put_at(self, cache, key, run, mtime: float) -> None:
        """Store and pin the entry's mtime so recency is deterministic."""
        import os
        path = cache.put(key, run)
        os.utime(path, (mtime, mtime))

    def test_unbounded_cache_never_evicts(self, tmp_path):
        run = self.mined_run()
        cache = ResultCache(tmp_path)
        for key in self.keys(5):
            cache.put(key, run)
        assert len(cache) == 5
        assert cache.stats.evictions == 0

    def test_put_past_the_bound_evicts_the_oldest(self, tmp_path):
        collector = obs.install()
        run = self.mined_run()
        cache = ResultCache(tmp_path, max_entries=3)
        first, *rest = self.keys(4)
        self.put_at(cache, first, run, mtime=100.0)
        for offset, key in enumerate(rest):
            self.put_at(cache, key, run, mtime=200.0 + offset)
        assert len(cache) == 3
        assert first not in cache              # oldest fell off
        assert all(key in cache for key in rest)
        assert cache.stats.evictions == 1
        evictions = collector.metrics.counter("service.cache.evictions")
        assert evictions.total() == 1
        assert evictions.value(reason="lru") == 1

    def test_get_refreshes_recency(self, tmp_path):
        run = self.mined_run()
        cache = ResultCache(tmp_path, max_entries=2)
        old, newer, newest = self.keys(3)
        self.put_at(cache, old, run, mtime=100.0)
        self.put_at(cache, newer, run, mtime=200.0)
        assert cache.get(old) is not None      # hit bumps old's mtime
        cache.put(newest, run)
        assert old in cache                    # survived: recently used
        assert newer not in cache              # became the LRU victim

    def test_just_written_key_is_never_the_victim(self, tmp_path):
        run = self.mined_run()
        cache = ResultCache(tmp_path, max_entries=1)
        first, second = self.keys(2)
        self.put_at(cache, first, run, mtime=100.0)
        cache.put(second, run)
        assert second in cache
        assert first not in cache
        assert len(cache) == 1

    def test_eviction_keeps_served_entries_readable(self, tmp_path):
        run = self.mined_run()
        cache = ResultCache(tmp_path, max_entries=2)
        survivors = self.keys(6)
        for offset, key in enumerate(survivors):
            self.put_at(cache, key, run, mtime=100.0 + offset)
        kept = [key for key in survivors if key in cache]
        assert len(kept) == 2
        for key in kept:
            fetched = cache.get(key)
            assert fetched is not None
            assert fetched.key() == run.key()

    def test_max_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_entries=0)


# ----------------------------------------------------------------------
# graceful drain of the in-process service
# ----------------------------------------------------------------------
class TestServiceDrain:
    def test_drain_refuses_new_work_but_finishes_queued(self):
        svc = MiningService(
            loader=lambda name: tiny_dataset(name), workers=1,
            retry_policy=RetryPolicy(max_retries=0, base_delay=0.0),
        )
        svc.start()
        job_id = svc.submit("tiny", "llama3", "sliding_window", "zero_shot")
        assert svc.drain(deadline_seconds=60) is True
        assert svc.draining is True
        with pytest.raises(ServiceDraining):
            svc.submit("tiny", "llama3", "rag", "zero_shot")
        # the pre-drain job still completed
        assert svc.status(job_id)["state"] == "done"

    def test_shutdown_is_idempotent(self):
        svc = MiningService(
            loader=lambda name: tiny_dataset(name), workers=1,
        )
        svc.start()
        assert svc.shutdown(wait=True, timeout=30) is True
        assert svc.shutdown(wait=True, timeout=30) is True
