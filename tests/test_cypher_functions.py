"""Unit tests for the scalar and aggregate function registry."""

import math

import pytest

from repro.cypher import UnknownFunctionError
from repro.cypher.functions import aggregate, call_scalar, is_aggregate
from repro.graph import Edge, Node


class TestConversions:
    def test_to_string(self):
        assert call_scalar("toString", [3]) == "3"
        assert call_scalar("toString", [True]) == "true"
        assert call_scalar("toString", [2.0]) == "2.0"
        assert call_scalar("toString", [None]) is None

    def test_to_integer(self):
        assert call_scalar("toInteger", ["42"]) == 42
        assert call_scalar("toInteger", [3.9]) == 3
        assert call_scalar("toInteger", ["3.5"]) == 3
        assert call_scalar("toInteger", ["x"]) is None
        assert call_scalar("toInteger", [True]) is None

    def test_to_float(self):
        assert call_scalar("toFloat", ["2.5"]) == 2.5
        assert call_scalar("toFloat", [1]) == 1.0
        assert call_scalar("toFloat", ["x"]) is None

    def test_to_boolean(self):
        assert call_scalar("toBoolean", ["TRUE"]) is True
        assert call_scalar("toBoolean", ["false"]) is False
        assert call_scalar("toBoolean", ["meh"]) is None


class TestCollections:
    def test_size_and_length(self):
        assert call_scalar("size", [[1, 2]]) == 2
        assert call_scalar("size", ["abc"]) == 3
        assert call_scalar("length", [[1]]) == 1

    def test_head_last_tail_reverse(self):
        assert call_scalar("head", [[1, 2]]) == 1
        assert call_scalar("head", [[]]) is None
        assert call_scalar("last", [[1, 2]]) == 2
        assert call_scalar("tail", [[1, 2, 3]]) == [2, 3]
        assert call_scalar("reverse", [[1, 2]]) == [2, 1]
        assert call_scalar("reverse", ["ab"]) == "ba"

    def test_range_inclusive(self):
        assert call_scalar("range", [1, 3]) == [1, 2, 3]
        assert call_scalar("range", [3, 1, -1]) == [3, 2, 1]
        assert call_scalar("range", [0, 6, 2]) == [0, 2, 4, 6]

    def test_coalesce(self):
        assert call_scalar("coalesce", [None, None, 3]) == 3
        assert call_scalar("coalesce", [None]) is None


class TestStrings:
    def test_case_functions(self):
        assert call_scalar("toUpper", ["ab"]) == "AB"
        assert call_scalar("toLower", ["AB"]) == "ab"

    def test_trim_family(self):
        assert call_scalar("trim", ["  x  "]) == "x"
        assert call_scalar("ltrim", ["  x"]) == "x"
        assert call_scalar("rtrim", ["x  "]) == "x"

    def test_replace_split_substring(self):
        assert call_scalar("replace", ["aXa", "X", "b"]) == "aba"
        assert call_scalar("split", ["a,b", ","]) == ["a", "b"]
        assert call_scalar("substring", ["hello", 1, 3]) == "ell"
        assert call_scalar("substring", ["hello", 2]) == "llo"
        assert call_scalar("left", ["hello", 2]) == "he"
        assert call_scalar("right", ["hello", 2]) == "lo"


class TestMath:
    def test_abs_sign(self):
        assert call_scalar("abs", [-3]) == 3
        assert call_scalar("sign", [-2]) == -1
        assert call_scalar("sign", [0]) == 0

    def test_rounding(self):
        assert call_scalar("ceil", [1.2]) == 2.0
        assert call_scalar("floor", [1.8]) == 1.0
        assert call_scalar("round", [1.5]) == 2.0
        assert call_scalar("round", [2.347, 2]) == 2.35

    def test_sqrt_exp_log(self):
        assert call_scalar("sqrt", [9]) == 3.0
        assert math.isclose(call_scalar("log", [math.e]), 1.0)
        assert call_scalar("log10", [100]) == 2.0


class TestGraphFunctions:
    def test_labels_type_id_keys(self):
        node = Node.create("n1", ["B", "A"], {"x": 1})
        edge = Edge.create("e1", "R", "a", "b", {"y": 2})
        assert call_scalar("labels", [node]) == ["A", "B"]
        assert call_scalar("type", [edge]) == "R"
        assert call_scalar("id", [node]) == "n1"
        assert call_scalar("keys", [node]) == ["x"]
        assert call_scalar("properties", [edge]) == {"y": 2}


class TestAggregates:
    def test_is_aggregate(self):
        assert is_aggregate("count")
        assert is_aggregate("COLLECT")
        assert not is_aggregate("toString")

    def test_count_ignores_nulls(self):
        assert aggregate("count", [1, None, 2], distinct=False) == 2

    def test_count_distinct(self):
        assert aggregate("count", [1, 1, 2, None], distinct=True) == 2

    def test_collect(self):
        assert aggregate("collect", [1, None, 2], distinct=False) == [1, 2]
        assert aggregate("collect", [1, 1], distinct=True) == [1]

    def test_collect_distinct_handles_unhashable(self):
        assert aggregate(
            "collect", [[1], [1], [2]], distinct=True
        ) == [[1], [2]]

    def test_sum_avg(self):
        assert aggregate("sum", [1, 2, None], distinct=False) == 3
        assert aggregate("sum", [], distinct=False) == 0
        assert aggregate("avg", [2, 4], distinct=False) == 3
        assert aggregate("avg", [], distinct=False) is None

    def test_min_max(self):
        assert aggregate("min", [3, 1, None], distinct=False) == 1
        assert aggregate("max", [3, 1], distinct=False) == 3
        assert aggregate("min", [], distinct=False) is None

    def test_stdev(self):
        assert aggregate("stdev", [2, 4], distinct=False) == pytest.approx(
            math.sqrt(2)
        )
        assert aggregate("stdev", [5], distinct=False) == 0.0

    def test_unknown_function(self):
        with pytest.raises(UnknownFunctionError):
            call_scalar("frobnicate", [1])
