"""Tests for the Cypher write clauses (CREATE/MERGE/SET/REMOVE/DELETE)."""

import pytest

from repro.cypher import (
    CypherSemanticError,
    CypherSyntaxError,
    execute,
    parse,
    render_query,
)
from repro.graph import PropertyGraph


@pytest.fixture()
def graph():
    g = PropertyGraph()
    g.add_node("a", "User", {"id": 1, "name": "alice"})
    g.add_node("b", "User", {"id": 2, "name": "bob"})
    g.add_edge("e1", "FOLLOWS", "a", "b")
    return g


class TestCreate:
    def test_create_node(self, graph):
        result = execute(graph, "CREATE (n:User {id: 3, name: 'carol'})")
        assert result.stats == {"nodes_created": 1}
        assert graph.node_count("User") == 3

    def test_create_path(self, graph):
        result = execute(
            graph,
            "CREATE (x:Tag {name: 'db'})<-[:TAGGED]-(t:Tweet {id: 9})",
        )
        assert result.stats == {
            "nodes_created": 2, "relationships_created": 1,
        }
        assert graph.edge_count("TAGGED") == 1
        edge = next(graph.edges("TAGGED"))
        assert graph.node(edge.src).has_label("Tweet")

    def test_create_edge_between_matched_nodes(self, graph):
        execute(
            graph,
            "MATCH (a:User {id: 1}), (b:User {id: 2}) "
            "CREATE (a)-[:BLOCKS {since: 2024}]->(b)",
        )
        edge = next(graph.edges("BLOCKS"))
        assert (edge.src, edge.dst) == ("a", "b")
        assert edge.properties == {"since": 2024}

    def test_create_per_matched_row(self, graph):
        execute(graph, "MATCH (u:User) CREATE (u)-[:OWNS]->(:Wallet)")
        assert graph.node_count("Wallet") == 2
        assert graph.edge_count("OWNS") == 2

    def test_create_returns_bound_elements(self, graph):
        result = execute(
            graph, "CREATE (n:X {k: 5}) RETURN n.k AS k"
        )
        assert result.rows == [{"k": 5}]

    def test_undirected_create_rejected(self, graph):
        with pytest.raises(CypherSemanticError):
            execute(graph, "CREATE (:A)-[:R]-(:B)")

    def test_untyped_create_rejected(self, graph):
        with pytest.raises(CypherSemanticError):
            execute(graph, "CREATE (:A)-[]->(:B)")

    def test_write_query_without_return_yields_no_rows(self, graph):
        result = execute(graph, "CREATE (:A)")
        assert result.rows == []
        assert result.columns == []


class TestMerge:
    def test_merge_matches_existing(self, graph):
        result = execute(
            graph, "MERGE (u:User {id: 1}) RETURN u.name AS n"
        )
        assert result.rows == [{"n": "alice"}]
        assert graph.node_count("User") == 2

    def test_merge_creates_when_absent(self, graph):
        execute(graph, "MERGE (u:User {id: 99})")
        assert graph.node_count("User") == 3

    def test_merge_path(self, graph):
        # the FOLLOWS edge exists: nothing created
        execute(
            graph,
            "MATCH (a:User {id: 1}), (b:User {id: 2}) "
            "MERGE (a)-[:FOLLOWS]->(b)",
        )
        assert graph.edge_count("FOLLOWS") == 1
        # the reverse edge does not: created
        execute(
            graph,
            "MATCH (a:User {id: 1}), (b:User {id: 2}) "
            "MERGE (b)-[:FOLLOWS]->(a)",
        )
        assert graph.edge_count("FOLLOWS") == 2


class TestSet:
    def test_set_property(self, graph):
        execute(graph, "MATCH (u:User {id: 1}) SET u.age = 30")
        assert graph.node("a").properties["age"] == 30

    def test_set_null_removes(self, graph):
        execute(graph, "MATCH (u:User {id: 1}) SET u.name = NULL")
        assert "name" not in graph.node("a").properties

    def test_set_merge_map(self, graph):
        execute(
            graph,
            "MATCH (u:User {id: 1}) SET u += {city: 'Lyon', id: 10}",
        )
        properties = graph.node("a").properties
        assert properties["city"] == "Lyon"
        assert properties["id"] == 10
        assert properties["name"] == "alice"  # preserved

    def test_set_replace_map(self, graph):
        execute(graph, "MATCH (u:User {id: 1}) SET u = {only: 1}")
        assert graph.node("a").properties == {"only": 1}

    def test_set_edge_property(self, graph):
        execute(graph, "MATCH ()-[f:FOLLOWS]->() SET f.weight = 2")
        assert graph.edge("e1").properties == {"weight": 2}

    def test_set_sees_fresh_value_in_return(self, graph):
        result = execute(
            graph, "MATCH (u:User {id: 1}) SET u.x = 7 RETURN u.x AS x"
        )
        assert result.rows == [{"x": 7}]

    def test_set_on_null_is_noop(self, graph):
        result = execute(
            graph,
            "MATCH (u:User) OPTIONAL MATCH (u)-[:NOPE]->(v) "
            "SET v.x = 1 RETURN count(*) AS c",
        )
        assert result.scalar() == 2  # no crash


class TestRemoveDelete:
    def test_remove_property(self, graph):
        execute(graph, "MATCH (u:User) REMOVE u.name")
        assert all(
            "name" not in node.properties for node in graph.nodes("User")
        )

    def test_remove_edge_property(self, graph):
        graph.update_edge("e1", {"w": 1})
        execute(graph, "MATCH ()-[f:FOLLOWS]->() REMOVE f.w")
        assert graph.edge("e1").properties == {}

    def test_delete_edge(self, graph):
        result = execute(graph, "MATCH ()-[f:FOLLOWS]->() DELETE f")
        assert result.stats == {"relationships_deleted": 1}
        assert graph.edge_count() == 0

    def test_delete_connected_node_requires_detach(self, graph):
        with pytest.raises(CypherSemanticError):
            execute(graph, "MATCH (u:User {id: 1}) DELETE u")

    def test_detach_delete(self, graph):
        result = execute(
            graph, "MATCH (u:User {id: 1}) DETACH DELETE u"
        )
        assert result.stats["nodes_deleted"] == 1
        assert result.stats["relationships_deleted"] == 1
        assert not graph.has_node("a")

    def test_delete_same_element_twice_counted_once(self, graph):
        execute(
            graph,
            "MATCH (a:User)-[f:FOLLOWS]->(b:User) DELETE f, f",
        )
        assert graph.edge_count() == 0


class TestWriteParsingAndRendering:
    @pytest.mark.parametrize("query", [
        "CREATE (n:User {id: 3})",
        "MATCH (a), (b) CREATE (a)-[:R {w: 1}]->(b)",
        "MERGE (u:User {id: 1})",
        "MATCH (n) SET n.x = 1, n.y = 'a'",
        "MATCH (n) SET n += {a: 1}",
        "MATCH (n) REMOVE n.x, n.y",
        "MATCH (n)-[r:R]->() DELETE r",
        "MATCH (n) DETACH DELETE n",
        "CREATE (n:X) RETURN n",
    ])
    def test_write_round_trip(self, query):
        ast1 = parse(query)
        ast2 = parse(render_query(ast1))
        assert ast1 == ast2

    def test_read_query_still_requires_return(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n)")

    def test_bulk_quarantine_query_shape(self, graph):
        """The repair engine's UNWIND + SET shape works end-to-end."""
        graph.add_node("c", "User", {"id": 1, "name": "dup"})
        execute(
            graph,
            "MATCH (n:User) WHERE n.id IS NOT NULL "
            "WITH n.id AS value, collect(n) AS group "
            "WHERE size(group) > 1 "
            "UNWIND group AS m SET m.flagged = true",
        )
        flagged = [
            node.id for node in graph.nodes("User")
            if node.properties.get("flagged")
        ]
        assert sorted(flagged) == ["a", "c"]
