"""End-to-end tests for MiningService: dedup, disk-cache reuse across a
process-simulating reload, config-hash invalidation, transient-failure
retry, cancellation and backpressure."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.datasets.base import Dataset, DirtReport
from repro.graph import PropertyGraph
from repro.llm.faults import TransientFaultInjector
from repro.service import (
    JobFailedError,
    JobState,
    MiningService,
    QueueFull,
    RetryPolicy,
    UnknownJobError,
)

#: retry instantly — backoff schedules are unit-tested separately
FAST_RETRY = RetryPolicy(max_retries=3, base_delay=0.0)


@pytest.fixture(autouse=True)
def clean_collector():
    obs.uninstall()
    yield
    obs.uninstall()


def build_dataset(name: str) -> Dataset:
    graph = PropertyGraph(name)
    for index in range(8):
        graph.add_node(f"u{index}", "User", {
            "id": index, "screen_name": f"@user{index}",
        })
        graph.add_node(f"t{index}", "Tweet", {
            "id": 100 + index, "text": f"tweet {index}",
            "created_at": f"2021-03-{index + 1:02d}T09:00:00",
        })
        graph.add_edge(f"p{index}", "POSTS", f"u{index}", f"t{index}")
    return Dataset(graph=graph, true_rules=[], dirt=DirtReport())


@pytest.fixture()
def loader():
    cache: dict[str, Dataset] = {}

    def load(name: str) -> Dataset:
        if name not in cache:
            cache[name] = build_dataset(name)
        return cache[name]

    return load


def service(loader, **kwargs) -> MiningService:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("retry_policy", FAST_RETRY)
    kwargs.setdefault("sleep", lambda seconds: None)
    return MiningService(loader=loader, **kwargs)


class GateMiddleware:
    """Blocks every LLM completion until released — pins a worker so
    queued jobs can be observed and cancelled deterministically."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self, llm):
        outer = self

        class Gated:
            def complete(self, prompt):
                outer.entered.set()
                assert outer.release.wait(timeout=30)
                return llm.complete(prompt)

            def __getattr__(self, name):
                return getattr(llm, name)

        return Gated()


# ----------------------------------------------------------------------
# dedup + caching
# ----------------------------------------------------------------------
class TestSubmission:
    def test_duplicate_submit_is_one_job(self, loader, tmp_path):
        with service(loader, cache_dir=tmp_path) as svc:
            first = svc.submit("tiny", "llama3", "rag", "zero_shot")
            second = svc.submit("tiny", "llama3", "rag", "zero_shot")
            assert first == second
            run = svc.result(first, timeout=60)
            assert run.rule_count >= 0
        stats = svc.stats()
        assert stats["submitted"] == 1
        assert stats["attempts"] == 1             # exactly one mining run

    def test_unknown_method_and_prompt_rejected(self, loader):
        svc = service(loader)
        with pytest.raises(ValueError):
            svc.submit("tiny", "llama3", "nope", "zero_shot")
        with pytest.raises(ValueError):
            svc.submit("tiny", "llama3", "rag", "nope")
        svc.shutdown()

    def test_unknown_job_id(self, loader):
        svc = service(loader)
        with pytest.raises(UnknownJobError):
            svc.status("deadbeef")
        svc.shutdown()

    def test_result_timeout(self, loader):
        gate = GateMiddleware()
        with service(loader, workers=1, llm_middleware=gate) as svc:
            job_id = svc.submit("tiny", "llama3", "rag", "zero_shot")
            with pytest.raises(TimeoutError):
                svc.result(job_id, timeout=0.05)
            gate.release.set()
            svc.result(job_id, timeout=60)


class TestDiskCache:
    def test_second_service_answers_from_cache(self, loader, tmp_path):
        with service(loader, cache_dir=tmp_path) as first:
            job_id = first.submit("tiny", "llama3", "rag", "zero_shot")
            original = first.result(job_id, timeout=60)
        assert first.stats()["cache"]["stores"] == 1

        collector = obs.install()
        with service(loader, cache_dir=tmp_path) as second:
            again = second.submit("tiny", "llama3", "rag", "zero_shot")
            assert again == job_id
            status = second.status(again)
            assert status["cache_hit"] is True
            assert status["state"] == "done"
            assert status["attempts"] == 0        # nothing re-mined
            rerun = second.result(again)
        assert rerun.key() == original.key()
        assert rerun.rule_count == original.rule_count
        hits = collector.metrics.counter("service.cache.hits")
        assert hits.total() == 1
        # no mining span was opened on the cache-served pass
        names = {item.name for item in collector.iter_spans()}
        assert "mine.rag" not in names

    def test_config_change_re_mines(self, loader, tmp_path):
        with service(loader, cache_dir=tmp_path) as first:
            job_id = first.submit("tiny", "llama3", "rag", "zero_shot")
            first.result(job_id, timeout=60)
        with service(loader, cache_dir=tmp_path) as second:
            tweaked = second.submit(
                "tiny", "llama3", "rag", "zero_shot", rag_top_k=4,
            )
            assert tweaked != job_id
            second.result(tweaked, timeout=60)
            assert second.status(tweaked)["cache_hit"] is False
            assert second.status(tweaked)["attempts"] == 1


# ----------------------------------------------------------------------
# retry/backoff against injected transient failures
# ----------------------------------------------------------------------
class TestTransientFailures:
    def test_transient_failures_retried_until_done(self, loader):
        injector = TransientFaultInjector(failures=2)
        sleeps: list[float] = []
        collector = obs.install()
        svc = MiningService(
            loader=loader, workers=1, llm_middleware=injector,
            retry_policy=RetryPolicy(max_retries=3, base_delay=0.25),
            sleep=sleeps.append,
        )
        with svc:
            job_id = svc.submit("tiny", "mixtral", "rag", "zero_shot")
            run = svc.result(job_id, timeout=60)
        status = svc.status(job_id)
        assert status["state"] == "done"
        assert status["attempts"] == 3            # 2 failures + 1 success
        assert status["retries"] == 2
        assert injector.injected == 2
        assert sleeps == [0.25, 0.5]              # exponential backoff
        assert run.rule_count >= 0
        retries = collector.metrics.counter("service.retries")
        assert retries.total() == 2

    def test_exhausted_retries_fail_the_job(self, loader):
        injector = TransientFaultInjector(failures=100)
        svc = service(
            loader, workers=1, llm_middleware=injector,
            retry_policy=RetryPolicy(max_retries=2, base_delay=0.0),
        )
        with svc:
            job_id = svc.submit("tiny", "llama3", "rag", "zero_shot")
            with pytest.raises(JobFailedError):
                svc.result(job_id, timeout=60)
        status = svc.status(job_id)
        assert status["state"] == "failed"
        assert "RetriesExhausted" in status["error"]
        assert svc.stats()["jobs"]["failed"] == 1


# ----------------------------------------------------------------------
# cancellation + backpressure
# ----------------------------------------------------------------------
class TestCancelAndBackpressure:
    def test_cancel_queued_job(self, loader):
        gate = GateMiddleware()
        with service(loader, workers=1, llm_middleware=gate) as svc:
            running = svc.submit("tiny", "llama3", "rag", "zero_shot")
            assert gate.entered.wait(timeout=30)  # worker is pinned
            queued = svc.submit("tiny", "mixtral", "rag", "zero_shot")
            assert svc.cancel(queued) is True
            assert svc.cancel(running) is False   # already running
            gate.release.set()
            svc.result(running, timeout=60)
            with pytest.raises(JobFailedError):
                svc.result(queued, timeout=60)
        assert svc.status(queued)["state"] == JobState.CANCELLED.value
        assert svc.stats()["jobs"]["cancelled"] == 1

    def test_full_queue_rejects_and_forgets_job(self, loader):
        gate = GateMiddleware()
        with service(
            loader, workers=1, queue_depth=1, llm_middleware=gate,
        ) as svc:
            svc.submit("tiny", "llama3", "rag", "zero_shot")
            assert gate.entered.wait(timeout=30)
            svc.submit("tiny", "mixtral", "rag", "zero_shot")  # fills queue
            with pytest.raises(QueueFull):
                svc.submit(
                    "tiny", "llama3", "rag", "few_shot", block=False,
                )
            # the refused job left no trace in the job table
            assert svc.stats()["submitted"] == 2
            gate.release.set()
        assert svc.stats()["jobs"]["failed"] == 0
        assert svc.stats()["jobs"]["done"] == 2


# ----------------------------------------------------------------------
# the acceptance scenario: a grid slice through the service, twice
# ----------------------------------------------------------------------
class TestGridSliceTwice:
    def test_second_pass_is_all_cache_hits(self, loader, tmp_path):
        grid = dict(
            datasets=["tiny"], methods=["rag", "sliding_window"],
            prompt_modes=["zero_shot"],
        )
        with service(loader, cache_dir=tmp_path, workers=2) as first:
            ids = first.submit_grid(**grid)
            assert len(ids) == 4                  # 2 methods × 2 models
            originals = {
                job_id: first.result(job_id, timeout=120) for job_id in ids
            }
        assert first.stats()["cache"]["stores"] == 4

        collector = obs.install()
        with service(loader, cache_dir=tmp_path, workers=2) as second:
            replay = second.submit_grid(**grid)
            assert replay == ids
            for job_id in replay:
                status = second.status(job_id)
                assert status["cache_hit"] is True
                assert status["attempts"] == 0
                rerun = second.result(job_id)
                assert rerun.key() == originals[job_id].key()
                assert rerun.rule_count == originals[job_id].rule_count
        stats = second.stats()
        assert stats["cache_hits"] == 4
        assert stats["attempts"] == 0             # nothing re-mined
        hits = collector.metrics.counter("service.cache.hits")
        assert hits.total() == 4
        names = {item.name for item in collector.iter_spans()}
        assert "mine.rag" not in names
        assert "mine.sliding_window" not in names
