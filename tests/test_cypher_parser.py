"""Unit tests for the Cypher parser."""

import pytest

from repro.cypher import CypherSyntaxError, parse
from repro.cypher.ast_nodes import (
    BinaryOp,
    FunctionCall,
    InList,
    IsNull,
    LabelPredicate,
    Literal,
    MatchClause,
    NodePattern,
    PatternExpression,
    PropertyAccess,
    RegexMatch,
    RelPattern,
    ReturnClause,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)


def single(query_text) -> SingleQuery:
    query = parse(query_text)
    assert isinstance(query, SingleQuery)
    return query


def where_of(query_text):
    return single(query_text).clauses[0].where


class TestClauses:
    def test_minimal_query(self):
        query = single("MATCH (n) RETURN n")
        assert isinstance(query.clauses[0], MatchClause)
        assert isinstance(query.clauses[1], ReturnClause)

    def test_query_must_end_with_return(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n)")

    def test_empty_query_rejected(self):
        with pytest.raises(CypherSyntaxError):
            parse("   ")

    def test_trailing_semicolon_tolerated(self):
        assert single("MATCH (n) RETURN n;")

    def test_optional_match(self):
        query = single("MATCH (a) OPTIONAL MATCH (a)-[:R]->(b) RETURN b")
        assert query.clauses[1].optional is True

    def test_with_clause(self):
        query = single(
            "MATCH (n) WITH n.x AS x WHERE x > 1 RETURN x"
        )
        with_clause = query.clauses[1]
        assert isinstance(with_clause, WithClause)
        assert with_clause.items[0].alias == "x"
        assert with_clause.where is not None

    def test_unwind(self):
        query = single("UNWIND [1,2] AS x RETURN x")
        assert isinstance(query.clauses[0], UnwindClause)
        assert query.clauses[0].alias == "x"

    def test_union(self):
        query = parse("MATCH (a:X) RETURN a UNION MATCH (a:Y) RETURN a")
        assert isinstance(query, UnionQuery)
        assert len(query.queries) == 2
        assert query.all is False

    def test_union_all(self):
        query = parse(
            "MATCH (a:X) RETURN a UNION ALL MATCH (a:Y) RETURN a"
        )
        assert query.all is True

    def test_order_skip_limit(self):
        ret = single(
            "MATCH (n) RETURN n.x AS x ORDER BY x DESC SKIP 1 LIMIT 2"
        ).clauses[-1]
        assert ret.order_by[0].descending is True
        assert ret.skip == Literal(1)
        assert ret.limit == Literal(2)

    def test_return_star(self):
        ret = single("MATCH (n) RETURN *").clauses[-1]
        assert ret.star is True

    def test_distinct(self):
        ret = single("MATCH (n) RETURN DISTINCT n.x").clauses[-1]
        assert ret.distinct is True

    def test_alias_may_be_soft_keyword(self):
        ret = single("MATCH (n) RETURN count(*) AS count").clauses[-1]
        assert ret.items[0].alias == "count"

    def test_column_text_is_source_slice(self):
        ret = single("MATCH (n) RETURN n.x + 1").clauses[-1]
        assert ret.items[0].column_name == "n.x + 1"


class TestPatterns:
    def test_node_pattern_full(self):
        match = single("MATCH (n:Person {age: 3}) RETURN n").clauses[0]
        node = match.patterns[0].elements[0]
        assert node == NodePattern(
            variable="n", labels=("Person",),
            properties=(("age", Literal(3)),),
        )

    def test_anonymous_node(self):
        match = single("MATCH (:A)-[:R]->() RETURN count(*)").clauses[0]
        nodes = match.patterns[0].nodes()
        assert nodes[0].variable is None
        assert nodes[1] == NodePattern(variable=None, labels=())

    def test_multi_label_node(self):
        match = single("MATCH (n:A:B) RETURN n").clauses[0]
        assert match.patterns[0].elements[0].labels == ("A", "B")

    def test_relationship_directions(self):
        for text, direction in (
            ("(a)-[:R]->(b)", "out"),
            ("(a)<-[:R]-(b)", "in"),
            ("(a)-[:R]-(b)", "any"),
            ("(a)-->(b)", "out"),
            ("(a)<--(b)", "in"),
            ("(a)--(b)", "any"),
        ):
            match = single(f"MATCH {text} RETURN a").clauses[0]
            rel = match.patterns[0].relationships()[0]
            assert rel.direction == direction, text

    def test_relationship_types_alternation(self):
        match = single("MATCH (a)-[r:X|Y]->(b) RETURN r").clauses[0]
        assert match.patterns[0].relationships()[0].types == ("X", "Y")

    def test_relationship_properties(self):
        match = single(
            "MATCH (a)-[r:R {w: 2}]->(b) RETURN r"
        ).clauses[0]
        rel = match.patterns[0].relationships()[0]
        assert rel.properties == (("w", Literal(2)),)

    def test_variable_length(self):
        match = single("MATCH (a)-[:R*1..3]->(b) RETURN a").clauses[0]
        rel = match.patterns[0].relationships()[0]
        assert (rel.min_hops, rel.max_hops) == (1, 3)
        assert rel.is_variable_length

    def test_fixed_hops(self):
        match = single("MATCH (a)-[:R*2]->(b) RETURN a").clauses[0]
        rel = match.patterns[0].relationships()[0]
        assert (rel.min_hops, rel.max_hops) == (2, 2)

    def test_named_path(self):
        match = single("MATCH p = (a)-[:R]->(b) RETURN p").clauses[0]
        assert match.patterns[0].variable == "p"

    def test_multiple_patterns(self):
        match = single("MATCH (a), (b)-[:R]->(c) RETURN a").clauses[0]
        assert len(match.patterns) == 2

    def test_keyword_label_keeps_case(self):
        match = single("MATCH (m:Match) RETURN m").clauses[0]
        assert match.patterns[0].elements[0].labels == ("Match",)

    def test_longer_chain(self):
        match = single(
            "MATCH (a)-[:R]->(b)<-[:S]-(c) RETURN a"
        ).clauses[0]
        rels = match.patterns[0].relationships()
        assert [r.direction for r in rels] == ["out", "in"]


class TestExpressions:
    def test_precedence_and_or(self):
        expr = where_of("MATCH (n) WHERE true OR false AND false RETURN n")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_not(self):
        expr = where_of("MATCH (n) WHERE NOT n.x = 1 RETURN n")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_arithmetic_precedence(self):
        expr = where_of("MATCH (n) WHERE n.x = 1 + 2 * 3 RETURN n")
        plus = expr.right
        assert plus.op == "+"
        assert plus.right.op == "*"

    def test_comparison_chain_left_assoc(self):
        expr = where_of("MATCH (n) WHERE 1 < 2 = true RETURN n")
        assert expr.op == "="

    def test_is_null(self):
        expr = where_of("MATCH (n) WHERE n.x IS NULL RETURN n")
        assert expr == IsNull(
            PropertyAccess(Variable("n"), "x"), negated=False
        )

    def test_is_not_null(self):
        expr = where_of("MATCH (n) WHERE n.x IS NOT NULL RETURN n")
        assert expr.negated is True

    def test_in_list(self):
        expr = where_of("MATCH (n) WHERE n.x IN [1, 2] RETURN n")
        assert isinstance(expr, InList)

    def test_string_predicates(self):
        for op in ("STARTS WITH", "ENDS WITH", "CONTAINS"):
            expr = where_of(f"MATCH (n) WHERE n.x {op} 'a' RETURN n")
            assert isinstance(expr, StringPredicate)
            assert expr.kind == op

    def test_regex_match(self):
        expr = where_of("MATCH (n) WHERE n.x =~ 'a+' RETURN n")
        assert isinstance(expr, RegexMatch)

    def test_label_predicate(self):
        expr = where_of("MATCH (n) WHERE n:Person RETURN n")
        assert expr == LabelPredicate(Variable("n"), ("Person",))

    def test_pattern_expression_in_where(self):
        expr = where_of(
            "MATCH (u) WHERE NOT (u)-[:FOLLOWS]->(u) RETURN u"
        )
        assert isinstance(expr, UnaryOp)
        assert isinstance(expr.operand, PatternExpression)

    def test_parenthesised_expression_not_pattern(self):
        expr = where_of("MATCH (n) WHERE (1 + 2) = 3 RETURN n")
        assert isinstance(expr, BinaryOp)

    def test_count_star(self):
        ret = single("MATCH (n) RETURN count(*)").clauses[-1]
        call = ret.items[0].expression
        assert isinstance(call, FunctionCall)
        assert call.star is True

    def test_count_distinct(self):
        ret = single("MATCH (n) RETURN count(DISTINCT n.x)").clauses[-1]
        assert ret.items[0].expression.distinct is True

    def test_case_expression(self):
        ret = single(
            "MATCH (n) RETURN CASE WHEN n.x > 1 THEN 'big' "
            "ELSE 'small' END"
        ).clauses[-1]
        case = ret.items[0].expression
        assert case.default == Literal("small")

    def test_case_requires_when(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) RETURN CASE ELSE 1 END")

    def test_list_literal_and_indexing(self):
        ret = single("MATCH (n) RETURN [1,2,3][0]").clauses[-1]
        assert ret.items[0].expression is not None

    def test_list_comprehension(self):
        ret = single(
            "MATCH (n) RETURN [x IN [1,2,3] WHERE x > 1 | x * 2]"
        ).clauses[-1]
        comp = ret.items[0].expression
        assert comp.variable == "x"
        assert comp.predicate is not None
        assert comp.projection is not None

    def test_map_literal(self):
        ret = single("MATCH (n) RETURN {a: 1, b: 'x'}").clauses[-1]
        assert len(ret.items[0].expression.entries) == 2

    def test_parameter(self):
        expr = where_of("MATCH (n) WHERE n.x = $limit RETURN n")
        assert expr.right.name == "limit"

    def test_exists_property(self):
        expr = where_of("MATCH (n) WHERE exists(n.x) RETURN n")
        assert expr is not None

    def test_exists_pattern(self):
        expr = where_of(
            "MATCH (n) WHERE exists((n)-[:R]->()) RETURN n"
        )
        assert isinstance(expr, PatternExpression)

    def test_garbage_after_query(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) RETURN n garbage")

    def test_unbalanced_paren(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n RETURN n")

    def test_missing_as_alias_is_error(self):
        with pytest.raises(CypherSyntaxError):
            parse("MATCH (n) RETURN count(*) support")

    def test_subtraction_vs_pattern_dash(self):
        expr = where_of("MATCH (n) WHERE n.x - 1 > 0 RETURN n")
        assert expr.op == ">"
        assert expr.left.op == "-"
