#!/usr/bin/env python3
"""CI smoke test for the gateway: a real 2-process fleet over HTTP.

Boots a :class:`repro.gateway.Gateway` with two worker processes, mines
a small grid slice through :class:`repro.gateway.GatewayClient`, and
verifies the serving contract end to end:

1. every served run is **byte-identical** to mining the same cell with
   an in-process :class:`repro.service.MiningService` (and the HTTP job
   ids equal the in-process content addresses);
2. re-submitting the slice against a *fresh gateway process* on the
   same cache directory answers entirely from the worker-written cache
   (cross-process cache hits);
3. a saturated admission policy sheds with ``429`` + ``Retry-After``
   and shed jobs never reach a worker.

Writes the final Prometheus exposition of the gateway's metrics to
``--metrics-out`` so CI can archive it as an artifact.

Usage::

    PYTHONPATH=src python tools/gateway_smoke.py
    PYTHONPATH=src python tools/gateway_smoke.py \\
        --dataset cybersecurity --metrics-out gateway-metrics.prom
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro import obs
from repro.gateway import (
    AdmissionPolicy,
    Gateway,
    GatewayClient,
    GatewayRejectedError,
)
from repro.mining.persistence import run_to_dict
from repro.service import MiningService, RetryPolicy

CELLS = (
    ("llama3", "sliding_window"),
    ("llama3", "rag"),
    ("mixtral", "sliding_window"),
    ("mixtral", "rag"),
)


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def check_fleet_trace(payload: dict) -> str | None:
    """Verify one assembled trace is a single connected cross-PID tree.

    Returns an error message, or None when the trace holds up.
    """
    root = payload.get("root")
    if not root:
        return "trace has no root span"
    if not payload.get("complete"):
        return "trace was served before assembly completed"

    seen_ids: set[int] = set()
    names: list[str] = []

    def walk(span: dict, parent_id: int | None) -> str | None:
        if span["id"] in seen_ids:
            return f"duplicate span id {span['id']} (not a tree)"
        seen_ids.add(span["id"])
        names.append(span["name"])
        if span["parent"] != parent_id:
            return (
                f"orphaned span {span['name']!r}: parent "
                f"{span['parent']} != {parent_id}"
            )
        for child in span.get("children", ()):
            problem = walk(child, span["id"])
            if problem:
                return problem
        return None

    problem = walk(root, None)
    if problem:
        return problem
    if len(seen_ids) != payload.get("spans"):
        return (
            f"span count mismatch: walked {len(seen_ids)}, "
            f"payload says {payload.get('spans')}"
        )
    pids = payload.get("pids") or []
    if len(pids) < 2:
        return (
            f"trace spans {len(pids)} PID(s), expected >= 2 "
            "(gateway + worker)"
        )
    if "worker.job" not in names:
        return "no worker.job span was grafted into the gateway tree"
    if "gateway.attempt" not in names:
        return "no gateway.attempt phase recorded"
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset", default="cybersecurity",
        help="dataset to mine (default: cybersecurity)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the fleet (default 2)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the final /metrics exposition to PATH",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write one assembled fleet trace (JSON) to PATH",
    )
    args = parser.parse_args(argv)

    collector = obs.install()
    cache_dir = Path(tempfile.mkdtemp(prefix="gateway-smoke-"))
    served: dict[str, str] = {}
    job_ids: dict[tuple[str, str], str] = {}

    # ------------------------------------------------------------------
    # 1. fleet serving, compared byte-for-byte with in-process mining
    # ------------------------------------------------------------------
    with Gateway(cache_dir=cache_dir, workers=args.workers) as gateway:
        client = GatewayClient(gateway.url, client_id="smoke")
        print(f"gateway up at {gateway.url} ({args.workers} workers)")
        for model, method in CELLS:
            job = client.submit(args.dataset, model, method, "zero_shot")
            job_ids[(model, method)] = str(job["job_id"])
        for (model, method), job_id in job_ids.items():
            payload = client.result(job_id, timeout=600)
            served[job_id] = json.dumps(payload["run"], sort_keys=True)
            print(
                f"  served {model}/{method}: source={payload['source']} "
                f"job={job_id[:12]}"
            )
        stats = client.stats()
        if stats["dispatcher"]["completed"] != len(CELLS):
            return fail(
                f"fleet completed {stats['dispatcher']['completed']} "
                f"of {len(CELLS)} jobs"
            )
        # one connected trace per job: fetch the assembled tree for the
        # first dispatched cell and verify it spans gateway + worker PIDs
        trace = client.trace(job_ids[CELLS[0]])
        problem = check_fleet_trace(trace)
        if problem:
            return fail(f"fleet trace: {problem}")
        print(
            f"fleet trace OK: {trace['spans']} spans across "
            f"PIDs {trace['pids']} (trace {trace['trace_id'][:12]})"
        )
        if args.trace_out:
            Path(args.trace_out).write_text(
                json.dumps(trace, indent=2, sort_keys=True, default=str)
            )
            print(f"fleet trace written to {args.trace_out}")

    svc = MiningService(
        cache_dir=None, workers=2,
        retry_policy=RetryPolicy(max_retries=3, base_delay=0.0),
    )
    with svc:
        for (model, method), job_id in job_ids.items():
            local_id = svc.submit(args.dataset, model, method, "zero_shot")
            if local_id != job_id:
                return fail(
                    f"content address mismatch for {model}/{method}: "
                    f"gateway {job_id[:12]} vs in-process {local_id[:12]}"
                )
            run = svc.result(local_id, timeout=600)
            if json.dumps(run_to_dict(run), sort_keys=True) != served[job_id]:
                return fail(
                    f"served bytes differ from in-process mining "
                    f"for {model}/{method}"
                )
    print(f"byte-identical results for all {len(CELLS)} cells")

    # ------------------------------------------------------------------
    # 2. cross-process cache hits from a fresh gateway
    # ------------------------------------------------------------------
    with Gateway(cache_dir=cache_dir, workers=1) as gateway:
        client = GatewayClient(gateway.url, client_id="smoke-replay")
        for model, method in CELLS:
            job = client.submit(args.dataset, model, method, "zero_shot")
            if job["source"] != "cache" or job["state"] != "done":
                return fail(
                    f"replay of {model}/{method} was not a cache hit "
                    f"(source={job['source']})"
                )
    hits = collector.metrics.counter("gateway.cache.hits")
    if hits.value(source="gateway") < len(CELLS):
        return fail(
            "gateway-side cross-process hit counter is "
            f"{hits.value(source='gateway')}, expected >= {len(CELLS)}"
        )
    print(f"replay: {len(CELLS)} cross-process cache hits")

    # ------------------------------------------------------------------
    # 3. admission sheds overload with 429 + Retry-After
    # ------------------------------------------------------------------
    policy = AdmissionPolicy(rate_per_client=0.0001, burst_per_client=1.0)
    with Gateway(
        cache_dir=cache_dir, workers=1, policy=policy,
        serve_from_cache=False,
    ) as gateway:
        client = GatewayClient(gateway.url, client_id="greedy")
        client.submit(args.dataset, "llama3", "rag", "zero_shot")
        try:
            client.submit(
                args.dataset, "llama3", "rag", "zero_shot", base_seed=1,
            )
        except GatewayRejectedError as error:
            if error.status != 429 or error.retry_after < 1.0:
                return fail(
                    f"expected 429 with Retry-After >= 1, got "
                    f"{error.status} / {error.retry_after}"
                )
        else:
            return fail("saturated client was not shed with 429")
        stats = client.stats()
        executed = sum(
            worker["executed"] for worker in stats["dispatcher"]["workers"]
        )
        dispatched = stats["dispatcher"]["dispatched"]
        shed = stats["admission"]["shed"]["rate_limit"]
        metrics_text = client.metrics_text()
    if shed != 1:
        return fail(f"expected 1 rate_limit shed, saw {shed}")
    if dispatched > 1 or executed > 1:
        return fail(
            f"shed work reached the fleet (dispatched={dispatched}, "
            f"executed={executed})"
        )
    print("overload shed with 429 + Retry-After; fleet never saw it")

    if args.metrics_out:
        Path(args.metrics_out).write_text(metrics_text)
        print(f"metrics exposition written to {args.metrics_out}")
    obs.uninstall()
    print("gateway smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
