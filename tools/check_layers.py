#!/usr/bin/env python3
"""Repo-wide static gate: import layering plus a lightweight lint pass.

Layering
--------
``repro`` is a strict layer cake; a module may import only from its own
layer or below::

    graph
      < cypher
      < analysis
      < rules
      < correction, metrics, encoding, llm, prompts, rag, datasets, obs
      < mining, refine
      < experiments, gateway, service, stream

An upward import (``repro.cypher`` importing ``repro.mining``) couples
the foundations to their consumers and eventually turns into an import
cycle; this gate fails the build instead.

Lint
----
A small stdlib-``ast`` pass (the container has no ruff/pyflakes) flags
the defect classes that bite most in review: unused imports, duplicate
imports, ``import *``, bare ``except:`` clauses, and non-injectable
wall-clock reads (``time.time()`` / ``time.monotonic()`` /
``datetime.now()`` call sites) outside ``repro.obs`` — the simulated
timeline only stays deterministic when real time is either owned by the
obs layer or injected as a clock parameter.  Process-lifecycle modules
that legitimately watch the real clock are enumerated in
``tools/wallclock_allowlist.txt``.  When ruff *is* importable (CI
installs it), it runs afterwards for the full rule set.

Usage::

    python tools/check_layers.py          # gate; exit 1 on violations
    python tools/check_layers.py --quiet  # only print violations
"""

from __future__ import annotations

import argparse
import ast
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: package → layer rank; imports must be non-increasing in rank
LAYERS = {
    "graph": 0,
    "cypher": 1,
    "analysis": 2,
    "rules": 3,
    "correction": 4,
    "metrics": 4,
    "encoding": 4,
    "llm": 4,
    "prompts": 4,
    "rag": 4,
    "datasets": 4,
    "obs": 4,
    "mining": 5,
    "refine": 5,
    "experiments": 6,
    "gateway": 6,
    "service": 6,
    "stream": 6,
}

#: intra-obs sublayer ranks: the obs package is itself a small layer
#: cake (metrics < trace < propagate/export/distributed < analyze <
#: server); an upward import here is the same cycle risk in miniature
OBS_LAYERS = {
    "metrics": 0,
    "trace": 1,
    "propagate": 2,
    "export": 2,
    "distributed": 2,
    "analyze": 3,
    "server": 4,
}

#: names a module may re-export without "using" them (init conventions)
_INIT_NAMES = ("__init__.py",)

#: files under src/ allowed to read the wall clock directly
#: (process-lifecycle code where an injected clock buys nothing)
WALLCLOCK_ALLOWLIST = REPO / "tools" / "wallclock_allowlist.txt"

#: (qualifier, attribute) call pairs that read the real clock
_WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}

#: simple names that read the clock when imported from time/datetime
_WALLCLOCK_NAMES = frozenset(
    attribute for _qualifier, attribute in _WALLCLOCK_CALLS
)


def subpackage_of(module: str) -> str | None:
    """``repro.cypher.parser`` → ``cypher``; None outside repro."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _type_checking_nodes(tree: ast.AST) -> set[int]:
    """ids of import nodes guarded by ``if TYPE_CHECKING:`` — those
    exist for string annotations the usage collector cannot see."""
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.id if isinstance(test, ast.Name)
            else test.attr if isinstance(test, ast.Attribute)
            else None
        )
        if name == "TYPE_CHECKING":
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    guarded.add(id(child))
    return guarded


def iter_imports(tree: ast.AST, skip: set[int] = frozenset()):
    """Yield (node, module_name, bound_name) for every import."""
    for node in ast.walk(tree):
        if id(node) in skip:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                yield node, alias.name, bound
        elif isinstance(node, ast.ImportFrom):
            if node.level:      # relative imports stay within a layer
                continue
            module = node.module or ""
            if module == "__future__":
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                yield node, module, bound


def check_layering(path: Path, tree: ast.AST) -> list[str]:
    relative = path.relative_to(SRC)
    module = ".".join(relative.with_suffix("").parts)
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    own = subpackage_of(module + ".x")       # package files rank as their pkg
    if own is None or own not in LAYERS:
        return []
    own_rank = LAYERS[own]
    violations = []
    for node, imported, _bound in iter_imports(tree):
        target = subpackage_of(imported)
        if target is None or target not in LAYERS:
            continue
        if LAYERS[target] > own_rank:
            violations.append(
                f"{relative}:{node.lineno}: layering violation: "
                f"repro.{own} (layer {own_rank}) imports "
                f"repro.{target} (layer {LAYERS[target]})"
            )
    return violations


def _obs_module_of(module: str) -> str | None:
    """``repro.obs.trace`` → ``trace``; None outside repro.obs."""
    parts = module.split(".")
    if parts[:2] != ["repro", "obs"] or len(parts) < 3:
        return None
    return parts[2]


def check_obs_sublayers(path: Path, tree: ast.AST) -> list[str]:
    """Enforce the intra-obs layer cake (see :data:`OBS_LAYERS`)."""
    relative = path.relative_to(SRC)
    if relative.parts[:2] != ("repro", "obs"):
        return []
    own = path.stem
    if own not in OBS_LAYERS:          # __init__ re-exports everything
        return []
    own_rank = OBS_LAYERS[own]
    violations = []
    for node, imported, _bound in iter_imports(tree):
        target = _obs_module_of(imported)
        if target is None or target not in OBS_LAYERS:
            continue
        if OBS_LAYERS[target] > own_rank:
            violations.append(
                f"{relative}:{node.lineno}: obs sublayer violation: "
                f"obs.{own} (rank {own_rank}) imports "
                f"obs.{target} (rank {OBS_LAYERS[target]})"
            )
    return violations


class _UsageCollector(ast.NodeVisitor):
    """Names loaded anywhere in the module (attribute roots included)."""

    def __init__(self) -> None:
        self.used: set[str] = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Load, ast.Del)):
            self.used.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        root = node
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name):
            self.used.add(root.id)
        self.generic_visit(node)


def _declared_all(tree: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.add(element.value)
    return names


def check_lint(path: Path, tree: ast.AST, source: str) -> list[str]:
    relative = path.relative_to(REPO)
    problems: list[str] = []
    is_init = path.name in _INIT_NAMES

    collector = _UsageCollector()
    collector.visit(tree)
    exported = _declared_all(tree)
    used = collector.used | exported
    guarded = _type_checking_nodes(tree)
    lines = source.splitlines()

    # duplicate detection only applies at module scope — the same name
    # imported locally inside two different functions is legitimate
    top_level: dict[str, int] = {}
    imports_only = ast.Module(
        body=[
            node for node in tree.body
            if isinstance(node, (ast.Import, ast.ImportFrom))
        ],
        type_ignores=[],
    )
    for node, imported, bound in iter_imports(imports_only, guarded):
        key = f"{imported}:{bound}"
        if key in top_level:
            problems.append(
                f"{relative}:{node.lineno}: duplicate import of "
                f"'{bound}' (first at line {top_level[key]})"
            )
        else:
            top_level[key] = node.lineno

    for node, imported, bound in iter_imports(tree, guarded):
        if bound == "*":
            problems.append(
                f"{relative}:{node.lineno}: wildcard import "
                f"from {imported}"
            )
            continue
        # __init__.py files exist to re-export; skip unused checks there
        if is_init:
            continue
        if bound not in used and "# noqa" not in lines[node.lineno - 1]:
            problems.append(
                f"{relative}:{node.lineno}: unused import '{bound}'"
            )
    return problems


def check_bare_except(path: Path, tree: ast.AST) -> list[str]:
    """A bare ``except:`` swallows KeyboardInterrupt and SystemExit."""
    relative = path.relative_to(REPO)
    return [
        f"{relative}:{node.lineno}: bare 'except:' — name the "
        f"exception types (or use 'except Exception:')"
        for node in ast.walk(tree)
        if isinstance(node, ast.ExceptHandler) and node.type is None
    ]


def _dotted_call_name(node: ast.AST) -> tuple[str, ...]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def load_wallclock_allowlist() -> set[str]:
    entries: set[str] = set()
    try:
        text = WALLCLOCK_ALLOWLIST.read_text()
    except OSError:
        return entries
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def check_wallclock(
    path: Path, tree: ast.AST, allowlist: set[str]
) -> list[str]:
    """Flag direct wall-clock *call sites* outside ``repro.obs``.

    Only ``ast.Call`` nodes are flagged: passing ``time.monotonic`` as a
    default for an injectable ``clock`` parameter is the sanctioned
    pattern and stays legal.
    """
    relative = path.relative_to(REPO)
    if path.relative_to(SRC).parts[:2] == ("repro", "obs"):
        return []                    # the obs layer owns real time
    if str(relative) in allowlist:
        return []

    # `from time import monotonic` makes the bare name a clock read
    banned_names = {
        bound
        for _node, imported, bound in iter_imports(tree)
        if imported in ("time", "datetime")
        and bound in _WALLCLOCK_NAMES
    }
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted_call_name(node.func)
        if not dotted:
            continue
        if tuple(dotted[-2:]) in _WALLCLOCK_CALLS or (
            len(dotted) == 1 and dotted[0] in banned_names
        ):
            problems.append(
                f"{relative}:{node.lineno}: non-injectable wall-clock "
                f"call '{'.'.join(dotted)}()' — accept a clock "
                f"parameter, or add the file to "
                f"tools/wallclock_allowlist.txt"
            )
    return problems


def run_ruff(paths: list[str], quiet: bool) -> int:
    """Run ruff when available; 0 when clean or ruff is absent."""
    try:
        import ruff  # noqa: F401  (presence probe only)
    except ImportError:
        if not quiet:
            print("ruff not installed; stdlib lint pass only")
        return 0
    result = subprocess.run(
        [sys.executable, "-m", "ruff", "check", *paths],
        cwd=REPO,
    )
    return result.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quiet", action="store_true", help="only print violations"
    )
    parser.add_argument(
        "--no-ruff", action="store_true",
        help="skip the optional ruff pass even when installed",
    )
    args = parser.parse_args(argv)

    problems: list[str] = []
    checked = 0
    allowlist = load_wallclock_allowlist()
    targets = sorted(SRC.rglob("*.py")) + sorted(
        (REPO / "tools").glob("*.py")
    )
    for path in targets:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            problems.append(f"{path.relative_to(REPO)}: {error}")
            continue
        checked += 1
        if path.is_relative_to(SRC):
            problems.extend(check_layering(path, tree))
            problems.extend(check_obs_sublayers(path, tree))
            problems.extend(check_wallclock(path, tree, allowlist))
        problems.extend(check_lint(path, tree, source))
        problems.extend(check_bare_except(path, tree))

    for problem in problems:
        print(problem)
    status = 0
    if problems:
        print(f"\n{len(problems)} violation(s) in {checked} files")
        status = 1
    elif not args.quiet:
        print(f"{checked} files clean (layering + lint)")
    if not args.no_ruff:
        status = max(status, run_ruff(["src", "tools"], args.quiet))
    return status


if __name__ == "__main__":
    sys.exit(main())
