#!/usr/bin/env python3
"""CI smoke test for continuous mining: mutations against a live fleet.

Boots a watch-enabled :class:`repro.gateway.Gateway` with a 2-process
worker fleet, mines a baseline cell over HTTP, then submits mutation
batches through ``POST /graphs/<dataset>/mutations`` and verifies the
streaming contract end to end:

1. the mutation ack republishes an epoch-stamped snapshot, and the
   mutated graph mines under a *different* content address than the
   baseline (the fleet serves the new graph, not a stale cache entry);
2. the debounced watcher runs incremental maintenance and a
   ``rule.drift`` event arrives (the batch plants a property-less User
   node, which violates the mined completeness rules);
3. the ``/drift`` telemetry endpoint reports the maintenance pass and
   the drift events.

Writes the final ``/drift`` exposition (plus the drift counter state)
to ``--drift-out`` so CI can archive it as an artifact.

Usage::

    PYTHONPATH=src python tools/stream_smoke.py
    PYTHONPATH=src python tools/stream_smoke.py \\
        --dataset cybersecurity --drift-out stream-drift.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.gateway import Gateway, GatewayClient

#: the watcher is created lazily on the first mutation, and its baseline
#: is mined at the first flush — *after* that batch applied — so batch
#: one is absorbed into the baseline.  A benign marker batch primes the
#: watcher; the drift batch then lands against a settled baseline.
PRIME_BATCH = [
    {"op": "add_node", "id": "smoke_marker", "labels": ["SmokeMarker"],
     "properties": {"id": 0}},
]

#: a batch that *must* cause drift: a User node with no properties at
#: all violates every mined "Each User node should have ..." rule
DRIFT_BATCH = [
    {"op": "add_node", "id": "smoke_ghost", "labels": ["User"],
     "properties": {}},
    {"op": "add_node", "id": "smoke_host", "labels": ["Computer"],
     "properties": {}},
    {"op": "add_edge", "id": "smoke_rdp", "label": "CAN_RDP",
     "src": "smoke_ghost", "dst": "smoke_host"},
]


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def wait_for(predicate, timeout: float, interval: float = 0.2):
    """Poll ``predicate`` until it returns a truthy value or times out."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset", default="cybersecurity",
        help="dataset to watch (default: cybersecurity)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the fleet (default 2)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="seconds to wait for the drift event (default 120)",
    )
    parser.add_argument(
        "--drift-out", metavar="PATH", default=None,
        help="write the final /drift exposition to PATH",
    )
    args = parser.parse_args(argv)

    collector = obs.install()
    cache_dir = Path(tempfile.mkdtemp(prefix="stream-smoke-"))

    with Gateway(
        cache_dir=cache_dir, workers=args.workers,
        watch=True, watch_debounce=0.2,
    ) as gateway:
        client = GatewayClient(gateway.url, client_id="stream-smoke")
        print(
            f"gateway up at {gateway.url} "
            f"({args.workers} workers, watch on)"
        )

        # --------------------------------------------------------------
        # 1. baseline mine, then mutate and re-mine under a new address
        # --------------------------------------------------------------
        before = client.submit(args.dataset, "llama3", "sliding_window",
                               "zero_shot")
        client.result(before["job_id"], timeout=600)
        print(f"  baseline mined: job={before['job_id'][:12]}")

        # prime the watcher: its baseline is mined at the first flush
        client.mutate(args.dataset, PRIME_BATCH)

        def primed():
            telemetry = client.drift()["datasets"].get(args.dataset)
            return telemetry and telemetry["maintenance"]["batches"] >= 1

        if not wait_for(primed, timeout=args.timeout):
            return fail(
                f"watcher never primed within {args.timeout}s "
                f"(telemetry: {json.dumps(client.drift())})"
            )
        print("  watcher primed (baseline rule set mined)")

        ack = client.mutate(args.dataset, DRIFT_BATCH)
        if ack["applied"] != len(DRIFT_BATCH):
            return fail(
                f"ack applied {ack['applied']} of {len(DRIFT_BATCH)} "
                f"mutations"
            )
        if not ack["snapshot"].startswith(f"{args.dataset}.e"):
            return fail(
                f"snapshot {ack['snapshot']!r} is not epoch-stamped"
            )
        print(
            f"  mutations applied: epoch={ack['epoch']} "
            f"snapshot={ack['snapshot']}"
        )

        after = client.submit(args.dataset, "llama3", "sliding_window",
                              "zero_shot")
        if after["job_id"] == before["job_id"]:
            return fail(
                "mutated graph mined under the baseline's content "
                "address — the fleet is serving a stale graph"
            )
        result = client.result(after["job_id"], timeout=600)
        print(
            f"  mutated graph re-mined: job={after['job_id'][:12]} "
            f"source={result['source']}"
        )

        # --------------------------------------------------------------
        # 2. the debounced watcher maintains and emits rule.drift
        # --------------------------------------------------------------
        def drifted():
            payload = client.drift()
            telemetry = payload["datasets"].get(args.dataset)
            if not telemetry:
                return None
            if telemetry["drift"]["total_events"] < 1:
                return None
            return payload

        payload = wait_for(drifted, timeout=args.timeout)
        if payload is None:
            return fail(
                f"no rule.drift event within {args.timeout}s "
                f"(telemetry: {json.dumps(client.drift())})"
            )
        telemetry = payload["datasets"][args.dataset]
        if telemetry["maintenance"]["batches"] < 1:
            return fail("drift event arrived without a maintenance pass")
        drift_counter = collector.metrics.counter("rule.drift")
        if drift_counter.total() < 1:
            return fail("rule.drift obs counter never incremented")
        kinds = telemetry["drift"]["by_kind"]
        print(
            f"  drift observed: {telemetry['drift']['total_events']} "
            f"event(s) {kinds}, "
            f"{telemetry['maintenance']['batches']} maintenance pass(es)"
        )

        stats = client.stats()
        if stats["watch"]["watched"] != [args.dataset]:
            return fail(
                f"stats watch section is {stats['watch']!r}, expected "
                f"watched=[{args.dataset!r}]"
            )

    if args.drift_out:
        exposition = {
            "drift": payload,
            "counters": {
                "rule.drift": drift_counter.total(),
            },
        }
        Path(args.drift_out).write_text(
            json.dumps(exposition, indent=2, sort_keys=True) + "\n"
        )
        print(f"drift exposition written to {args.drift_out}")
    obs.uninstall()
    print("stream smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
