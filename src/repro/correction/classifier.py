"""Classify a generated Cypher query per the paper's §4.4 protocol.

A query is **correct** when it parses and matches the data model
(labels, property keys, relationship directions).  Otherwise it belongs
to one or more of the three error categories; for the correctness census
of Table 6 the *primary* category is, in the paper's order of
discussion: direction first, then hallucinated properties, then syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis import AnalysisReport, StaticAnalyzer
from repro.cypher.linter import ErrorCategory, Linter, LintReport
from repro.graph.schema import GraphSchema


@dataclass(frozen=True)
class Classification:
    """Verdict on one generated query."""

    query: str
    is_correct: bool
    primary_category: Optional[ErrorCategory]
    report: LintReport
    #: semantic analysis, when the classifier was built with an analyzer
    analysis: Optional[AnalysisReport] = None

    @property
    def category_name(self) -> Optional[str]:
        return self.primary_category.value if self.primary_category else None

    @property
    def semantic_signature(self) -> Optional[str]:
        """Canonical signature: equal for alpha-renamed duplicates."""
        return self.analysis.signature if self.analysis else None

    @property
    def semantic_verdict(self) -> Optional[str]:
        return self.analysis.verdict.value if self.analysis else None


_PRIORITY = (
    ErrorCategory.SYNTAX,
    ErrorCategory.DIRECTION,
    ErrorCategory.HALLUCINATED_PROPERTY,
)


def _first_position(report: LintReport, category: ErrorCategory) -> float:
    positions = [
        issue.position
        for issue in report.issues
        if issue.category is category and issue.position is not None
    ]
    return min(positions) if positions else float("inf")


def _primary_category(report: LintReport) -> Optional[ErrorCategory]:
    """The paper's Table 6 primary category, with positional ordering.

    A query that both has a syntax problem and a wrong direction counts
    as syntax-primary only when the syntax error *precedes* the
    direction conjunct in the query text; a genuine parse failure has no
    direction findings at all (no AST), so it stays syntax-primary
    automatically.
    """
    categories = report.categories()
    primary = next(
        (category for category in _PRIORITY if category in categories),
        None,
    )
    if (
        primary is ErrorCategory.SYNTAX
        and ErrorCategory.DIRECTION in categories
        and _first_position(report, ErrorCategory.DIRECTION)
        < _first_position(report, ErrorCategory.SYNTAX)
    ):
        primary = ErrorCategory.DIRECTION
    return primary


class QueryClassifier:
    """Applies the §4.4 criteria against an inferred schema.

    When built with a :class:`~repro.analysis.StaticAnalyzer`, every
    classification also carries the query's semantic analysis — its
    verdict and the canonical signature used to spot alpha-renamed
    duplicates among generated queries.
    """

    def __init__(
        self,
        schema: GraphSchema,
        analyzer: Optional[StaticAnalyzer] = None,
    ) -> None:
        self._linter = Linter(schema)
        self._analyzer = analyzer

    def classify(self, query_text: str) -> Classification:
        report = self._linter.lint(query_text)
        analysis = (
            self._analyzer.analyze(query_text)
            if self._analyzer is not None else None
        )
        if report.is_correct:
            return Classification(
                query=query_text, is_correct=True,
                primary_category=None, report=report, analysis=analysis,
            )
        primary = _primary_category(report)
        return Classification(
            query=query_text, is_correct=False,
            primary_category=primary, report=report, analysis=analysis,
        )
