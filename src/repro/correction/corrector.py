"""The correction protocol of §4.4, automated.

The authors "corrected the queries in case of syntax errors or wrong
edge directions, but … left them as they were [for] queries with
additional non-existing properties, because those errors corresponded to
hallucination at rule generation level, rather than the translation to
Cypher."

The corrector mirrors that: a query flagged for SYNTAX or DIRECTION is
regenerated from the rule's intended meaning (the ground-truth
translator, oriented by the true schema) — exactly what a human fixing
the query "while maintaining the intended meaning of the rule" does.
Because the translator translates the rule *as stated*, a rule whose own
property was hallucinated keeps its hallucination through correction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis import StaticAnalyzer
from repro.correction.classifier import Classification, QueryClassifier
from repro.cypher.linter import ErrorCategory
from repro.graph.schema import GraphSchema
from repro.rules.model import ConsistencyRule
from repro.rules.translator import (
    MetricQueries,
    RuleTranslator,
    UntranslatableRuleError,
)


@dataclass(frozen=True)
class CorrectionOutcome:
    """What happened to one generated query."""

    rule: ConsistencyRule
    generated_query: str
    final_query: str
    classification: Classification
    corrected: bool                       # a repair was applied
    left_uncorrected: bool                # hallucination kept on purpose
    metric_queries: Optional[MetricQueries]


class QueryCorrector:
    """Classifies generated queries and applies the §4.4 repairs."""

    def __init__(self, schema: GraphSchema) -> None:
        self.schema = schema
        self.analyzer = StaticAnalyzer(schema)
        self.classifier = QueryClassifier(schema, analyzer=self.analyzer)
        self.translator = RuleTranslator(schema)

    def correct(
        self, rule: ConsistencyRule, generated_query: str
    ) -> CorrectionOutcome:
        classification = self.classifier.classify(generated_query)
        try:
            metric_queries = self.translator.translate(rule)
        except UntranslatableRuleError:
            metric_queries = None

        if classification.is_correct:
            return CorrectionOutcome(
                rule=rule, generated_query=generated_query,
                final_query=generated_query,
                classification=classification, corrected=False,
                left_uncorrected=False, metric_queries=metric_queries,
            )

        categories = classification.report.categories()
        repairable = bool(
            categories & {ErrorCategory.SYNTAX, ErrorCategory.DIRECTION}
        )
        if repairable and metric_queries is not None:
            return CorrectionOutcome(
                rule=rule, generated_query=generated_query,
                final_query=metric_queries.check,
                classification=classification, corrected=True,
                left_uncorrected=False, metric_queries=metric_queries,
            )
        # hallucinated properties (or untranslatable rules): left as-is
        return CorrectionOutcome(
            rule=rule, generated_query=generated_query,
            final_query=generated_query,
            classification=classification, corrected=False,
            left_uncorrected=True, metric_queries=metric_queries,
        )
