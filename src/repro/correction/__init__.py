"""Query classification and the §4.4 correction protocol."""

from repro.correction.classifier import Classification, QueryClassifier
from repro.correction.corrector import CorrectionOutcome, QueryCorrector

__all__ = [
    "Classification",
    "CorrectionOutcome",
    "QueryClassifier",
    "QueryCorrector",
]
