"""Tables 2-4 — support / coverage / confidence per dataset.

Each table has the paper's layout: a Zero-shot block and a Few-shot
block, rows LLaMA-3 / Mixtral, and for each encoding method (Sliding
Window Attention, RAG) the columns #rules, Supp, Cov%, Conf%.
"""

from __future__ import annotations

from repro.datasets.registry import DISPLAY_NAMES as DATASET_DISPLAY
from repro.experiments.report import Table, fmt_float, fmt_int
from repro.llm.profiles import DISPLAY_NAMES as MODEL_DISPLAY
from repro.llm.profiles import MODEL_NAMES
from repro.mining.pipeline import PROMPT_MODES
from repro.mining.runner import ExperimentRunner

_TABLE_NUMBER = {"wwc2019": 2, "cybersecurity": 3, "twitter": 4}


def build(runner: ExperimentRunner, dataset: str) -> Table:
    """Build the Tables 2-4 grid for one dataset."""
    number = _TABLE_NUMBER.get(dataset.lower(), "X")
    table = Table(
        title=(
            f"Table {number}: Support, coverage and confidence for the "
            f"{DATASET_DISPLAY.get(dataset.lower(), dataset)} dataset"
        ),
        headers=[
            "Prompt", "Model",
            "SWA #rules", "SWA Supp", "SWA Cov%", "SWA Conf%",
            "RAG #rules", "RAG Supp", "RAG Cov%", "RAG Conf%",
        ],
    )
    for prompt_mode in PROMPT_MODES:
        prompt_label = (
            "Zero-shot" if prompt_mode == "zero_shot" else "Few-shot"
        )
        for model in MODEL_NAMES:
            cells: list[str] = [prompt_label, MODEL_DISPLAY[model]]
            for method in ("sliding_window", "rag"):
                run = runner.run(dataset, model, method, prompt_mode)
                metrics = run.aggregate_metrics()
                cells.extend([
                    fmt_int(metrics.rule_count),
                    fmt_int(metrics.avg_support),
                    fmt_float(metrics.avg_coverage),
                    fmt_float(metrics.avg_confidence),
                ])
            table.add_row(*cells)
    return table
