"""Command-line entry point: regenerate the paper's tables.

Usage::

    repro-experiments                # everything
    repro-experiments table1        # one table
    repro-experiments table3 --seed 7
    repro-experiments figures       # pipeline trace + §4.5 counts
    repro-experiments analyze       # static-analysis triage report
    repro-experiments analyze --json  # one finding object per rule
    repro-experiments refine        # refine-loop yield per retry budget
    repro-experiments refine --smoke  # CI gate: >=1 UNSAT rule repaired
    repro-experiments table5 --obs  # plus observability summary
    repro-experiments table5 --trace-out trace.jsonl

    # run a grid slice through the job service (workers + disk cache)
    repro-experiments serve --jobs 4 --cache-dir ~/.repro-cache
    repro-experiments serve --datasets wwc2019 --methods rag --obs
    repro-experiments serve --telemetry-port 9100   # live /metrics

    # serve mining over HTTP: worker processes + admission control
    repro-experiments serve --port 8080 --workers 4 \\
        --cache-dir ~/.repro-cache
    repro-experiments serve --port 0 --workers 2 --rate 10 --burst 20

    # continuous mining: accept live mutations, maintain rules in place
    repro-experiments serve --port 8080 --watch --cache-max-entries 256

    # offline trace intelligence + the perf-regression gate
    repro-experiments profile trace.jsonl --attr rule
    repro-experiments perf --compare benchmarks/baselines/perf_smoke.json

    # cost-based planner introspection
    repro-experiments explain "MATCH (t:Team)<-[:PART_OF]-(p) RETURN p"
    repro-experiments explain --dataset twitter "MATCH ..."
    repro-experiments analyze --explain   # plans of sampled mined queries
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.datasets.registry import DATASET_NAMES
from repro.experiments import (
    extensions,
    figures,
    metric_tables,
    table1,
    table5,
    table6,
    triage,
)
from repro.llm.profiles import MODEL_NAMES
from repro.mining.pipeline import PROMPT_MODES
from repro.mining.runner import METHODS, ExperimentRunner

TARGETS = (
    "table1", "table2", "table3", "table4", "table5", "table6",
    "figures", "extensions", "analyze", "all",
)

_DATASET_FOR_TABLE = {
    "table2": "wwc2019",
    "table3": "cybersecurity",
    "table4": "twitter",
}


def emit(target: str, runner: ExperimentRunner) -> str:
    """Render one target to text."""
    if target == "table1":
        return table1.build().render()
    if target in _DATASET_FOR_TABLE:
        return metric_tables.build(
            runner, _DATASET_FOR_TABLE[target]
        ).render()
    if target == "table5":
        return table5.build(runner).render()
    if target == "table6":
        return "\n\n".join((
            table6.build(runner).render(),
            table6.error_census(runner).render(),
        ))
    if target == "figures":
        return "\n\n".join((
            figures.pipeline_trace(runner),
            figures.broken_patterns(runner).render(),
        ))
    if target == "extensions":
        return extensions.build(runner).render()
    if target == "analyze":
        return "\n\n".join((
            triage.build(runner).render(),
            triage.finding_census(runner).render(),
        ))
    raise ValueError(f"unknown target {target!r}")


# ----------------------------------------------------------------------
# serve: grid cells as service jobs, or the HTTP gateway front door
# ----------------------------------------------------------------------
def _serve_gateway(args: argparse.Namespace) -> int:
    """Run the HTTP front door until SIGTERM/SIGINT, then drain."""
    import signal
    import tempfile
    import threading

    from repro.gateway import AdmissionPolicy, Gateway, SpecDefaults

    cache_dir = args.cache_dir
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-gateway-")
        print(f"no --cache-dir given; using {cache_dir}")

    # the gateway always collects metrics: /metrics is part of its API
    collector = obs.install()
    stop = threading.Event()

    def on_signal(signum: int, frame: object) -> None:
        print(f"received {signal.Signals(signum).name}; draining ...")
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, on_signal)

    gateway = Gateway(
        cache_dir=cache_dir,
        workers=args.workers,
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        policy=AdmissionPolicy(
            rate_per_client=args.rate,
            burst_per_client=args.burst,
            max_inflight=args.max_inflight,
            max_queue_depth=args.queue_depth,
        ),
        defaults=SpecDefaults(base_seed=args.seed),
        max_retries=args.max_retries,
        drain_timeout=args.drain_timeout,
        watch=args.watch,
        watch_debounce=args.watch_debounce,
        cache_max_entries=args.cache_max_entries,
    )
    clean = True
    try:
        gateway.start()
        print(
            f"gateway: {gateway.url} ({args.workers} worker processes, "
            f"cache {cache_dir})"
        )
        print(
            "endpoints: POST /jobs  GET /jobs/<id>[/result]  "
            "POST /jobs/<id>/cancel  GET /stats /healthz /metrics"
        )
        print(
            "tracing: GET /jobs/<id>/trace serves the assembled "
            "fleet-wide span tree; submit with a 'traceparent' field "
            "to adopt your own trace context"
        )
        if args.watch:
            print(
                "watch mode: POST /graphs/<name>/mutations  GET /drift "
                f"(debounce {args.watch_debounce}s)"
            )
        stop.wait()
        clean = gateway.drain(args.drain_timeout)
        print(
            "drain complete" if clean
            else f"drain deadline ({args.drain_timeout}s) exceeded; "
            "jobs were abandoned",
        )
    finally:
        gateway.stop()
        if args.trace_out:
            try:
                obs.write_jsonl(collector, args.trace_out)
                print(f"trace written to {args.trace_out}")
            except OSError as error:
                print(
                    f"cannot write trace to {args.trace_out}: {error}",
                    file=sys.stderr,
                )
                clean = False
        obs.uninstall()
    return 0 if clean else 1


def serve_main(argv: list[str]) -> int:
    """Run a grid slice through :class:`repro.service.MiningService`."""
    from repro.service import JobFailedError, MiningService, RetryPolicy

    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description=(
            "Mine a grid slice through the in-process job service "
            "(worker pool, retry/backoff, on-disk result cache keyed "
            "by graph + code + config) — or, with --port, serve mining "
            "over HTTP through the multi-process gateway front door."
        ),
    )
    parser.add_argument(
        "--datasets", nargs="+", choices=DATASET_NAMES, default=None,
        help="datasets to mine (default: all three)",
    )
    parser.add_argument(
        "--models", nargs="+", choices=MODEL_NAMES, default=None,
        help="models to mine with (default: both)",
    )
    parser.add_argument(
        "--methods", nargs="+", choices=METHODS, default=None,
        help="mining methods (default: both)",
    )
    parser.add_argument(
        "--prompts", nargs="+", choices=PROMPT_MODES, default=None,
        help="prompt modes (default: both)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker threads executing jobs (default 2)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH", default=None,
        help="on-disk result cache; repeated cells become cache hits",
    )
    parser.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="retries per job on transient LLM failures (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the simulated LLMs (default 0)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="collect a trace and print the observability summary",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the JSONL span/metric trace to PATH (implies --obs)",
    )
    parser.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help=(
            "serve live telemetry on 127.0.0.1:PORT while the grid "
            "runs: /metrics (Prometheus), /healthz, /jobs "
            "(0 = ephemeral port; implies --obs)"
        ),
    )
    gateway_group = parser.add_argument_group(
        "gateway mode (HTTP front door; activated by --port)"
    )
    gateway_group.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help=(
            "serve job submission over HTTP on this port instead of "
            "mining a grid slice (0 = ephemeral port)"
        ),
    )
    gateway_group.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address for the gateway (default 127.0.0.1)",
    )
    gateway_group.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker *processes* behind the gateway (default 2)",
    )
    gateway_group.add_argument(
        "--rate", type=float, default=50.0, metavar="R",
        help="admitted jobs/second per client (default 50)",
    )
    gateway_group.add_argument(
        "--burst", type=float, default=100.0, metavar="B",
        help="instantaneous burst per client (default 100)",
    )
    gateway_group.add_argument(
        "--max-inflight", type=int, default=256, metavar="N",
        help="accepted-but-unfinished job cap (default 256)",
    )
    gateway_group.add_argument(
        "--queue-depth", type=int, default=128, metavar="N",
        help="dispatch backlog high-water mark (default 128)",
    )
    gateway_group.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="deadline for in-flight work on SIGTERM/SIGINT (default 30)",
    )
    gateway_group.add_argument(
        "--watch", action="store_true",
        help=(
            "accept live mutation batches (POST /graphs/<name>/mutations) "
            "and keep mined rules maintained incrementally; drift "
            "telemetry on GET /drift"
        ),
    )
    gateway_group.add_argument(
        "--watch-debounce", type=float, default=0.5, metavar="SECONDS",
        help=(
            "quiet period before a mutation burst triggers incremental "
            "maintenance (default 0.5)"
        ),
    )
    gateway_group.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help=(
            "LRU bound on cached mining results (default unbounded; "
            "recommended under --watch, where every mutation batch "
            "mints a fresh content address)"
        ),
    )
    args = parser.parse_args(argv)

    if args.port is not None:
        return _serve_gateway(args)

    collector = None
    if args.obs or args.trace_out or args.telemetry_port is not None:
        collector = obs.install()
    telemetry = None
    failed = 0
    try:
        service = MiningService(
            cache_dir=args.cache_dir,
            workers=args.jobs,
            retry_policy=RetryPolicy(max_retries=args.max_retries),
            base_seed=args.seed,
        )
        if args.telemetry_port is not None:
            telemetry = obs.TelemetryServer(
                registry=collector.metrics,
                jobs=service.telemetry,
                port=args.telemetry_port,
            ).start()
            print(f"telemetry: {telemetry.url} "
                  f"(/metrics /healthz /jobs)")
        with service, obs.span("serve.grid", jobs=args.jobs):
            job_ids = service.submit_grid(
                datasets=args.datasets, models=args.models,
                methods=args.methods, prompt_modes=args.prompts,
            )
            rows = []
            for job_id in job_ids:
                try:
                    service.result(job_id)
                except JobFailedError:
                    failed += 1
                status = service.status(job_id)
                rows.append(status)
                cell = "/".join(status["cell"])
                source = "cache" if status["cache_hit"] else "mined"
                print(
                    f"{status['job_id'][:12]}  {cell:<45} "
                    f"{status['state']:<9} {source:<6} "
                    f"attempts={status['attempts']} "
                    f"run={status['run_seconds']:.2f}s"
                )
        stats = service.stats()
        cache = stats["cache"]
        print()
        print(
            f"service: {stats['submitted']} jobs "
            f"({stats['jobs']['done']} done, {stats['jobs']['failed']} "
            f"failed), {stats['cache_hits']} cache hits, "
            f"{stats['retries']} retries, "
            f"max queue depth {stats['queue_max_depth']}"
        )
        if cache is not None:
            print(
                f"cache: {cache['hits']} hits / {cache['misses']} misses "
                f"({cache['hit_rate']:.0%} hit rate), "
                f"{cache['stores']} stores"
            )
        if collector is not None:
            print()
            print(obs.summary_table(collector))
            if args.trace_out:
                try:
                    obs.write_jsonl(collector, args.trace_out)
                except OSError as error:
                    print(
                        f"cannot write trace to {args.trace_out}: {error}",
                        file=sys.stderr,
                    )
                    return 1
                print(f"trace written to {args.trace_out}")
    finally:
        if telemetry is not None:
            telemetry.stop()
        if collector is not None:
            obs.uninstall()
    return 1 if failed else 0


# ----------------------------------------------------------------------
# explain: cost-based planner introspection
# ----------------------------------------------------------------------
def explain_main(argv: list[str]) -> int:
    """Render the planner's EXPLAIN tree for one query."""
    from repro.cypher import CypherError, explain, parse
    from repro.datasets import registry

    parser = argparse.ArgumentParser(
        prog="repro-experiments explain",
        description=(
            "Show the cost-based query plan (seed choice, join order, "
            "pushed predicates, cardinality estimates) for a Cypher "
            "query against one of the study graphs."
        ),
    )
    parser.add_argument("query", help="Cypher query text to plan")
    parser.add_argument(
        "--dataset", choices=DATASET_NAMES, default="cybersecurity",
        help="graph to plan against (default: cybersecurity)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="dataset generation seed (default: the study seed)",
    )
    args = parser.parse_args(argv)

    dataset = registry.load(args.dataset, seed=args.seed)
    try:
        query = parse(args.query)
    except CypherError as error:
        print(f"cannot parse query: {error}", file=sys.stderr)
        return 1
    print(explain(query, dataset.graph))
    return 0


def _explain_mined_queries(
    runner: ExperimentRunner, per_dataset: int = 3
) -> str:
    """EXPLAIN trees for a sample of final mined queries per dataset."""
    from repro.cypher import CypherError, explain, parse
    from repro.datasets import registry

    sections: list[str] = []
    for dataset in DATASET_NAMES:
        graph = registry.load(dataset).graph
        shown = 0
        seen: set[str] = set()
        for run in runner.run_dataset(dataset):
            for result in run.results:
                if shown >= per_dataset:
                    break
                text = result.outcome.final_query
                if not text or text in seen:
                    continue
                seen.add(text)
                try:
                    tree = explain(parse(text), graph)
                except CypherError:
                    continue  # unparsable mined query; census covers it
                sections.append(f"-- {dataset}: {text}\n{tree}")
                shown += 1
            if shown >= per_dataset:
                break
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.experiments.profiling import profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.experiments.perf import perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "refine":
        from repro.experiments.refine_report import refine_main

        return refine_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables of 'Graph Consistency Rule Mining "
            "with LLMs' (EDBT 2025) from the offline reproduction."
        ),
    )
    parser.add_argument(
        "targets", nargs="*", default=["all"],
        help=(
            f"what to regenerate: {', '.join(TARGETS)} — or the "
            "'serve', 'profile', 'perf' and 'explain' subcommands "
            "(see: repro-experiments <subcommand> --help)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the simulated LLMs (default 0)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="collect a trace and print the observability summary",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the JSONL span/metric trace to PATH (implies --obs)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help=(
            "with the 'analyze' target: also print the planner's "
            "EXPLAIN tree for a sample of final mined queries"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help=(
            "with the 'analyze' target: emit one JSON finding object "
            "per mined rule instead of the tables (the CI artifact "
            "format, shared with the refine loop's reports)"
        ),
    )
    args = parser.parse_args(argv)

    requested = args.targets or ["all"]
    for target in requested:
        if target not in TARGETS:
            parser.error(
                f"unknown target {target!r}; choose from {TARGETS}"
            )
    if "all" in requested:
        requested = [t for t in TARGETS if t != "all"]
    if args.explain and "analyze" not in requested:
        parser.error("--explain requires the 'analyze' target")
    if args.json and requested != ["analyze"]:
        parser.error("--json requires exactly the 'analyze' target")

    collector = None
    if args.obs or args.trace_out:
        collector = obs.install()
    try:
        runner = ExperimentRunner(base_seed=args.seed)
        if args.json:
            import json as json_module

            print(json_module.dumps(
                triage.findings_json(runner), indent=2
            ))
            return 0
        outputs = [emit(target, runner) for target in requested]
        if args.explain:
            outputs.append(_explain_mined_queries(runner))
        print("\n\n".join(outputs))
        if collector is not None:
            print()
            print(obs.summary_table(collector))
            if args.trace_out:
                try:
                    obs.write_jsonl(collector, args.trace_out)
                except OSError as error:
                    print(
                        f"cannot write trace to {args.trace_out}: {error}",
                        file=sys.stderr,
                    )
                    return 1
                print(f"trace written to {args.trace_out}")
    finally:
        if collector is not None:
            obs.uninstall()
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `profile trace.jsonl | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
