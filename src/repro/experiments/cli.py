"""Command-line entry point: regenerate the paper's tables.

Usage::

    repro-experiments                # everything
    repro-experiments table1        # one table
    repro-experiments table3 --seed 7
    repro-experiments figures       # pipeline trace + §4.5 counts
    repro-experiments table5 --obs  # plus observability summary
    repro-experiments table5 --trace-out trace.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.experiments import (
    extensions,
    figures,
    metric_tables,
    table1,
    table5,
    table6,
)
from repro.mining.runner import ExperimentRunner

TARGETS = (
    "table1", "table2", "table3", "table4", "table5", "table6",
    "figures", "extensions", "all",
)

_DATASET_FOR_TABLE = {
    "table2": "wwc2019",
    "table3": "cybersecurity",
    "table4": "twitter",
}


def emit(target: str, runner: ExperimentRunner) -> str:
    """Render one target to text."""
    if target == "table1":
        return table1.build().render()
    if target in _DATASET_FOR_TABLE:
        return metric_tables.build(
            runner, _DATASET_FOR_TABLE[target]
        ).render()
    if target == "table5":
        return table5.build(runner).render()
    if target == "table6":
        return "\n\n".join((
            table6.build(runner).render(),
            table6.error_census(runner).render(),
        ))
    if target == "figures":
        return "\n\n".join((
            figures.pipeline_trace(runner),
            figures.broken_patterns(runner).render(),
        ))
    if target == "extensions":
        return extensions.build(runner).render()
    raise ValueError(f"unknown target {target!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables of 'Graph Consistency Rule Mining "
            "with LLMs' (EDBT 2025) from the offline reproduction."
        ),
    )
    parser.add_argument(
        "targets", nargs="*", default=["all"],
        help=f"what to regenerate: {', '.join(TARGETS)}",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the simulated LLMs (default 0)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="collect a trace and print the observability summary",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the JSONL span/metric trace to PATH (implies --obs)",
    )
    args = parser.parse_args(argv)

    requested = args.targets or ["all"]
    for target in requested:
        if target not in TARGETS:
            parser.error(
                f"unknown target {target!r}; choose from {TARGETS}"
            )
    if "all" in requested:
        requested = [t for t in TARGETS if t != "all"]

    collector = None
    if args.obs or args.trace_out:
        collector = obs.install()
    try:
        runner = ExperimentRunner(base_seed=args.seed)
        outputs = [emit(target, runner) for target in requested]
        print("\n\n".join(outputs))
        if collector is not None:
            print()
            print(obs.summary_table(collector))
            if args.trace_out:
                try:
                    obs.write_jsonl(collector, args.trace_out)
                except OSError as error:
                    print(
                        f"cannot write trace to {args.trace_out}: {error}",
                        file=sys.stderr,
                    )
                    return 1
                print(f"trace written to {args.trace_out}")
    finally:
        if collector is not None:
            obs.uninstall()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
