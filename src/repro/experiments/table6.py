"""Table 6 — Cypher generation correctness, plus the §4.4 error census."""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES
from repro.datasets.registry import DISPLAY_NAMES as DATASET_DISPLAY
from repro.experiments.report import Table
from repro.llm.profiles import DISPLAY_NAMES as MODEL_DISPLAY
from repro.llm.profiles import MODEL_NAMES
from repro.mining.runner import ExperimentRunner


def build(runner: ExperimentRunner) -> Table:
    """Build Table 6: correctly generated queries per configuration."""
    table = Table(
        title="Table 6: Number of correctly generated Cypher queries",
        headers=[
            "Dataset", "Model",
            "SWA Zero-shot", "SWA Few-shot",
            "RAG Zero-shot", "RAG Few-shot",
        ],
    )
    for dataset in DATASET_NAMES:
        for model in MODEL_NAMES:
            cells = [DATASET_DISPLAY[dataset], MODEL_DISPLAY[model]]
            for method in ("sliding_window", "rag"):
                for prompt_mode in ("zero_shot", "few_shot"):
                    run = runner.run(dataset, model, method, prompt_mode)
                    cells.append(
                        f"{run.correct_queries}/{run.generated_queries}"
                    )
            table.add_row(*cells)
    return table


def error_census(runner: ExperimentRunner) -> Table:
    """The §4.4 breakdown: error category counts across the whole grid."""
    table = Table(
        title="Section 4.4: Cypher error categories across the study",
        headers=["Category", "Count"],
    )
    totals: dict[str, int] = {}
    for dataset in DATASET_NAMES:
        for run in runner.run_dataset(dataset):
            for category, count in run.error_census().items():
                totals[category] = totals.get(category, 0) + count
    display = {
        "direction": "Wrong relationship direction",
        "hallucinated_property": "Non-existing properties (hallucination)",
        "syntax": "Syntax errors (e.g. '=' for '=~')",
    }
    for key in ("direction", "hallucinated_property", "syntax"):
        table.add_row(display[key], totals.get(key, 0))
    return table
