"""Future-work comparison table (beyond the paper's grid).

Compares all four context strategies implemented here — sequential
sliding windows, parallel sliding windows, RAG retrieval and stratified
summary — on one dataset, quantifying the efficiency directions §4.3 and
§5 sketch.
"""

from __future__ import annotations

from repro.experiments.report import Table, fmt_float
from repro.mining import (
    ParallelSlidingWindowPipeline,
    RAGPipeline,
    SlidingWindowPipeline,
    SummaryPipeline,
)
from repro.mining.runner import ExperimentRunner


def build(
    runner: ExperimentRunner,
    dataset: str = "wwc2019",
    model: str = "llama3",
    workers: int = 4,
) -> Table:
    """Strategy comparison for one (dataset, model), zero-shot."""
    context = runner.context(dataset)
    strategies = {
        "SWA (paper)": SlidingWindowPipeline(
            context, base_seed=runner.base_seed
        ),
        f"SWA parallel x{workers}": ParallelSlidingWindowPipeline(
            context, workers=workers, base_seed=runner.base_seed
        ),
        "RAG (paper)": RAGPipeline(context, base_seed=runner.base_seed),
        "Summary": SummaryPipeline(context, base_seed=runner.base_seed),
    }
    table = Table(
        title=(
            f"Extensions: context strategies on {context.name} "
            f"({model}, zero-shot)"
        ),
        headers=[
            "Strategy", "#rules", "Supp", "Cov%", "Conf%",
            "Mining s", "Correct",
        ],
    )
    for name, pipeline in strategies.items():
        run = pipeline.mine(model, "zero_shot")
        metrics = run.aggregate_metrics()
        table.add_row(
            name,
            metrics.rule_count,
            fmt_float(metrics.avg_support, 0),
            fmt_float(metrics.avg_coverage),
            fmt_float(metrics.avg_confidence),
            fmt_float(run.mining_seconds, 2),
            f"{run.correct_queries}/{run.generated_queries}",
        )
    return table
