"""Static-analysis triage report: analyzer verdicts across the grid.

The companion to Table 6: where the paper's census counts *schema-level*
errors (direction, hallucination, syntax), this report counts the
*semantic* verdicts of :mod:`repro.analysis` over every final query in
the grid, plus how many rules were triaged out before execution.
Exposed as ``repro-experiments analyze``.
"""

from __future__ import annotations

from repro.analysis import Verdict
from repro.datasets.registry import DATASET_NAMES
from repro.datasets.registry import DISPLAY_NAMES as DATASET_DISPLAY
from repro.experiments.report import Table
from repro.mining.runner import ExperimentRunner

#: column order follows escalating severity
_VERDICT_COLUMNS = (
    Verdict.OK, Verdict.WARN, Verdict.TRIVIAL, Verdict.UNSAT, Verdict.ERROR,
)


def build(runner: ExperimentRunner) -> Table:
    """Per-dataset verdict counts and triage savings."""
    table = Table(
        title="Static analysis: analyzer verdicts per dataset",
        headers=[
            "Dataset",
            *[verdict.value for verdict in _VERDICT_COLUMNS],
            "triaged out", "queries",
        ],
    )
    for dataset in DATASET_NAMES:
        census: dict[str, int] = {}
        triaged = 0
        queries = 0
        for run in runner.run_dataset(dataset):
            for verdict, count in run.triage_census().items():
                census[verdict] = census.get(verdict, 0) + count
            triaged += run.triaged_out
            queries += run.generated_queries
        table.add_row(
            DATASET_DISPLAY[dataset],
            *[census.get(v.value, 0) for v in _VERDICT_COLUMNS],
            triaged, queries,
        )
    return table


def findings_json(runner: ExperimentRunner) -> list[dict]:
    """One finding object per mined rule, across the whole grid.

    The machine-readable companion to :func:`build`: CI archives it as
    an artifact, and the refine loop's reports share the same shape, so
    a dashboard (or a later pipeline stage) can join the two on the
    cell coordinates plus the rule text.
    """
    records: list[dict] = []
    for dataset in DATASET_NAMES:
        for run in runner.run_dataset(dataset):
            for result in run.results:
                if result.analysis is None:
                    continue
                record = {
                    "dataset": run.dataset,
                    "model": run.model,
                    "method": run.method,
                    "prompt_mode": run.prompt_mode,
                    "rule": result.rule.text or result.rule.describe(),
                    "query": result.outcome.final_query,
                    "triage_skipped": result.triage_skipped,
                    "support": result.metrics.support,
                    **result.analysis.to_dict(),
                }
                if result.refinement is not None:
                    record["refinement"] = result.refinement.to_dict()
                records.append(record)
    return records


def finding_census(runner: ExperimentRunner) -> Table:
    """Counts of individual finding codes across the whole grid."""
    table = Table(
        title="Static analysis: finding codes across the grid",
        headers=["Pass", "Code", "Count"],
    )
    totals: dict[tuple[str, str], int] = {}
    for dataset in DATASET_NAMES:
        for run in runner.run_dataset(dataset):
            for result in run.results:
                if result.analysis is None:
                    continue
                for finding in result.analysis.findings:
                    key = (finding.pass_name, finding.code)
                    totals[key] = totals.get(key, 0) + 1
    for (pass_name, code), count in sorted(
        totals.items(), key=lambda item: (-item[1], item[0])
    ):
        table.add_row(pass_name, code, count)
    if not totals:
        table.add_row("-", "no findings", 0)
    return table
