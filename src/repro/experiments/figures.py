"""Figures 1-3 are architecture diagrams; here they are realised as a
traceable pipeline walkthrough, plus the §4.5 fragmentation counts."""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES
from repro.datasets.registry import DISPLAY_NAMES as DATASET_DISPLAY
from repro.experiments.report import Table
from repro.mining.runner import ExperimentRunner


def pipeline_trace(runner: ExperimentRunner, dataset: str = "wwc2019") -> str:
    """A textual rendering of Figure 1/2 with live numbers."""
    context = runner.context(dataset)
    swa = runner.pipeline(dataset, "sliding_window")
    windows = swa.window_set
    rag = runner.pipeline(dataset, "rag")
    rag._ensure_index()
    lines = [
        f"Pipeline trace for {context.name} (Figures 1-3 realised):",
        "",
        "Step 1 — encode the property graph (incident encoder):",
        f"  {context.graph.node_count()} nodes + "
        f"{context.graph.edge_count()} edges -> "
        f"{len(context.statements)} text statements",
        "",
        "Step 1a — Sliding Window Attention (Figure 2a):",
        f"  window size {windows.window_size} tokens, overlap "
        f"{windows.overlap} -> {windows.window_count} windows; "
        f"{windows.broken_pattern_count} incident blocks broken at "
        "boundaries",
        "",
        "Step 1b — RAG (Figure 2b):",
        f"  {rag.retriever.store.__len__()} chunks embedded; top-"
        f"{rag.retriever.top_k} retrieved per query",
        "",
        "Step 2 — prompt the LLM (zero-shot / few-shot, Figure 3),",
        "Step 3 — parse natural-language rules, combine across windows,",
        "Step 4 — second prompt translates each rule to Cypher,",
        "Step 5 — §4.4 correction, then support/coverage/confidence.",
    ]
    return "\n".join(lines)


def broken_patterns(runner: ExperimentRunner) -> Table:
    """§4.5: number of patterns broken at window boundaries."""
    table = Table(
        title="Section 4.5: patterns broken at window boundaries",
        headers=["Dataset", "Broken patterns", "Windows"],
    )
    for dataset in DATASET_NAMES:
        pipeline = runner.pipeline(dataset, "sliding_window")
        windows = pipeline.window_set
        table.add_row(
            DATASET_DISPLAY[dataset],
            windows.broken_pattern_count,
            windows.window_count,
        )
    return table
