"""Regeneration harness for every table and figure in the paper."""

from repro.experiments import (
    extensions,
    figures,
    metric_tables,
    table1,
    table5,
    table6,
    triage,
)
from repro.experiments.report import Table, fmt_float, fmt_int

__all__ = [
    "Table",
    "extensions",
    "figures",
    "fmt_float",
    "fmt_int",
    "metric_tables",
    "table1",
    "table5",
    "table6",
    "triage",
]
