"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A titled grid of cells rendered as aligned ASCII."""

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: list[str]) -> str:
            return " | ".join(
                cell.ljust(widths[index]) for index, cell in enumerate(cells)
            ).rstrip()

        separator = "-+-".join("-" * width for width in widths)
        parts = [self.title, line(self.headers), separator]
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)


def fmt_float(value: float, digits: int = 2) -> str:
    """Format like the paper: trim trailing zeros, keep at most
    ``digits`` decimals."""
    text = f"{value:.{digits}f}"
    text = text.rstrip("0").rstrip(".")
    return text if text else "0"


def fmt_int(value: float) -> str:
    return str(int(round(value)))
