"""Table 5 — rule-mining times (simulated seconds)."""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES
from repro.datasets.registry import DISPLAY_NAMES as DATASET_DISPLAY
from repro.experiments.report import Table, fmt_float
from repro.llm.profiles import DISPLAY_NAMES as MODEL_DISPLAY
from repro.llm.profiles import MODEL_NAMES
from repro.mining.runner import ExperimentRunner


def build(runner: ExperimentRunner) -> Table:
    """Build Table 5 across all datasets and configurations."""
    table = Table(
        title="Table 5: LLMs rule mining times (seconds, simulated clock)",
        headers=[
            "Dataset", "Model",
            "SWA Zero-shot", "SWA Few-shot",
            "RAG Zero-shot", "RAG Few-shot",
        ],
    )
    for dataset in DATASET_NAMES:
        for model in MODEL_NAMES:
            cells = [DATASET_DISPLAY[dataset], MODEL_DISPLAY[model]]
            for method in ("sliding_window", "rag"):
                for prompt_mode in ("zero_shot", "few_shot"):
                    run = runner.run(dataset, model, method, prompt_mode)
                    cells.append(fmt_float(run.mining_seconds, 2))
            table.add_row(*cells)
    return table
