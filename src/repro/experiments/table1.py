"""Table 1 — dataset sizes."""

from __future__ import annotations

from repro.datasets.registry import DATASET_NAMES, DISPLAY_NAMES, load
from repro.experiments.report import Table
from repro.graph.statistics import compute_statistics

#: the published Table 1, for verification
PAPER_TABLE1 = {
    "wwc2019": (2468, 14799, 5, 9),
    "cybersecurity": (953, 4838, 7, 16),
    "twitter": (43325, 56493, 6, 8),
}


def build() -> Table:
    """Compute Table 1 from the generated datasets."""
    table = Table(
        title="Table 1: Size of the datasets",
        headers=["Dataset", "Nodes", "Edges", "Node Labels", "Edge Labels"],
    )
    for name in DATASET_NAMES:
        stats = compute_statistics(load(name).graph)
        table.add_row(
            DISPLAY_NAMES[name], stats.nodes, stats.edges,
            stats.node_labels, stats.edge_labels,
        )
    return table


def verify() -> bool:
    """True when every generated dataset matches the published row."""
    for name in DATASET_NAMES:
        stats = compute_statistics(load(name).graph)
        actual = (stats.nodes, stats.edges, stats.node_labels,
                  stats.edge_labels)
        if actual != PAPER_TABLE1[name]:
            return False
    return True
