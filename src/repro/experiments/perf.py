"""Perf-regression gate: baseline profiles with tolerance-band compare.

The simulated LLMs are seeded, so a fixed workload produces
bit-identical counters, span counts and simulated seconds on every
machine — which makes a *tight* performance gate possible: record a
baseline profile once (``repro-experiments perf --record``), check it
in under ``benchmarks/baselines/``, and let CI fail on any drift
(``repro-experiments perf --compare``).

Wall-clock metrics are inherently machine-dependent; they are listed in
the baseline's ``ignore`` list and skipped by :func:`compare`.  The
workload is the cheapest grid slice (cybersecurity × llama3 ×
both methods × zero_shot, ~1s) so the gate is fast enough to run on
every push.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs
from repro.mining.runner import ExperimentRunner

__all__ = [
    "GATEWAY_WORKLOAD",
    "IGNORED_METRICS",
    "REFINE_WORKLOAD",
    "STREAM_WORKLOAD",
    "WORKLOAD",
    "collect_profile",
    "compare",
    "perf_main",
    "profile_from_trace",
]

#: the gate's fixed workload — the cheapest cell pair in the grid
WORKLOAD = {
    "dataset": "cybersecurity",
    "model": "llama3",
    "methods": ["sliding_window", "rag"],
    "prompt_mode": "zero_shot",
}

#: the streaming phase: a fixed narrow delta batch (24 GP_LINK edges no
#: rule observes + 1 CAN_RDP edge exactly one rule observes, ≤1% of the
#: dataset's edges) maintained incrementally — gates the stream.* counters
#: and the ≥5x evaluation-savings claim
STREAM_WORKLOAD = {
    "dataset": "cybersecurity",
    "gp_link_edges": 24,
    "can_rdp_edges": 1,
    "min_eval_savings": 5.0,
}

#: the refine phase: one fault-stressed cell mined with the refine loop
#: enabled — gates the ``refine.*`` / ``analysis.fix.*`` counters and
#: the >=30% recovered-yield floor of the repair machinery
REFINE_WORKLOAD = {
    "dataset": "cybersecurity",
    "model": "mixtral",
    "prompt_mode": "zero_shot",
    "unsat_fault_rate": 0.25,
    "type_fault_rate": 0.15,
    "budget": 2,
    "min_yield": 0.30,
}

#: the gateway phase: one cell served through a real 1-process worker
#: fleet (single worker keeps the ``jobs_dispatched{worker=...}`` label
#: split deterministic) with distributed tracing on — gates the
#: ``gateway.*`` counters and the span counts of the assembled
#: fleet-wide trace, so tracing overhead regressions surface here
GATEWAY_WORKLOAD = {
    "dataset": "cybersecurity",
    "model": "llama3",
    "method": "sliding_window",
    "prompt_mode": "zero_shot",
    "workers": 1,
}

#: metric names carrying wall-clock time: machine-dependent, never gated
IGNORED_METRICS = (
    "cypher.eval_seconds",
    "service.job_seconds",
    "service.job_wait_seconds",
    "service.retry_backoff_seconds",
    "gateway.job_seconds",
    "gateway.queue_wait_seconds",
    "gateway.http.request_seconds",
)

_FORMAT = 1


def _label_key(labels: dict[str, object]) -> str:
    return ",".join(
        f"{key}={value}" for key, value in sorted(labels.items())
    )


def _profile_shell(seed: int) -> dict:
    return {
        "format": _FORMAT,
        "workload": dict(
            WORKLOAD,
            stream=dict(STREAM_WORKLOAD),
            refine=dict(REFINE_WORKLOAD),
            gateway=dict(GATEWAY_WORKLOAD),
        ),
        "seed": seed,
        "ignore": list(IGNORED_METRICS),
        "counters": {},
        "histograms": {},
        "spans": {},
    }


def _run_stream_phase(seed: int) -> None:
    """Incrementally maintain a mined run over a fixed delta batch.

    Runs on a snapshot round-trip *copy* of the dataset — the registry
    caches graph instances in-process, and mutating the shared one would
    poison every later profile.  Emits the deterministic ``stream.*``
    counters the baseline gates, and enforces the evaluation-savings
    floor: the narrow batch must re-evaluate at least
    ``min_eval_savings``x fewer rules than a full recompute would.
    """
    from repro.datasets import load
    from repro.datasets.snapshot import dataset_from_dict, dataset_to_dict
    from repro.graph import GraphChangeLog
    from repro.mining import PipelineContext, SlidingWindowPipeline
    from repro.stream import IncrementalMaintainer

    spec = STREAM_WORKLOAD
    dataset = dataset_from_dict(dataset_to_dict(load(spec["dataset"])))
    context = PipelineContext.build(dataset)
    run = SlidingWindowPipeline(context).mine(
        WORKLOAD["model"], WORKLOAD["prompt_mode"],
    )
    maintainer = IncrementalMaintainer(run, dataset.graph)
    changelog = GraphChangeLog().attach(dataset.graph)

    graph = dataset.graph
    ous = sorted(n.id for n in graph.nodes() if "OU" in n.labels)
    gpos = sorted(n.id for n in graph.nodes() if "GPO" in n.labels)
    users = sorted(n.id for n in graph.nodes() if "User" in n.labels)
    computers = sorted(
        n.id for n in graph.nodes() if "Computer" in n.labels
    )
    with graph.batch():
        for index in range(spec["gp_link_edges"]):
            graph.add_edge(
                f"perf_gp_{index}", "GP_LINK",
                ous[index % len(ous)], gpos[index % len(gpos)],
            )
        for index in range(spec["can_rdp_edges"]):
            graph.add_edge(
                f"perf_rdp_{index}", "CAN_RDP",
                users[index], computers[index],
            )
    report = maintainer.apply(list(changelog.deltas()))
    evaluable = report.total_rules - report.constant_rules
    if report.reevaluated * spec["min_eval_savings"] > evaluable:
        raise AssertionError(
            f"stream phase lost its savings floor: {report.reevaluated} "
            f"of {evaluable} evaluable rules re-evaluated (need "
            f">={spec['min_eval_savings']}x fewer than full re-eval)"
        )


def _run_refine_phase(seed: int) -> None:
    """Mine the fault-stressed refine cell and enforce the yield floor.

    Emits the deterministic ``refine.*`` and ``analysis.fix.*``
    counters the baseline pins, and fails the gate outright when the
    refine loop recovers fewer than ``min_yield`` of the zero-scored
    rules within its retry budget — a faster-looking profile that lost
    its repairs is a regression, not an improvement.
    """
    from repro.experiments.refine_report import yield_rows

    spec = REFINE_WORKLOAD
    rows, _runs = yield_rows(
        spec["dataset"], spec["model"], spec["prompt_mode"],
        budgets=(spec["budget"],), seed=seed,
        unsat_rate=spec["unsat_fault_rate"],
        type_rate=spec["type_fault_rate"],
    )
    row = rows[0]
    if row["zero_scored"] and row["yield"] < spec["min_yield"]:
        raise AssertionError(
            "refine phase lost its recovery floor: "
            f"{row['recovered']} of {row['zero_scored']} zero-scored "
            f"rules recovered ({row['yield']:.0%}; need "
            f">={spec['min_yield']:.0%} at budget {spec['budget']})"
        )


def _run_gateway_phase(seed: int) -> None:
    """Serve one cell through a real one-worker fleet, tracing on.

    Exercises the whole serving path — admission, snapshotting, dispatch
    to a worker *process*, distributed-trace assembly — against a fresh
    temporary cache, so every run actually mines.  The deterministic
    ``gateway.*`` counters land in the profile, and the worker's spans
    (grafted into the assembled fleet trace published to the installed
    collector) pin the span counts of the cross-process tree.
    """
    import tempfile

    from repro.gateway import Gateway

    spec = GATEWAY_WORKLOAD
    with tempfile.TemporaryDirectory(prefix="repro-perf-gw-") as cache_dir:
        gateway = Gateway(cache_dir=cache_dir, workers=spec["workers"])
        try:
            gateway.start()
            job = gateway.submit({
                "dataset": spec["dataset"],
                "model": spec["model"],
                "method": spec["method"],
                "prompt_mode": spec["prompt_mode"],
                "base_seed": seed,
            }, client="perf-gate")
            gateway.result(job.job_id, timeout=120.0)
        finally:
            gateway.stop()


def collect_profile(seed: int = 0) -> dict:
    """Run the gate workload under a fresh collector and profile it."""
    from repro.cypher import clear_plan_caches

    # start from a cold plan cache: the dataset registry reuses graph
    # instances in-process, so a second profile in the same process
    # would otherwise see warm plans and different planner.* counters
    clear_plan_caches()
    # same for the CSR snapshot cache: a warm columnar compile on the
    # shared graph instance would skip the graph.csr.* counters the
    # baseline pins
    from repro.datasets import load

    load(WORKLOAD["dataset"]).graph.invalidate_columnar()
    previous = obs.get_collector()
    collector = obs.TraceCollector()
    obs.install(collector)
    try:
        runner = ExperimentRunner(base_seed=seed)
        for method in WORKLOAD["methods"]:
            runner.run(
                WORKLOAD["dataset"], WORKLOAD["model"],
                method, WORKLOAD["prompt_mode"],
            )
        _run_stream_phase(seed)
        _run_refine_phase(seed)
        _run_gateway_phase(seed)
    finally:
        if previous is not None:
            obs.install(previous)
        else:
            obs.uninstall()

    profile = _profile_shell(seed)
    for instrument in collector.metrics.collect():
        if isinstance(instrument, obs.Histogram):
            series = profile["histograms"].setdefault(instrument.name, {})
            for labels, _state in instrument.samples():
                snap = instrument.snapshot(**labels)
                series[_label_key(labels)] = {
                    "count": snap.count,
                    "sum": round(snap.sum, 6),
                }
        elif isinstance(instrument, obs.Counter):
            series = profile["counters"].setdefault(instrument.name, {})
            for labels, value in instrument.samples():
                series[_label_key(labels)] = value
    for name, stats in collector.aggregate().items():
        profile["spans"][name] = {
            "count": stats.count,
            "sim_seconds": round(stats.sim_seconds, 6),
        }
    return profile


def profile_from_trace(trace: obs.ParsedTrace, seed: int = 0) -> dict:
    """Build a comparable profile from a recorded JSONL trace instead of
    re-running the workload (CI reuses the e2e trace this way)."""
    profile = _profile_shell(seed)
    for record in trace.metrics:
        labels = record.get("labels", {}) or {}
        if record["kind"] == "counter":
            series = profile["counters"].setdefault(record["name"], {})
            series[_label_key(labels)] = record["value"]
        elif record["kind"] == "histogram":
            series = profile["histograms"].setdefault(record["name"], {})
            series[_label_key(labels)] = {
                "count": record["count"],
                "sum": round(record["sum"], 6),
            }
    for name, stats in obs.aggregate_names(trace).items():
        profile["spans"][name] = {
            "count": stats.count,
            "sim_seconds": round(stats.sim_seconds, 6),
        }
    return profile


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def _deviates(baseline: float, current: float, tolerance: float) -> bool:
    if baseline == 0:
        return abs(current) > tolerance
    return abs(current - baseline) / abs(baseline) > tolerance


def compare(
    baseline: dict, current: dict, tolerance: float = 0.02
) -> tuple[list[str], list[str]]:
    """Diff two profiles: ``(regressions, notes)``.

    The workload is deterministic, so *any* drift beyond the tolerance
    band — up or down, or a metric disappearing — is a regression (a
    faster-looking number can mean work silently stopped happening).
    Metrics new in ``current`` are reported as notes, not failures, so
    adding instrumentation never breaks the gate.
    """
    ignore = set(baseline.get("ignore", ())) | set(IGNORED_METRICS)
    regressions: list[str] = []
    notes: list[str] = []

    def check(kind: str, name: str, key: str,
              base_value: float, cur_value: float | None) -> None:
        label = f"{kind} {name}" + (f"{{{key}}}" if key else "")
        if cur_value is None:
            regressions.append(f"{label}: missing (baseline {base_value})")
        elif _deviates(base_value, cur_value, tolerance):
            regressions.append(
                f"{label}: {base_value} -> {cur_value} "
                f"(tolerance {tolerance:.0%})"
            )

    for name, series in baseline.get("counters", {}).items():
        if name in ignore:
            continue
        current_series = current.get("counters", {}).get(name, {})
        for key, base_value in series.items():
            check("counter", name, key, base_value,
                  current_series.get(key))
    for name, series in baseline.get("histograms", {}).items():
        if name in ignore:
            continue
        current_series = current.get("histograms", {}).get(name, {})
        for key, base_state in series.items():
            cur_state = current_series.get(key)
            check("histogram", name, f"{key}.count" if key else "count",
                  base_state["count"],
                  None if cur_state is None else cur_state["count"])
            check("histogram", name, f"{key}.sum" if key else "sum",
                  base_state["sum"],
                  None if cur_state is None else cur_state["sum"])
    for name, base_state in baseline.get("spans", {}).items():
        cur_state = current.get("spans", {}).get(name)
        check("span", name, "count", base_state["count"],
              None if cur_state is None else cur_state["count"])
        check("span", name, "sim_seconds", base_state["sim_seconds"],
              None if cur_state is None else cur_state["sim_seconds"])

    for kind in ("counters", "histograms", "spans"):
        base_names = set(baseline.get(kind, {}))
        for name in sorted(set(current.get(kind, {})) - base_names):
            if name not in ignore:
                notes.append(
                    f"new {kind[:-1]} {name} (not in baseline; "
                    f"re-record to gate it)"
                )
    return regressions, notes


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def perf_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments perf",
        description=(
            "Record or check a performance baseline over the fixed "
            "gate workload (deterministic simulated LLMs make exact "
            "comparison possible; wall-clock metrics are ignored)."
        ),
    )
    parser.add_argument(
        "--record", metavar="PATH", default=None,
        help="run the workload and write the baseline profile to PATH",
    )
    parser.add_argument(
        "--compare", metavar="PATH", default=None,
        help="run the workload and diff against the baseline at PATH",
    )
    parser.add_argument(
        "--from-trace", metavar="PATH", default=None,
        help=(
            "with --compare: profile this recorded JSONL trace instead "
            "of re-running the workload"
        ),
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.02, metavar="FRACTION",
        help="allowed relative drift per metric (default 0.02)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the simulated LLMs (default 0)",
    )
    args = parser.parse_args(argv)
    if bool(args.record) == bool(args.compare):
        parser.error("exactly one of --record / --compare is required")

    if args.record:
        profile = collect_profile(seed=args.seed)
        try:
            with open(args.record, "w", encoding="utf-8") as handle:
                json.dump(profile, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as error:
            print(f"cannot write baseline: {error}", file=sys.stderr)
            return 1
        print(
            f"baseline recorded to {args.record}: "
            f"{len(profile['counters'])} counters, "
            f"{len(profile['histograms'])} histograms, "
            f"{len(profile['spans'])} span names"
        )
        return 0

    try:
        with open(args.compare, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read baseline {args.compare}: {error}",
              file=sys.stderr)
        return 1
    if args.from_trace:
        try:
            trace = obs.load_trace(args.from_trace)
        except (OSError, json.JSONDecodeError, KeyError) as error:
            print(f"cannot read trace {args.from_trace}: {error}",
                  file=sys.stderr)
            return 1
        current = profile_from_trace(trace, seed=args.seed)
    else:
        current = collect_profile(seed=args.seed)

    regressions, notes = compare(
        baseline, current, tolerance=args.tolerance
    )
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"PERF GATE FAILED: {len(regressions)} regression(s) "
              f"vs {args.compare}")
        for item in regressions:
            print(f"  {item}")
        return 1
    print(
        f"perf gate OK vs {args.compare} "
        f"(tolerance {args.tolerance:.0%}, "
        f"{len(baseline.get('counters', {}))} counters, "
        f"{len(baseline.get('spans', {}))} span names)"
    )
    return 0
