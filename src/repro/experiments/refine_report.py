"""Refine-loop yield report: rules recovered per retry budget.

Exposed as ``repro-experiments refine``.  At the study seed the paper
grid produces no statically-doomed final queries, so the report runs a
*stressed* profile — the same simulated model with elevated
contradiction and type-confusion fault rates — over one grid cell and
measures how many zero-scored rules (UNSAT final query, type-confused
comparison, hallucinated or untranslatable rule) each retry budget wins
back.  Budget 0 is the control: the same faulty cell with refinement
disabled, which defines the zero-scored population the yield is
measured against.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.analysis import Verdict
from repro.datasets.registry import DATASET_NAMES, load
from repro.experiments.report import Table
from repro.llm.profiles import MODEL_NAMES, ModelProfile, get_profile
from repro.mining.pipeline import PROMPT_MODES, PipelineContext
from repro.mining.result import MiningRun, RuleResult
from repro.mining.sliding import SlidingWindowPipeline

__all__ = [
    "BUDGETS",
    "STRESS_TYPE_RATE",
    "STRESS_UNSAT_RATE",
    "build_report",
    "refine_main",
    "stressed_profile",
    "yield_rows",
]

#: default stress levels: high enough that every run has a repairable
#: population, low enough that most queries still come out healthy
STRESS_UNSAT_RATE = 0.25
STRESS_TYPE_RATE = 0.15

#: retry budgets compared by the report; 0 is the no-refinement control
BUDGETS = (0, 1, 2)


def stressed_profile(
    model: str,
    unsat_rate: float = STRESS_UNSAT_RATE,
    type_rate: float = STRESS_TYPE_RATE,
) -> ModelProfile:
    """The named profile with elevated semantic-fault rates."""
    return dataclasses.replace(
        get_profile(model),
        unsat_fault_rate=unsat_rate,
        type_fault_rate=type_rate,
    )


def _zero_scored(result: RuleResult) -> bool:
    """Would the refine loop have been invoked on this result?

    Mirrors the trigger in ``BasePipeline.translate_and_score``: the
    bundle was triaged out, never translated, or scored support 0.
    """
    return (
        result.triage_skipped
        or result.outcome.metric_queries is None
        or result.metrics.support == 0
    )


def _recovered_by(run: MiningRun, strategy: str) -> int:
    return sum(
        1 for result in run.results
        if result.refinement is not None
        and result.refinement.recovered
        and result.refinement.attempts
        and result.refinement.attempts[-1].strategy == strategy
    )


def yield_rows(
    dataset: str,
    model: str,
    prompt_mode: str,
    budgets: tuple[int, ...] = BUDGETS,
    seed: int = 0,
    unsat_rate: float = STRESS_UNSAT_RATE,
    type_rate: float = STRESS_TYPE_RATE,
) -> tuple[list[dict], list[MiningRun]]:
    """Mine the stressed cell once per budget; one stats row per budget.

    The simulated LLM derives its randomness per prompt, so every budget
    sees the *same* mined rules and the same injected faults — the only
    variable is how hard the refine loop may try.  The budget-0 run
    therefore defines the zero-scored population every later yield is
    measured against.
    """
    profile = stressed_profile(model, unsat_rate, type_rate)
    context = PipelineContext.build(load(dataset))
    rows: list[dict] = []
    runs: list[MiningRun] = []
    baseline_zero: int | None = None
    for budget in budgets:
        pipeline = SlidingWindowPipeline(
            context, base_seed=seed, refine_budget=budget
        )
        run = pipeline.mine(profile, prompt_mode)
        runs.append(run)
        zero = (
            sum(1 for result in run.results if _zero_scored(result))
            if budget == 0 else run.refined
        )
        if baseline_zero is None:
            baseline_zero = zero
        recovered = run.recovered
        denominator = baseline_zero or zero
        rows.append({
            "budget": budget,
            "rules": run.rule_count,
            "zero_scored": zero,
            "fix_repaired": _recovered_by(run, "fix"),
            "regenerated": _recovered_by(run, "regenerate"),
            "recovered": recovered,
            "yield": (recovered / denominator) if denominator else 0.0,
            "refine_llm_calls": sum(
                result.refinement.llm_calls
                for result in run.results
                if result.refinement is not None
            ),
        })
    return rows, runs


def build_report(rows: list[dict], cell: dict) -> Table:
    table = Table(
        title=(
            "Refine loop: recovered yield per retry budget "
            f"({cell['dataset']} x {cell['model']} x "
            f"{cell['prompt_mode']}, stressed "
            f"unsat={cell['unsat_fault_rate']:g} "
            f"type={cell['type_fault_rate']:g})"
        ),
        headers=[
            "Budget", "Rules", "Zero-scored", "Fix-repaired",
            "Regenerated", "Recovered", "Yield", "LLM calls",
        ],
    )
    for row in rows:
        table.add_row(
            row["budget"], row["rules"], row["zero_scored"],
            row["fix_repaired"], row["regenerated"], row["recovered"],
            f"{row['yield']:.0%}", row["refine_llm_calls"],
        )
    return table


def _unsat_fix_repairs(run: MiningRun) -> int:
    """Recoveries whose mechanical fix started from an UNSAT query."""
    return sum(
        1 for result in run.results
        if result.refinement is not None
        and result.refinement.recovered
        and result.refinement.fix is not None
        and result.refinement.fix.verdict_before is Verdict.UNSAT
    )


def refine_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments refine",
        description=(
            "Measure the analyzer-guided refine loop: mine one grid "
            "cell with a fault-stressed simulated model, then report "
            "how many zero-scored rules each retry budget recovers."
        ),
    )
    parser.add_argument(
        "--dataset", choices=DATASET_NAMES, default="cybersecurity",
        help="dataset to mine (default: cybersecurity)",
    )
    parser.add_argument(
        "--model", choices=MODEL_NAMES, default="mixtral",
        help="profile to stress (default: mixtral)",
    )
    parser.add_argument(
        "--prompt", choices=PROMPT_MODES, default="zero_shot",
        help="prompt mode (default: zero_shot)",
    )
    parser.add_argument(
        "--budgets", type=int, nargs="+", default=list(BUDGETS),
        metavar="N",
        help="retry budgets to compare (default: 0 1 2)",
    )
    parser.add_argument(
        "--unsat-rate", type=float, default=STRESS_UNSAT_RATE,
        metavar="P",
        help=f"injected contradiction rate (default {STRESS_UNSAT_RATE})",
    )
    parser.add_argument(
        "--type-rate", type=float, default=STRESS_TYPE_RATE,
        metavar="P",
        help=f"injected type-confusion rate (default {STRESS_TYPE_RATE})",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for the simulated LLMs (default 0)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the rows as JSON instead of a table",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=(
            "CI smoke gate: fail unless at least one UNSAT query was "
            "mechanically repaired end-to-end and the largest budget "
            "recovers at least 30%% of the zero-scored rules"
        ),
    )
    args = parser.parse_args(argv)

    budgets = tuple(dict.fromkeys(args.budgets))
    if any(budget < 0 for budget in budgets):
        parser.error("budgets must be >= 0")
    if args.smoke and not any(budgets):
        parser.error("--smoke needs at least one budget > 0")

    cell = {
        "dataset": args.dataset,
        "model": args.model,
        "method": "sliding_window",
        "prompt_mode": args.prompt,
        "unsat_fault_rate": args.unsat_rate,
        "type_fault_rate": args.type_rate,
        "seed": args.seed,
    }
    rows, runs = yield_rows(
        args.dataset, args.model, args.prompt,
        budgets=budgets, seed=args.seed,
        unsat_rate=args.unsat_rate, type_rate=args.type_rate,
    )

    if args.json:
        print(json.dumps({"cell": cell, "rows": rows}, indent=2))
    else:
        print(build_report(rows, cell).render())

    if args.smoke:
        best_index = max(
            range(len(budgets)), key=lambda index: budgets[index]
        )
        best_row, best_run = rows[best_index], runs[best_index]
        unsat_repairs = _unsat_fix_repairs(best_run)
        failures = []
        if unsat_repairs < 1:
            failures.append(
                "no UNSAT query was mechanically repaired end-to-end"
            )
        if best_row["yield"] < 0.30:
            failures.append(
                f"yield {best_row['yield']:.0%} at budget "
                f"{best_row['budget']} is below the 30% floor"
            )
        if failures:
            for failure in failures:
                print(f"REFINE SMOKE FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"refine smoke OK: {unsat_repairs} UNSAT repair(s), "
            f"{best_row['recovered']}/{best_row['zero_scored']} recovered "
            f"({best_row['yield']:.0%}) at budget {best_row['budget']}"
        )
    return 0
