"""``repro-experiments profile`` — offline trace intelligence.

Takes a JSONL trace recorded with ``--trace-out`` and renders the
profiler views from :mod:`repro.obs.analyze`: the top-N span table
(sorted by self wall time), the critical path of the heaviest root, and
LLM cost attribution (``--attr rule|window|dataset|job|stage``).  The
same run can be exported as a folded-stack flamegraph
(``--flamegraph``) or a Chrome ``trace_event`` file (``--chrome``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import obs

#: how deep the printed critical path goes; exports are never truncated
_PATH_LIMIT = 12


def _top_table(trace: obs.ParsedTrace, top: int) -> str:
    stats = sorted(
        obs.aggregate_names(trace).values(),
        key=lambda entry: (-entry.self_wall_seconds, entry.name),
    )
    rows = [
        [
            entry.name,
            str(entry.count),
            f"{entry.self_wall_seconds:.4f}",
            f"{entry.wall_seconds:.4f}",
            f"{entry.sim_seconds:.2f}",
            str(entry.tokens),
        ]
        for entry in stats[:top]
    ]
    lines = [f"top {min(top, len(stats))} spans by self wall time"]
    lines.extend(obs.render_rows(
        ["span", "count", "self wall s", "wall s", "sim s", "tokens"],
        rows,
    ))
    if len(stats) > top:
        lines.append(f"... {len(stats) - top} more span names")
    return "\n".join(lines)


def _critical_path_table(trace: obs.ParsedTrace, metric: str) -> str:
    # tokens make a fine flamegraph width but not a path metric
    path_metric = metric if metric in ("wall", "sim") else "wall"
    root = max(
        trace.roots,
        key=lambda span: span.wall_seconds,
    )
    path = obs.critical_path(root, metric=path_metric)
    lines = [f"critical path (by {path_metric}, heaviest root)"]
    for depth, (span, total) in enumerate(path[:_PATH_LIMIT]):
        unit = "s"
        lines.append(
            f"  {'  ' * depth}{span.name}  {total:.4f}{unit}"
        )
    if len(path) > _PATH_LIMIT:
        lines.append(f"  ... {len(path) - _PATH_LIMIT} deeper spans")
    return "\n".join(lines)


def _attribution_table(trace: obs.ParsedTrace, by: str) -> str:
    rows = obs.attribute_costs(trace, by=by)
    table = [
        [
            row.key,
            str(row.calls),
            str(row.prompt_tokens),
            str(row.completion_tokens),
            str(row.tokens),
            f"{row.sim_seconds:.2f}",
        ]
        for row in rows
    ]
    total_tokens = sum(row.tokens for row in rows)
    lines = [f"LLM cost attribution by {by} ({total_tokens} tokens total)"]
    lines.extend(obs.render_rows(
        ["group", "calls", "prompt", "completion", "tokens", "sim s"],
        table,
    ))
    return "\n".join(lines)


def profile_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments profile",
        description=(
            "Analyze a recorded JSONL trace: top spans, critical path, "
            "LLM cost attribution, flamegraph and Chrome trace export."
        ),
    )
    parser.add_argument("trace", help="JSONL trace from --trace-out")
    parser.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="span names to show in the top table (default 15)",
    )
    parser.add_argument(
        "--attr", choices=obs.ATTRIBUTION_MODES, default="stage",
        help="group LLM costs by this dimension (default: stage)",
    )
    parser.add_argument(
        "--metric", choices=("wall", "sim", "tokens"), default="wall",
        help="value driving the flamegraph/critical path (default: wall)",
    )
    parser.add_argument(
        "--flamegraph", metavar="PATH", default=None,
        help="write folded stacks (flamegraph.pl / speedscope) to PATH",
    )
    parser.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="write Chrome trace_event JSON (chrome://tracing) to PATH",
    )
    args = parser.parse_args(argv)

    try:
        trace = obs.load_trace(args.trace)
    except (OSError, json.JSONDecodeError, KeyError) as error:
        print(f"cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 1
    if not trace.roots:
        print(f"no spans in {args.trace}", file=sys.stderr)
        return 1

    sections = [
        _top_table(trace, args.top),
        _critical_path_table(trace, args.metric),
        _attribution_table(trace, args.attr),
    ]
    print("\n\n".join(sections))

    try:
        if args.flamegraph:
            folded = obs.flamegraph_folded(trace, metric=args.metric)
            with open(args.flamegraph, "w", encoding="utf-8") as handle:
                handle.write(folded)
            print(f"\nflamegraph ({args.metric}) written to "
                  f"{args.flamegraph}")
        if args.chrome:
            with open(args.chrome, "w", encoding="utf-8") as handle:
                handle.write(obs.chrome_trace(trace))
            print(f"chrome trace written to {args.chrome}")
    except OSError as error:
        print(f"cannot write export: {error}", file=sys.stderr)
        return 1
    return 0
