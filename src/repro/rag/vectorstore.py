"""In-memory vector store with cosine top-k retrieval."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.rag.embeddings import HashedEmbedder


@dataclass(frozen=True)
class ScoredChunk:
    """A retrieval hit: the chunk text, its id and the similarity score."""

    chunk_id: int
    text: str
    score: float


class VectorStore:
    """Stores embedded text chunks; retrieves by cosine similarity.

    Ties are broken by insertion order, making retrieval deterministic.
    """

    def __init__(self, embedder: HashedEmbedder | None = None) -> None:
        self.embedder = embedder or HashedEmbedder()
        self._texts: list[str] = []
        self._matrix: np.ndarray | None = None

    # ------------------------------------------------------------------
    def add(self, texts: list[str]) -> None:
        """Embed and index a batch of chunks."""
        if not texts:
            return
        with obs.span("vectorstore.add", chunks=len(texts)):
            new_vectors = self.embedder.embed_many(texts)
            if self._matrix is None:
                self._matrix = new_vectors
            else:
                self._matrix = np.vstack([self._matrix, new_vectors])
            self._texts.extend(texts)
            obs.inc("rag.chunks_indexed", len(texts))

    def __len__(self) -> int:
        return len(self._texts)

    def retrieve(
        self, query: str, top_k: int = 4, diversity: float = 0.0
    ) -> list[ScoredChunk]:
        """The ``top_k`` chunks most similar to ``query``.

        ``diversity`` in (0, 1] enables maximal-marginal-relevance
        selection: each pick maximises
        ``(1 - diversity) * sim(query) - diversity * max sim(picked)``,
        trading raw similarity for coverage of distinct graph regions —
        the standard retriever setting in RAG frameworks.
        """
        if top_k <= 0 or self._matrix is None or not self._texts:
            return []
        query_vector = self.embedder.embed(query)
        scores = self._matrix @ query_vector
        if diversity <= 0.0:
            order = sorted(
                range(len(scores)), key=lambda i: (-scores[i], i)
            )
            picked = order[:top_k]
        else:
            picked = self._mmr(query_vector, scores, top_k, diversity)
        return [
            ScoredChunk(chunk_id=i, text=self._texts[i], score=float(scores[i]))
            for i in picked
        ]

    def _mmr(
        self,
        query_vector: np.ndarray,
        scores: np.ndarray,
        top_k: int,
        diversity: float,
    ) -> list[int]:
        remaining = sorted(
            range(len(scores)), key=lambda i: (-scores[i], i)
        )[: max(top_k * 4, 32)]  # MMR over a candidate pool, not everything
        picked: list[int] = []
        while remaining and len(picked) < top_k:
            best = None
            best_score = float("-inf")
            for index in remaining:
                redundancy = 0.0
                if picked:
                    redundancy = float(
                        max(
                            self._matrix[index] @ self._matrix[other]
                            for other in picked
                        )
                    )
                mmr = (1 - diversity) * float(scores[index]) \
                    - diversity * redundancy
                if mmr > best_score:
                    best_score = mmr
                    best = index
            picked.append(best)
            remaining.remove(best)
        return picked
