"""RAG retrieval stage (Figure 2b).

The encoded graph is chunked (much smaller chunks than the sliding
windows, as is standard for RAG), embedded, stored, and queried with the
rule-mining prompt.  The retrieved chunks form the only graph context the
LLM sees — the mechanism behind RAG's lower coverage in the study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.encoding.incident import Statement
from repro.encoding.tokenizer import count_tokens
from repro.rag.embeddings import HashedEmbedder
from repro.rag.vectorstore import ScoredChunk, VectorStore

#: Default chunking/retrieval parameters: statements are grouped into
#: ~512-token chunks and the top 16 chunks are retrieved — a few
#: thousand tokens of context, small relative to the graph, by design.
DEFAULT_CHUNK_TOKENS = 512
DEFAULT_TOP_K = 16
#: MMR diversity weight: standard retriever setting, trades similarity
#: for coverage of distinct graph regions
DEFAULT_DIVERSITY = 0.25


@dataclass
class RetrievalResult:
    """Outcome of one retrieval: the hits and the stitched context."""

    hits: list[ScoredChunk]
    context: str
    chunk_count: int

    @property
    def retrieved_fraction(self) -> float:
        return len(self.hits) / self.chunk_count if self.chunk_count else 0.0


class GraphRetriever:
    """Chunk → embed → store → retrieve for encoded graph statements."""

    def __init__(
        self,
        chunk_tokens: int = DEFAULT_CHUNK_TOKENS,
        top_k: int = DEFAULT_TOP_K,
        embedder: HashedEmbedder | None = None,
        diversity: float = DEFAULT_DIVERSITY,
    ) -> None:
        if chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        if not 0.0 <= diversity <= 1.0:
            raise ValueError("diversity must be in [0, 1]")
        self.chunk_tokens = chunk_tokens
        self.top_k = top_k
        self.diversity = diversity
        self.store = VectorStore(embedder=embedder)
        self._chunk_count = 0

    # ------------------------------------------------------------------
    def index_statements(self, statements: list[Statement]) -> int:
        """Group whole statements into chunks and index them.

        Unlike the sliding windows, RAG chunks never split a statement:
        the vector DB stores syntactically complete units (as a langchain
        text splitter on sentence boundaries would).
        """
        with obs.span("rag.index", statements=len(statements)) as sp:
            chunks: list[str] = []
            current: list[str] = []
            current_tokens = 0
            for statement in statements:
                statement_tokens = count_tokens(statement.text)
                if current and current_tokens + statement_tokens > self.chunk_tokens:
                    chunks.append("\n".join(current))
                    current = []
                    current_tokens = 0
                current.append(statement.text)
                current_tokens += statement_tokens
            if current:
                chunks.append("\n".join(current))
            self.store.add(chunks)
            self._chunk_count += len(chunks)
            sp.set_attribute("chunks", len(chunks))
        return len(chunks)

    def retrieve(self, query: str, top_k: int | None = None) -> RetrievalResult:
        """Retrieve context chunks for ``query``."""
        k = top_k if top_k is not None else self.top_k
        with obs.span("retrieve", top_k=k) as sp:
            hits = self.store.retrieve(
                query, top_k=k, diversity=self.diversity
            )
            context = "\n".join(hit.text for hit in hits)
            sp.set_attribute("chunks", len(hits))
            sp.set_attribute("chunk_count", self._chunk_count)
            obs.inc("rag.retrievals")
            obs.inc("rag.chunks_retrieved", len(hits))
            for hit in hits:
                obs.observe("rag.similarity", hit.score)
        return RetrievalResult(
            hits=hits, context=context, chunk_count=self._chunk_count
        )
