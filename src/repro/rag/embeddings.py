"""Deterministic text embeddings (GPT4AllEmbeddings substitute).

The paper embeds encoded-graph chunks with ``GPT4AllEmbeddings`` from
``langchain_community`` and stores them in a vector database.  Offline we
substitute a *feature-hashed bag-of-tokens* embedder: each token is hashed
(stable across runs via SHA-1, not Python's randomized ``hash``) into a
fixed-dimension vector with a signed weight, vectors are L2-normalised,
and cosine similarity gives lexical-overlap retrieval.  This retains the
property the study depends on: chunks are retrieved by textual similarity
to the query, and a generic "generate consistency rules" query retrieves a
biased, incomplete subset of the graph (§4.5's explanation of RAG's
underperformance).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.encoding.tokenizer import split_tokens

DEFAULT_DIMENSION = 256


class HashedEmbedder:
    """Feature-hashing bag-of-tokens embedder with L2 normalisation."""

    def __init__(self, dimension: int = DEFAULT_DIMENSION) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = dimension
        self._token_cache: dict[str, tuple[int, float]] = {}

    # ------------------------------------------------------------------
    def _token_slot(self, token: str) -> tuple[int, float]:
        """(bucket index, sign) for one token, cached."""
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        digest = hashlib.sha1(token.lower().encode("utf-8")).digest()
        bucket = int.from_bytes(digest[:4], "big") % self.dimension
        sign = 1.0 if digest[4] % 2 == 0 else -1.0
        slot = (bucket, sign)
        self._token_cache[token] = slot
        return slot

    def embed(self, text: str) -> np.ndarray:
        """Embed one text into a unit-norm vector (zero vector if empty)."""
        vector = np.zeros(self.dimension, dtype=np.float64)
        for token in split_tokens(text):
            bucket, sign = self._token_slot(token)
            vector[bucket] += sign
        norm = np.linalg.norm(vector)
        if norm > 0:
            vector /= norm
        return vector

    def embed_many(self, texts: list[str]) -> np.ndarray:
        """Embed several texts into a (len(texts), dimension) matrix."""
        if not texts:
            return np.zeros((0, self.dimension), dtype=np.float64)
        return np.vstack([self.embed(text) for text in texts])


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two vectors (0.0 when either is zero)."""
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom == 0.0:
        return 0.0
    return float(np.dot(a, b) / denom)
