"""Retrieval-augmented generation substrate: embeddings, store, retriever."""

from repro.rag.embeddings import (
    DEFAULT_DIMENSION,
    HashedEmbedder,
    cosine_similarity,
)
from repro.rag.retriever import (
    DEFAULT_CHUNK_TOKENS,
    DEFAULT_TOP_K,
    GraphRetriever,
    RetrievalResult,
)
from repro.rag.vectorstore import ScoredChunk, VectorStore

__all__ = [
    "DEFAULT_CHUNK_TOKENS",
    "DEFAULT_DIMENSION",
    "DEFAULT_TOP_K",
    "GraphRetriever",
    "HashedEmbedder",
    "RetrievalResult",
    "ScoredChunk",
    "VectorStore",
    "cosine_similarity",
]
