"""Type inference over property accesses against the inferred schema.

The :class:`~repro.graph.schema.PropertyProfile` of every (label, key)
pair records the value types actually observed in the data.  Resolving a
query's property accesses against those profiles exposes comparisons
that can never hold — a string property compared to an integer, a regex
matched against a number, arithmetic on temporal values — exactly the
"type-confused" rules the paper would count as silently useless.

Everything here is a WARN: Cypher's three-valued logic turns a
mis-typed comparison into ``null`` (the row is filtered), so the query
still *runs* — it just cannot mean what its author intended.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.dataflow import VariableTable
from repro.analysis.findings import Finding
from repro.cypher.ast_nodes import (
    BinaryOp,
    CaseExpression,
    Expression,
    FunctionCall,
    InList,
    ListComprehension,
    ListLiteral,
    Literal,
    MatchClause,
    NodePattern,
    PropertyAccess,
    RegexMatch,
    RelPattern,
    ReturnClause,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)
from repro.cypher.render import render_expression
from repro.graph.schema import GraphSchema

PASS = "types"

#: observed type name → comparison class
_CLASS_OF = {
    "integer": "number",
    "float": "number",
    "string": "string",
    "boolean": "boolean",
    "list": "list",
    "date": "temporal",
    "datetime": "temporal",
    "time": "temporal",
    "duration": "temporal",
}

_COMPARISON_OPS = ("<", "<=", ">", ">=")
_EQUALITY_OPS = ("=", "<>")
_ARITHMETIC_OPS = ("+", "-", "*", "/", "%", "^")


def classes_of_value(value: object) -> frozenset[str]:
    if value is None:
        return frozenset()
    if isinstance(value, bool):
        return frozenset({"boolean"})
    if isinstance(value, (int, float)):
        return frozenset({"number"})
    if isinstance(value, str):
        return frozenset({"string"})
    if isinstance(value, (list, tuple)):
        return frozenset({"list"})
    return frozenset()


class TypeChecker:
    """Infers expression type classes and reports confusions."""

    def __init__(self, schema: GraphSchema, table: VariableTable) -> None:
        self.schema = schema
        self.table = table
        self.findings: list[Finding] = []

    # ------------------------------------------------------------------
    # inference: returns the set of possible type classes, or None when
    # nothing is known (unknown propagates silently — never over-claim)
    # ------------------------------------------------------------------
    def classes(self, expr: Expression) -> Optional[frozenset[str]]:
        if isinstance(expr, Literal):
            classes = classes_of_value(expr.value)
            return classes or None
        if isinstance(expr, PropertyAccess):
            return self._property_classes(expr)
        if isinstance(expr, (StringPredicate, RegexMatch, InList)):
            return frozenset({"boolean"})
        if isinstance(expr, BinaryOp):
            if expr.op in ("AND", "OR", "XOR"):
                return frozenset({"boolean"})
            if expr.op in _COMPARISON_OPS + _EQUALITY_OPS:
                return frozenset({"boolean"})
            if expr.op in _ARITHMETIC_OPS:
                left = self.classes(expr.left)
                right = self.classes(expr.right)
                if expr.op == "+" and (
                    left == frozenset({"string"})
                    or right == frozenset({"string"})
                ):
                    return frozenset({"string"})
                if left == right == frozenset({"number"}):
                    return frozenset({"number"})
                return None
            return None
        if isinstance(expr, UnaryOp):
            if expr.op == "NOT":
                return frozenset({"boolean"})
            return self.classes(expr.operand)
        if isinstance(expr, FunctionCall):
            return _FUNCTION_CLASSES.get(expr.name)
        if isinstance(expr, ListLiteral):
            return frozenset({"list"})
        return None

    def _property_classes(
        self, expr: PropertyAccess
    ) -> Optional[frozenset[str]]:
        if not isinstance(expr.subject, Variable):
            return None
        info = self.table.get(expr.subject.name)
        if info is None or not info.labels:
            return None
        profiles = (
            self.schema.node_profiles if info.kind == "node"
            else self.schema.edge_profiles if info.kind == "edge"
            else None
        )
        if profiles is None:
            return None
        observed: set[str] = set()
        for label in info.labels:
            profile = profiles.get(label)
            if profile is None:
                return None       # hallucinated label: the linter's beat
            prop = profile.properties.get(expr.key)
            if prop is None:
                continue          # hallucinated key: also the linter's beat
            observed.update(prop.types)
        if not observed:
            return None
        classes = {_CLASS_OF.get(name, "other") for name in observed}
        return frozenset(classes)

    # ------------------------------------------------------------------
    # the pass
    # ------------------------------------------------------------------
    def check_expression(self, expr: Expression) -> None:
        if isinstance(expr, BinaryOp):
            self.check_expression(expr.left)
            self.check_expression(expr.right)
            if expr.op in _COMPARISON_OPS + _EQUALITY_OPS:
                self._check_comparison(expr)
            elif expr.op in _ARITHMETIC_OPS:
                self._check_arithmetic(expr)
            return
        if isinstance(expr, RegexMatch):
            self.check_expression(expr.left)
            self.check_expression(expr.right)
            left = self.classes(expr.left)
            if left is not None and "string" not in left:
                self.findings.append(Finding(
                    PASS, "regex-on-non-string",
                    f"regex match on {_describe(left)} expression "
                    f"{render_expression(expr.left)!r} can never succeed",
                    subject=render_expression(expr.left),
                ))
            return
        if isinstance(expr, StringPredicate):
            self.check_expression(expr.left)
            self.check_expression(expr.right)
            for side in (expr.left, expr.right):
                classes = self.classes(side)
                if classes is not None and "string" not in classes:
                    self.findings.append(Finding(
                        PASS, "string-predicate-on-non-string",
                        f"{expr.kind} applied to {_describe(classes)} "
                        f"expression {render_expression(side)!r}",
                        subject=render_expression(side),
                    ))
            return
        if isinstance(expr, UnaryOp):
            self.check_expression(expr.operand)
            return
        if isinstance(expr, FunctionCall):
            for arg in expr.args:
                self.check_expression(arg)
            return
        if isinstance(expr, InList):
            self.check_expression(expr.needle)
            self.check_expression(expr.haystack)
            self._check_in_list(expr)
            return
        if isinstance(expr, CaseExpression):
            if expr.operand is not None:
                self.check_expression(expr.operand)
            for condition, result in expr.whens:
                self.check_expression(condition)
                self.check_expression(result)
            if expr.default is not None:
                self.check_expression(expr.default)
            return
        if isinstance(expr, ListComprehension):
            self.check_expression(expr.source)
            if expr.predicate is not None:
                self.check_expression(expr.predicate)
            if expr.projection is not None:
                self.check_expression(expr.projection)
            return
        for attr in ("subject", "operand", "needle"):
            child = getattr(expr, attr, None)
            if isinstance(child, Expression):
                self.check_expression(child)

    def _check_comparison(self, expr: BinaryOp) -> None:
        for side in (expr.left, expr.right):
            if isinstance(side, Literal) and side.value is None:
                self.findings.append(Finding(
                    PASS, "comparison-with-null",
                    f"'{expr.op}' against NULL is always null, never "
                    "true; use IS NULL / IS NOT NULL instead",
                    subject=render_expression(expr),
                ))
                return
        left = self.classes(expr.left)
        right = self.classes(expr.right)
        if left is None or right is None:
            return
        if left & right:
            if expr.op in _COMPARISON_OPS and left == right == frozenset(
                {"temporal"}
            ):
                return               # temporal ordering is meaningful
            return
        verb = (
            "ordered against" if expr.op in _COMPARISON_OPS
            else "compared for equality with"
        )
        self.findings.append(Finding(
            PASS, "type-confused-comparison",
            f"{_describe(left)} expression "
            f"{render_expression(expr.left)!r} {verb} "
            f"{_describe(right)} {render_expression(expr.right)!r}: the "
            "comparison can never hold",
            subject=render_expression(expr.left),
        ))

    def _check_arithmetic(self, expr: BinaryOp) -> None:
        left = self.classes(expr.left)
        right = self.classes(expr.right)
        for classes, side in ((left, expr.left), (right, expr.right)):
            if classes is None:
                continue
            if classes <= {"boolean"}:
                self.findings.append(Finding(
                    PASS, "arithmetic-on-boolean",
                    f"arithmetic '{expr.op}' on boolean expression "
                    f"{render_expression(side)!r}",
                    subject=render_expression(side),
                ))
            elif classes <= {"temporal"}:
                self.findings.append(Finding(
                    PASS, "arithmetic-on-temporal",
                    f"arithmetic '{expr.op}' on temporal expression "
                    f"{render_expression(side)!r}; compare temporals, "
                    "do not add them",
                    subject=render_expression(side),
                ))
            elif classes <= {"string"} and expr.op != "+":
                self.findings.append(Finding(
                    PASS, "arithmetic-on-string",
                    f"arithmetic '{expr.op}' on string expression "
                    f"{render_expression(side)!r}",
                    subject=render_expression(side),
                ))

    def check_pattern_property(
        self, variable: Optional[str], key: str, value: Expression
    ) -> None:
        """Pattern map entry ``{key: value}`` is an implicit equality."""
        if variable is None:
            return
        declared = self._property_classes(
            PropertyAccess(Variable(variable), key)
        )
        given = self.classes(value)
        if declared is None or given is None or declared & given:
            return
        self.findings.append(Finding(
            PASS, "type-confused-comparison",
            f"pattern property {variable}.{key} is "
            f"{_describe(declared)} in the data but matched against "
            f"{_describe(given)} value {render_expression(value)!r}",
            subject=f"{variable}.{key}",
        ))

    def _check_in_list(self, expr: InList) -> None:
        needle = self.classes(expr.needle)
        if needle is None or not isinstance(expr.haystack, ListLiteral):
            return
        item_classes: set[str] = set()
        for item in expr.haystack.items:
            classes = self.classes(item)
            if classes is None:
                return
            item_classes.update(classes)
        if item_classes and not (needle & item_classes):
            self.findings.append(Finding(
                PASS, "type-confused-comparison",
                f"{_describe(needle)} expression "
                f"{render_expression(expr.needle)!r} tested against a "
                f"list of {_describe(frozenset(item_classes))} values",
                subject=render_expression(expr.needle),
            ))


_FUNCTION_CLASSES: dict[str, frozenset[str]] = {
    "tostring": frozenset({"string"}),
    "toupper": frozenset({"string"}),
    "tolower": frozenset({"string"}),
    "upper": frozenset({"string"}),
    "lower": frozenset({"string"}),
    "trim": frozenset({"string"}),
    "tointeger": frozenset({"number"}),
    "toint": frozenset({"number"}),
    "tofloat": frozenset({"number"}),
    "abs": frozenset({"number"}),
    "size": frozenset({"number"}),
    "length": frozenset({"number"}),
    "count": frozenset({"number"}),
    "sum": frozenset({"number"}),
    "avg": frozenset({"number"}),
    "toboolean": frozenset({"boolean"}),
    "collect": frozenset({"list"}),
    "labels": frozenset({"list"}),
    "keys": frozenset({"list"}),
    "split": frozenset({"list"}),
}


def _describe(classes: frozenset[str]) -> str:
    return "/".join(sorted(classes))


def analyze_types(
    query, schema: GraphSchema, table: VariableTable
) -> list[Finding]:
    """Run the type pass over a full (possibly UNION) query."""
    checker = TypeChecker(schema, table)

    def walk(single: SingleQuery) -> None:
        for clause in single.clauses:
            if isinstance(clause, MatchClause):
                for pattern in clause.patterns:
                    for element in pattern.elements:
                        if isinstance(element, (NodePattern, RelPattern)):
                            for key, value in element.properties:
                                checker.check_expression(value)
                                checker.check_pattern_property(
                                    element.variable, key, value
                                )
                if clause.where is not None:
                    checker.check_expression(clause.where)
            elif isinstance(clause, UnwindClause):
                checker.check_expression(clause.expression)
            elif isinstance(clause, (WithClause, ReturnClause)):
                for item in clause.items:
                    checker.check_expression(item.expression)
                for order_item in clause.order_by:
                    checker.check_expression(order_item.expression)
                where = getattr(clause, "where", None)
                if where is not None:
                    checker.check_expression(where)

    if isinstance(query, UnionQuery):
        for sub in query.queries:
            walk(sub)
    else:
        walk(query)
    return checker.findings
