"""Cross-rule implication: proving one rule strictly subsumes another.

Canonical signatures (:mod:`repro.analysis.canonical`) catch *equal*
rules; they cannot see that ``n.status IN ['a', 'b']`` is strictly
stronger than ``n.status IS NOT NULL``.  Mining runs regularly emit such
strictly-weaker duplicates — a VALUE_DOMAIN rule alongside the
PROPERTY_EXISTS rule it entails — and the paper counts them as one.

This module proves ``A ⇒ B`` over a conjunct lattice: both queries must
decompose into the same pattern (under a *pattern-only* alpha renaming)
with the same RETURN shape, and every conjunct of the weaker query must
be either canonically present in the stronger one or entailed by the
stronger query's accumulated :class:`~repro.analysis.satisfiability.
Domain` for the same subject.

**Soundness contract** (enforced by the hypothesis suite): when
``implies(A, B)`` is True, the solution rows of ``A`` are a subset of
the solution rows of ``B`` on *every* graph.  Everything not fully
understood is answered False — a missed implication only costs a missed
dedup, never a wrongly-pruned rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.analysis.canonical import (
    _collect_variables,
    _pattern_atoms,
    _Renamer,
)
from repro.analysis.satisfiability import (
    Bound,
    ClauseAnalyzer,
    Domain,
    _ordered,
    _values_equal,
    flatten_and,
)
from repro.cypher import CypherError, parse
from repro.cypher.ast_nodes import (
    Expression,
    MatchClause,
    ReturnClause,
    SingleQuery,
)
from repro.cypher.render import render_expression


@dataclass
class QueryParts:
    """A query decomposed for implication checking."""

    atoms: tuple[str, ...]              # canonical pattern atoms
    conjuncts: list[Expression]         # renamed WHERE conjuncts
    conjunct_texts: set[str]            # rendered forms for exact matching
    return_sig: str
    analyzer: ClauseAnalyzer            # domains over all conjuncts
    unsat: bool                         # provably zero solution rows


def _pattern_renaming(query: SingleQuery) -> dict[str, str]:
    """Alpha renaming from *pattern* invariants only (kind + labels +
    first occurrence).  The full :func:`canonical_renaming` also hashes
    WHERE-conjunct shapes into the ordering, which would rename the
    strong and weak queries inconsistently whenever their predicates
    differ — exactly the case implication needs to compare."""
    variables = _collect_variables(query)
    ordered = sorted(
        variables,
        key=lambda name: (
            variables[name][0],
            variables[name][1],
            variables[name][2],
        ),
    )
    return {name: f"v{index}" for index, name in enumerate(ordered)}


def query_parts(query_text: str) -> Optional[QueryParts]:
    """Decompose a single-MATCH-block query, or None when out of scope.

    In scope: a :class:`SingleQuery` of non-optional MATCH clauses
    followed by one RETURN without ORDER BY / SKIP / LIMIT.  Everything
    else (UNION, WITH, OPTIONAL, mutations) is conservatively refused.
    """
    try:
        query = parse(query_text)
    except CypherError:
        return None
    if not isinstance(query, SingleQuery):
        return None
    matches: list[MatchClause] = []
    returns: Optional[ReturnClause] = None
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            if clause.optional or returns is not None:
                return None
            matches.append(clause)
        elif isinstance(clause, ReturnClause):
            if returns is not None:
                return None
            returns = clause
        else:
            return None
    if returns is None or not matches:
        return None
    if returns.order_by or returns.skip is not None or (
        returns.limit is not None
    ):
        return None

    renamer = _Renamer(_pattern_renaming(query))
    atoms: list[str] = []
    conjuncts: list[Expression] = []
    for match in matches:
        for pattern in match.patterns:
            atoms.extend(_pattern_atoms(pattern, renamer, ""))
        if match.where is not None:
            for conjunct in flatten_and(match.where):
                conjuncts.append(renamer.transform(conjunct))
    if returns.star:
        items = ["*"]
    else:
        items = sorted(
            renamer.text(item.expression)
            + (f" AS {item.alias}" if item.alias else "")
            for item in returns.items
        )
    head = "return-distinct" if returns.distinct else "return"
    analyzer = ClauseAnalyzer()
    for conjunct in conjuncts:
        analyzer.add_predicate(conjunct)
    return QueryParts(
        atoms=tuple(sorted(atoms)),
        conjuncts=conjuncts,
        conjunct_texts={render_expression(c) for c in conjuncts},
        return_sig=f"{head}({'; '.join(items)})",
        analyzer=analyzer,
        unsat=bool(analyzer.constant_false or analyzer.contradictions()),
    )


def implies(
    strong: Union[str, QueryParts], weak: Union[str, QueryParts]
) -> bool:
    """True when every solution row of ``strong`` is one of ``weak``."""
    strong_parts = (
        strong if isinstance(strong, QueryParts) else query_parts(strong)
    )
    weak_parts = (
        weak if isinstance(weak, QueryParts) else query_parts(weak)
    )
    if strong_parts is None or weak_parts is None:
        return False
    if strong_parts.atoms != weak_parts.atoms:
        return False
    if strong_parts.return_sig != weak_parts.return_sig:
        return False
    if strong_parts.unsat:
        return False        # an unsatisfiable rule proves nothing useful
    for conjunct in weak_parts.conjuncts:
        if render_expression(conjunct) in strong_parts.conjunct_texts:
            continue
        if not _entailed_conjunct(strong_parts.analyzer, conjunct):
            return False
    return True


def _entailed_conjunct(
    strong: ClauseAnalyzer, conjunct: Expression
) -> bool:
    """Does the strong query's accumulated knowledge entail one weak
    conjunct?  Only fully-understood conjuncts can be entailed."""
    probe = ClauseAnalyzer()
    probe.add_predicate(conjunct)
    if probe.opaque or probe.constant_false:
        return False
    if not probe.domains:
        return bool(probe.constant_true)
    for subject, weak_domain in probe.domains.items():
        strong_domain = strong.domains.get(subject)
        if strong_domain is None:
            return False
        if not domain_entails(strong_domain, weak_domain):
            return False
    return True


# ----------------------------------------------------------------------
# domain lattice: does one Domain entail another?
# ----------------------------------------------------------------------
def domain_entails(strong: Domain, weak: Domain) -> bool:
    """True when every value satisfying ``strong`` satisfies ``weak``."""
    if strong.never_true is not None or weak.never_true is not None:
        return False
    if weak.must_be_null:
        return strong.must_be_null and not strong.must_be_non_null
    if strong.must_be_null:
        return False

    if strong.equals:
        pinned = strong.equals[0]
        if any(
            not _values_equal(pinned, other) for other in strong.equals[1:]
        ):
            return False             # strong is unsatisfiable: no pruning
        return _pinned_satisfies(weak, pinned)

    if strong.allowed is not None:
        feasible = _feasible_allowed(strong)
        if not feasible:
            return False             # strong is unsatisfiable: no pruning
        return all(_pinned_satisfies(weak, value) for value in feasible)

    # strong constrains without pinning: prove each weak constraint
    # structurally from an at-least-as-tight strong counterpart
    if weak.equals or weak.allowed is not None:
        return False
    if weak.must_be_non_null and not strong.must_be_non_null:
        return False
    for value in weak.not_equals:
        if not (
            any(_values_equal(value, x) for x in strong.not_equals)
            or _excludes_value(strong, value)
        ):
            return False
    if weak.lower is not None and not _lower_entails(
        strong.lower, weak.lower
    ):
        return False
    if weak.upper is not None and not _upper_entails(
        strong.upper, weak.upper
    ):
        return False
    for prefix in weak.prefixes:
        if not any(sp.startswith(prefix) for sp in strong.prefixes):
            return False
    for suffix in weak.suffixes:
        if not any(ss.endswith(suffix) for ss in strong.suffixes):
            return False
    for needle in weak.contains:
        if not (
            any(needle in c for c in strong.contains)
            or any(needle in p for p in strong.prefixes)
            or any(needle in s for s in strong.suffixes)
        ):
            return False
    for pattern in weak.regexes:
        if pattern not in strong.regexes:
            return False             # verbatim regex membership only
    return True


def _clone_domain(domain: Domain) -> Domain:
    return Domain(
        subject=domain.subject,
        lower=(
            Bound(domain.lower.value, domain.lower.strict)
            if domain.lower is not None else None
        ),
        upper=(
            Bound(domain.upper.value, domain.upper.strict)
            if domain.upper is not None else None
        ),
        equals=list(domain.equals),
        not_equals=list(domain.not_equals),
        allowed=list(domain.allowed) if domain.allowed is not None else None,
        must_be_null=domain.must_be_null,
        must_be_non_null=domain.must_be_non_null,
        prefixes=list(domain.prefixes),
        suffixes=list(domain.suffixes),
        contains=list(domain.contains),
        regexes=list(domain.regexes),
        never_true=domain.never_true,
    )


def _pinned_satisfies(weak: Domain, value: object) -> bool:
    """Does the concrete ``value`` satisfy every weak constraint?  Reuses
    :meth:`Domain.contradiction` by pinning the value into a clone."""
    if weak.never_true is not None or weak.must_be_null:
        return False
    probe = _clone_domain(weak)
    probe.equals = [value] + probe.equals
    probe.must_be_non_null = True
    return probe.contradiction() is None


def _feasible_allowed(strong: Domain) -> list:
    """Over-approximation of the values ``strong`` can still take: its
    IN list filtered by every other necessary constraint."""
    feasible = [
        value for value in strong.allowed
        if not any(_values_equal(value, x) for x in strong.not_equals)
    ]
    if strong.lower is not None:
        op = ">" if strong.lower.strict else ">="
        feasible = [
            v for v in feasible
            if _ordered(op, v, strong.lower.value) is True
        ]
    if strong.upper is not None:
        op = "<" if strong.upper.strict else "<="
        feasible = [
            v for v in feasible
            if _ordered(op, v, strong.upper.value) is True
        ]
    if strong.demands_string:
        feasible = [v for v in feasible if isinstance(v, str)]
    for prefix in strong.prefixes:
        feasible = [
            v for v in feasible
            if isinstance(v, str) and v.startswith(prefix)
        ]
    for suffix in strong.suffixes:
        feasible = [
            v for v in feasible
            if isinstance(v, str) and v.endswith(suffix)
        ]
    for needle in strong.contains:
        feasible = [
            v for v in feasible if isinstance(v, str) and needle in v
        ]
    for pattern in strong.regexes:
        kept = []
        for v in feasible:
            if not isinstance(v, str):
                continue
            try:
                if re.fullmatch(pattern, v) is not None:
                    kept.append(v)
            except re.error:
                kept.append(v)       # unintelligible regex: keep (sound)
        feasible = kept
    return feasible


def _excludes_value(strong: Domain, value: object) -> bool:
    """True when strong's necessary constraints rule out ``value`` — so
    the weak requirement ``subject <> value`` holds for free."""
    if strong.demands_string and not isinstance(value, str):
        return True
    if strong.lower is not None:
        op = ">" if strong.lower.strict else ">="
        if _ordered(op, value, strong.lower.value) is not True:
            return True              # violates the bound or wrong class
    if strong.upper is not None:
        op = "<" if strong.upper.strict else "<="
        if _ordered(op, value, strong.upper.value) is not True:
            return True
    for prefix in strong.prefixes:
        if not (isinstance(value, str) and value.startswith(prefix)):
            return True
    for suffix in strong.suffixes:
        if not (isinstance(value, str) and value.endswith(suffix)):
            return True
    for needle in strong.contains:
        if not (isinstance(value, str) and needle in value):
            return True
    return False


def _lower_entails(strong: Optional[Bound], weak: Bound) -> bool:
    if strong is None:
        return False
    if _values_equal(strong.value, weak.value):
        return strong.strict or not weak.strict
    return _ordered(">", strong.value, weak.value) is True


def _upper_entails(strong: Optional[Bound], weak: Bound) -> bool:
    if strong is None:
        return False
    if _values_equal(strong.value, weak.value):
        return strong.strict or not weak.strict
    return _ordered("<", strong.value, weak.value) is True
