"""The :class:`StaticAnalyzer` facade tying the passes together.

One analyzer instance holds a schema (optional — without it the type
pass is skipped) and a small memo keyed by query text, because the
mining loop analyzes the same generated queries repeatedly: once for
triage, once for persistence, once for dedup.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.analysis.canonical import canonical_signature
from repro.analysis.dataflow import analyze_query_dataflow
from repro.analysis.findings import AnalysisReport, Finding, Verdict
from repro.analysis.satisfiability import analyze_satisfiability
from repro.analysis.typecheck import analyze_types
from repro.cypher import CypherError, parse
from repro.graph.schema import GraphSchema

_CACHE_SIZE = 512


@dataclass
class RuleTriage:
    """Pre-execution judgement on one rule's check query."""

    report: AnalysisReport

    @property
    def verdict(self) -> Verdict:
        return self.report.verdict

    @property
    def should_evaluate(self) -> bool:
        """False when running the query is provably pointless."""
        return not self.report.verdict.dooms_execution

    @property
    def reason(self) -> Optional[str]:
        """The finding that sealed the verdict, for logs and reports."""
        if self.report.parse_failed:
            return "query does not parse"
        for finding in self.report.findings:
            if finding.severity is self.report.verdict:
                return finding.message
        return None


class StaticAnalyzer:
    """Multi-pass static analyzer over the project's Cypher subset."""

    def __init__(
        self,
        schema: Optional[GraphSchema] = None,
        cache_size: int = _CACHE_SIZE,
    ) -> None:
        self.schema = schema
        self._cache_size = cache_size
        self._cache: OrderedDict[str, AnalysisReport] = OrderedDict()

    # ------------------------------------------------------------------
    def analyze(self, query_text: str) -> AnalysisReport:
        """Analyze one query string (memoized per analyzer instance)."""
        cached = self._cache.get(query_text)
        if cached is not None:
            self._cache.move_to_end(query_text)
            return cached
        report = self._analyze_uncached(query_text)
        self._cache[query_text] = report
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return report

    def analyze_ast(self, query, query_text: str = "") -> AnalysisReport:
        """Analyze an already-parsed AST (no memoization)."""
        report = AnalysisReport(query_text=query_text)
        dataflow_findings, table = analyze_query_dataflow(query)
        report.findings.extend(dataflow_findings)
        if self.schema is not None:
            report.findings.extend(
                analyze_types(query, self.schema, table)
            )
        report.findings.extend(analyze_satisfiability(query))
        try:
            report.signature = canonical_signature(query)
        except (CypherError, TypeError, ValueError):
            report.signature = None
        return report

    def triage(self, query_text: str) -> RuleTriage:
        return RuleTriage(self.analyze(query_text))

    def signature(self, query_text: str) -> Optional[str]:
        """Semantic signature of a query string, None when unparseable."""
        return self.analyze(query_text).signature

    # ------------------------------------------------------------------
    def _analyze_uncached(self, query_text: str) -> AnalysisReport:
        try:
            query = parse(query_text)
        except CypherError as exc:
            return AnalysisReport(
                query_text=query_text,
                findings=[Finding(
                    "parse", "syntax-error", str(exc),
                    severity=Verdict.ERROR,
                )],
                parse_failed=True,
            )
        return self.analyze_ast(query, query_text)


def analyze_query(
    query_text: str, schema: Optional[GraphSchema] = None
) -> AnalysisReport:
    """One-shot convenience wrapper around :class:`StaticAnalyzer`."""
    return StaticAnalyzer(schema).analyze(query_text)
