"""Predicate satisfiability over conjunctive WHERE clauses.

Interval/equality reasoning in the spirit of AMIE's pre-pruning of rule
candidates: a rule whose WHERE clause is provably unsatisfiable —
``a.x > 5 AND a.x < 3`` — cannot return a row, so the pipeline can
reject it statically instead of burning executor time; a WHERE clause
that is provably a tautology makes the rule trivially held.

**Soundness contract** (enforced by the hypothesis suite): a query this
pass verdicts UNSAT returns zero solution rows on
:mod:`repro.cypher.executor` for *every* graph.  The pass therefore only
ever narrows from facts that follow from the evaluator's three-valued
semantics:

* only AND is decomposed; any conjunct it does not fully understand is
  treated as opaque (adding conjuncts can only shrink the result set,
  so UNSAT derived from an understood subset still holds);
* a conjunct contributes only constraints that are *necessary* for it
  to evaluate to ``true`` — e.g. ``x < 3`` true implies x is non-null
  and order-comparable with 3, because the evaluator yields ``null``
  (row filtered) for null or cross-class operands;
* OPTIONAL MATCH predicates are ignored entirely (they never filter
  rows, they only null out bindings).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.findings import Finding, Verdict
from repro.cypher.ast_nodes import (
    BinaryOp,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    ListLiteral,
    Literal,
    MatchClause,
    NodePattern,
    PropertyAccess,
    RegexMatch,
    RelPattern,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    Variable,
    WithClause,
)
from repro.cypher.render import render_expression

PASS = "satisfiability"

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
_NEGATE = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "=": "<>", "<>": "="}


def _order_class(value: object) -> Optional[str]:
    """The evaluator's comparability class of a concrete value."""
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (list, tuple)):
        return "list"
    return None


def _values_equal(a: object, b: object) -> bool:
    """Cypher equality between two concrete literals (never null here)."""
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    if _order_class(a) == "number" and _order_class(b) == "number":
        return float(a) == float(b)
    if _order_class(a) != _order_class(b):
        return False
    return a == b


def _ordered(op: str, a: object, b: object) -> Optional[bool]:
    """``a op b`` under evaluator ordering; None when incomparable."""
    if _order_class(a) != _order_class(b) or _order_class(a) is None:
        return None
    if isinstance(a, bool) != isinstance(b, bool):
        return None
    try:
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
    except TypeError:
        return None
    return None


@dataclass
class Bound:
    value: object
    strict: bool


@dataclass
class Domain:
    """Accumulated constraints on one deterministic subject expression.

    Every recorded constraint is necessary for the understood conjuncts
    to be true; ``contradiction()`` returns a human-readable reason when
    they cannot all hold at once.
    """

    subject: str
    lower: Optional[Bound] = None
    upper: Optional[Bound] = None
    equals: list = field(default_factory=list)
    not_equals: list = field(default_factory=list)
    allowed: Optional[list] = None        # from IN [literals...]
    must_be_null: bool = False
    must_be_non_null: bool = False
    prefixes: list[str] = field(default_factory=list)
    suffixes: list[str] = field(default_factory=list)
    contains: list[str] = field(default_factory=list)
    regexes: list[str] = field(default_factory=list)
    never_true: Optional[str] = None      # a conjunct that is constant-false

    # ------------------------------------------------------------------
    # constraint recording
    # ------------------------------------------------------------------
    def add_comparison(self, op: str, value: object) -> None:
        if value is None:
            # ``x op NULL`` is null for every x: the conjunct never holds
            self.never_true = f"{self.subject} {op} NULL is never true"
            return
        self.must_be_non_null = True
        if op == "=":
            self.equals.append(value)
        elif op == "<>":
            self.not_equals.append(value)
        elif op in ("<", "<="):
            bound = Bound(value, strict=op == "<")
            if self.upper is None or self._tightens_upper(bound):
                self.upper = bound
        elif op in (">", ">="):
            bound = Bound(value, strict=op == ">")
            if self.lower is None or self._tightens_lower(bound):
                self.lower = bound

    def _tightens_upper(self, bound: Bound) -> bool:
        current = self.upper
        less = _ordered("<", bound.value, current.value)
        if less is None:
            return False          # cross-class bounds are caught later
        return less or (
            _values_equal(bound.value, current.value)
            and bound.strict and not current.strict
        )

    def _tightens_lower(self, bound: Bound) -> bool:
        current = self.lower
        greater = _ordered(">", bound.value, current.value)
        if greater is None:
            return False
        return greater or (
            _values_equal(bound.value, current.value)
            and bound.strict and not current.strict
        )

    def add_in(self, values: list) -> None:
        if any(value is None for value in values):
            # a null member makes IN yield null/true, never narrow on it
            return
        self.must_be_non_null = True
        if self.allowed is None:
            self.allowed = list(values)
        else:
            self.allowed = [
                value for value in self.allowed
                if any(_values_equal(value, v) for v in values)
            ]

    def add_null(self, is_null: bool) -> None:
        if is_null:
            self.must_be_null = True
        else:
            self.must_be_non_null = True

    def add_string_predicate(self, kind: str, text: str) -> None:
        self.must_be_non_null = True
        if kind == "STARTS WITH":
            self.prefixes.append(text)
        elif kind == "ENDS WITH":
            self.suffixes.append(text)
        else:
            self.contains.append(text)

    def add_regex(self, pattern: str) -> None:
        self.must_be_non_null = True
        self.regexes.append(pattern)

    # ------------------------------------------------------------------
    # contradiction detection
    # ------------------------------------------------------------------
    @property
    def demands_string(self) -> bool:
        return bool(
            self.prefixes or self.suffixes or self.contains or self.regexes
        )

    def _ordering_classes(self) -> set[str]:
        classes = set()
        for bound in (self.lower, self.upper):
            if bound is not None:
                cls = _order_class(bound.value)
                if cls is not None:
                    classes.add(cls)
        return classes

    def contradiction(self) -> Optional[str]:
        """A reason the constraints cannot all hold, or None."""
        if self.never_true is not None:
            return self.never_true
        subject = self.subject
        if self.must_be_null and self.must_be_non_null:
            return f"{subject} must be NULL and non-NULL at once"

        # every value class demanded by an ordering bound must agree:
        # a value is order-comparable with at most one class
        classes = self._ordering_classes()
        if self.demands_string:
            classes.add("string")
        for value in self.equals:
            cls = _order_class(value)
            if cls is not None and (self.lower or self.upper
                                    or self.demands_string):
                classes.add(cls)
        if len(classes) > 1:
            return (
                f"{subject} is constrained against mutually incomparable "
                f"types ({', '.join(sorted(classes))})"
            )

        # conflicting equalities
        for index, value in enumerate(self.equals):
            for other in self.equals[index + 1:]:
                if not _values_equal(value, other):
                    return (
                        f"{subject} = {value!r} contradicts "
                        f"{subject} = {other!r}"
                    )
        pinned = self.equals[0] if self.equals else None

        if pinned is not None:
            if any(_values_equal(pinned, v) for v in self.not_equals):
                return f"{subject} = {pinned!r} contradicts {subject} <> it"
            if self.allowed is not None and not any(
                _values_equal(pinned, v) for v in self.allowed
            ):
                return f"{subject} = {pinned!r} is outside its IN list"
            for bound, op_true, op_eq in (
                (self.lower, ">", ">="), (self.upper, "<", "<="),
            ):
                if bound is None:
                    continue
                op = op_true if bound.strict else op_eq
                holds = _ordered(op, pinned, bound.value)
                if holds is not True:
                    return (
                        f"{subject} = {pinned!r} violates the bound "
                        f"{subject} {op} {bound.value!r}"
                    )
            for prefix in self.prefixes:
                if not (isinstance(pinned, str)
                        and pinned.startswith(prefix)):
                    return (
                        f"{subject} = {pinned!r} cannot start "
                        f"with {prefix!r}"
                    )
            for suffix in self.suffixes:
                if not (isinstance(pinned, str) and pinned.endswith(suffix)):
                    return (
                        f"{subject} = {pinned!r} cannot end with {suffix!r}"
                    )
            for needle in self.contains:
                if not (isinstance(pinned, str) and needle in pinned):
                    return f"{subject} = {pinned!r} cannot contain {needle!r}"
            for pattern in self.regexes:
                if not isinstance(pinned, str):
                    return f"{subject} = {pinned!r} cannot match a regex"
                try:
                    if re.fullmatch(pattern, pinned) is None:
                        return (
                            f"{subject} = {pinned!r} does not match "
                            f"/{pattern}/"
                        )
                except re.error:
                    pass

        # empty interval
        if self.lower is not None and self.upper is not None:
            less = _ordered("<", self.lower.value, self.upper.value)
            if less is False:
                equal = _values_equal(self.lower.value, self.upper.value)
                if not equal or self.lower.strict or self.upper.strict:
                    return (
                        f"empty interval: {subject} above "
                        f"{self.lower.value!r} and below {self.upper.value!r}"
                    )
            # less is None (cross-class) was reported above

        # IN list fully excluded
        if self.allowed is not None:
            feasible = list(self.allowed)
            feasible = [
                v for v in feasible
                if not any(_values_equal(v, x) for x in self.not_equals)
            ]
            if self.lower is not None:
                op = ">" if self.lower.strict else ">="
                feasible = [
                    v for v in feasible
                    if _ordered(op, v, self.lower.value) is True
                ]
            if self.upper is not None:
                op = "<" if self.upper.strict else "<="
                feasible = [
                    v for v in feasible
                    if _ordered(op, v, self.upper.value) is True
                ]
            if self.demands_string:
                feasible = [v for v in feasible if isinstance(v, str)]
            if not feasible:
                return f"no member of {subject}'s IN list remains feasible"

        # incompatible prefixes (one must be a prefix of the other)
        for index, prefix in enumerate(self.prefixes):
            for other in self.prefixes[index + 1:]:
                if not (prefix.startswith(other)
                        or other.startswith(prefix)):
                    return (
                        f"{subject} cannot start with both {prefix!r} "
                        f"and {other!r}"
                    )
        for index, suffix in enumerate(self.suffixes):
            for other in self.suffixes[index + 1:]:
                if not (suffix.endswith(other) or other.endswith(suffix)):
                    return (
                        f"{subject} cannot end with both {suffix!r} "
                        f"and {other!r}"
                    )
        return None


# ----------------------------------------------------------------------
# conjunct extraction
# ----------------------------------------------------------------------
def flatten_and(expr: Expression) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return flatten_and(expr.left) + flatten_and(expr.right)
    return [expr]


def _literal_value(expr: Expression) -> tuple[bool, object]:
    """(is_literal, value) with unary minus folding."""
    if isinstance(expr, Literal):
        return True, expr.value
    if isinstance(expr, UnaryOp) and expr.op in ("-", "+"):
        ok, value = _literal_value(expr.operand)
        if ok and isinstance(value, (int, float)) and not isinstance(
            value, bool
        ):
            return True, -value if expr.op == "-" else +value
    return False, None


def _is_deterministic_subject(expr: Expression) -> bool:
    """Subjects must denote one value per row: properties, variables and
    deterministic function results qualify; literals do not (they are
    folded elsewhere)."""
    return isinstance(expr, (PropertyAccess, Variable, FunctionCall))


class ClauseAnalyzer:
    """Folds the conjuncts of one WHERE clause into per-subject domains."""

    def __init__(self) -> None:
        self.domains: dict[str, Domain] = {}
        self.constant_true: list[str] = []
        self.constant_false: list[str] = []
        self.opaque = 0
        self.conjuncts = 0

    def domain(self, subject_text: str) -> Domain:
        if subject_text not in self.domains:
            self.domains[subject_text] = Domain(subject_text)
        return self.domains[subject_text]

    # ------------------------------------------------------------------
    def add_predicate(self, expr: Expression) -> None:
        for conjunct in flatten_and(expr):
            self.conjuncts += 1
            self._add_conjunct(conjunct, negated=False)

    def add_pattern_equality(
        self, variable: str, key: str, value: Expression
    ) -> None:
        """Pattern map ``{key: value}`` pins ``variable.key``."""
        ok, literal = _literal_value(value)
        if ok:
            self.domain(f"{variable}.{key}").add_comparison("=", literal)

    # ------------------------------------------------------------------
    def _add_conjunct(self, expr: Expression, negated: bool) -> None:
        if isinstance(expr, UnaryOp) and expr.op == "NOT":
            self._add_conjunct(expr.operand, not negated)
            return
        if isinstance(expr, Literal) and isinstance(expr.value, bool):
            value = (not expr.value) if negated else expr.value
            text = render_expression(expr)
            (self.constant_true if value else self.constant_false).append(
                text
            )
            return
        if isinstance(expr, BinaryOp) and expr.op in _FLIP:
            self._add_comparison(expr, negated)
            return
        if isinstance(expr, IsNull):
            is_null = expr.negated if negated else not expr.negated
            subject = expr.operand
            if _is_deterministic_subject(subject):
                self.domain(render_expression(subject)).add_null(is_null)
            else:
                self.opaque += 1
            return
        if isinstance(expr, InList) and not negated:
            self._add_in(expr)
            return
        if isinstance(expr, StringPredicate) and not negated:
            ok, text = _literal_value(expr.right)
            if (
                ok and isinstance(text, str)
                and _is_deterministic_subject(expr.left)
            ):
                self.domain(
                    render_expression(expr.left)
                ).add_string_predicate(expr.kind, text)
            else:
                self.opaque += 1
            return
        if isinstance(expr, RegexMatch) and not negated:
            ok, pattern = _literal_value(expr.right)
            if (
                ok and isinstance(pattern, str)
                and _is_deterministic_subject(expr.left)
            ):
                self.domain(render_expression(expr.left)).add_regex(pattern)
            else:
                self.opaque += 1
            return
        self.opaque += 1

    def _add_in(self, expr: InList) -> None:
        if not isinstance(expr.haystack, ListLiteral) or not (
            _is_deterministic_subject(expr.needle)
        ):
            self.opaque += 1
            return
        values = []
        for item in expr.haystack.items:
            ok, value = _literal_value(item)
            if not ok:
                self.opaque += 1
                return
            values.append(value)
        self.domain(render_expression(expr.needle)).add_in(values)

    def _add_comparison(self, expr: BinaryOp, negated: bool) -> None:
        op = _NEGATE[expr.op] if negated else expr.op
        left_lit, left_val = _literal_value(expr.left)
        right_lit, right_val = _literal_value(expr.right)
        if left_lit and right_lit:
            result = self._fold(op, left_val, right_val)
            text = render_expression(expr)
            if result is True:
                self.constant_true.append(text)
            else:
                # False or null: the conjunct never evaluates to true
                self.constant_false.append(text)
            return
        if right_lit and _is_deterministic_subject(expr.left):
            self.domain(render_expression(expr.left)).add_comparison(
                op, right_val
            )
            return
        if left_lit and _is_deterministic_subject(expr.right):
            self.domain(render_expression(expr.right)).add_comparison(
                _FLIP[op], left_val
            )
            return
        self.opaque += 1

    @staticmethod
    def _fold(op: str, a: object, b: object) -> Optional[bool]:
        if a is None or b is None:
            return None
        if op == "=":
            return _values_equal(a, b)
        if op == "<>":
            return not _values_equal(a, b)
        return _ordered(op, a, b)

    # ------------------------------------------------------------------
    @property
    def is_tautology(self) -> bool:
        """Every conjunct is constant-true: the filter filters nothing."""
        return (
            self.conjuncts > 0
            and len(self.constant_true) == self.conjuncts
        )

    def contradictions(self) -> list[str]:
        reasons = [
            f"constant-false predicate {text}"
            for text in self.constant_false
        ]
        for domain in self.domains.values():
            reason = domain.contradiction()
            if reason is not None:
                reasons.append(reason)
        return reasons


# ----------------------------------------------------------------------
# the pass
# ----------------------------------------------------------------------
def _analyze_single(query: SingleQuery) -> tuple[list[Finding], bool]:
    """(findings, is_unsat) for one UNION branch."""
    findings: list[Finding] = []
    unsat = False
    tautologies: list[str] = []
    for clause in query.clauses:
        analyzer = ClauseAnalyzer()
        if isinstance(clause, MatchClause):
            if clause.optional:
                continue   # OPTIONAL predicates never filter rows
            for pattern in clause.patterns:
                for element in pattern.elements:
                    if isinstance(element, (NodePattern, RelPattern)):
                        if element.variable:
                            for key, value in element.properties:
                                analyzer.add_pattern_equality(
                                    element.variable, key, value
                                )
            if clause.where is not None:
                analyzer.add_predicate(clause.where)
        elif isinstance(clause, WithClause):
            if clause.where is not None:
                analyzer.add_predicate(clause.where)
        else:
            continue
        for reason in analyzer.contradictions():
            unsat = True
            findings.append(Finding(
                PASS, "unsatisfiable-predicate",
                f"WHERE clause can never hold: {reason}",
                severity=Verdict.UNSAT,
            ))
        if (
            analyzer.is_tautology
            and not analyzer.domains
            and not analyzer.opaque
        ):
            tautologies.append(
                "WHERE clause is a tautology; the rule is trivially held"
            )
    if not unsat:
        for message in tautologies:
            findings.append(Finding(
                PASS, "tautological-predicate", message,
                severity=Verdict.TRIVIAL,
            ))
    return findings, unsat


def analyze_satisfiability(query) -> list[Finding]:
    """Run the satisfiability pass over a full (possibly UNION) query.

    A UNION query is unsatisfiable only when *every* branch is; findings
    from satisfiable branches are kept but downgraded to WARN so that a
    partially-dead UNION is visible without being falsely rejected.
    """
    if isinstance(query, UnionQuery):
        per_branch = [_analyze_single(sub) for sub in query.queries]
        all_unsat = all(unsat for _findings, unsat in per_branch)
        findings: list[Finding] = []
        for branch_findings, _unsat in per_branch:
            for finding in branch_findings:
                if finding.severity is Verdict.UNSAT and not all_unsat:
                    findings.append(Finding(
                        finding.pass_name, "dead-union-branch",
                        finding.message + " (in one UNION branch)",
                        severity=Verdict.WARN,
                        subject=finding.subject,
                    ))
                else:
                    findings.append(finding)
        return findings
    findings, _unsat = _analyze_single(query)
    return findings
