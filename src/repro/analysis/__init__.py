"""Semantic static analysis for mined Cypher rules.

Extends the schema-level :mod:`repro.cypher.linter` (the paper's §3.2
triage, automated) with the defects only dataflow, type and
satisfiability reasoning can see::

    from repro.analysis import StaticAnalyzer

    analyzer = StaticAnalyzer(schema)
    report = analyzer.analyze("MATCH (a:Paper) WHERE a.year > 5 "
                              "AND a.year < 3 RETURN a")
    report.verdict          # Verdict.UNSAT — never worth executing
    report.signature        # canonical signature for dedup

Layering: :mod:`repro.analysis` sits above :mod:`repro.graph` and
:mod:`repro.cypher` and below :mod:`repro.rules`,
:mod:`repro.correction` and :mod:`repro.mining`
(see ``tools/check_layers.py``).
"""

from repro.analysis.analyzer import (
    RuleTriage,
    StaticAnalyzer,
    analyze_query,
)
from repro.analysis.canonical import (
    canonical_form,
    canonical_renaming,
    canonical_signature,
)
from repro.analysis.dataflow import (
    VariableTable,
    VarInfo,
    analyze_query_dataflow,
)
from repro.analysis.findings import (
    AnalysisReport,
    Finding,
    Verdict,
    worst,
)
from repro.analysis.fixes import FixCandidate, FixSynthesizer
from repro.analysis.implication import (
    QueryParts,
    domain_entails,
    implies,
    query_parts,
)
from repro.analysis.satisfiability import analyze_satisfiability
from repro.analysis.typecheck import analyze_types

__all__ = [
    "AnalysisReport",
    "Finding",
    "FixCandidate",
    "FixSynthesizer",
    "QueryParts",
    "RuleTriage",
    "StaticAnalyzer",
    "VarInfo",
    "VariableTable",
    "Verdict",
    "analyze_query",
    "analyze_query_dataflow",
    "analyze_satisfiability",
    "analyze_types",
    "canonical_form",
    "canonical_renaming",
    "canonical_signature",
    "domain_entails",
    "implies",
    "query_parts",
    "worst",
]
