"""Canonicalization: alpha-renaming plus a pattern normal form.

Two mined rules frequently differ only in surface dress — variable names
(``(a)-[r]->(b)`` vs ``(x)-[e]->(y)``), edge orientation
(``(a)-[:R]->(b)`` vs ``(b)<-[:R]-(a)``) or comparison direction
(``a.x > 5`` vs ``5 < a.x``).  The paper counts such rules once; a
naive text key counts them many times.  This pass rewrites a query into
a normal form that erases those degrees of freedom and hashes it into a
compact **semantic signature** for :func:`repro.rules.dedup.deduplicate`
and the correction classifier.

The normal form is *best effort*: two queries with the same signature
are structurally equivalent under renaming/orientation, while
semantically equal queries of genuinely different shape may still get
different signatures.  That direction of error only costs a missed
dedup, never a wrong merge.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

from repro.cypher.ast_nodes import (
    BinaryOp,
    CaseExpression,
    CreateClause,
    ExistsExpression,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LabelPredicate,
    ListComprehension,
    ListIndex,
    ListLiteral,
    ListSlice,
    Literal,
    MapLiteral,
    MatchClause,
    MergeClause,
    NodePattern,
    Parameter,
    PathPattern,
    PatternExpression,
    PropertyAccess,
    RegexMatch,
    RelPattern,
    ReturnClause,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)
from repro.analysis.dataflow import iter_variables
from repro.analysis.satisfiability import flatten_and
from repro.cypher.render import render_expression

_FLIP_COMPARISON = {">": "<", ">=": "<="}
_COMMUTATIVE = ("=", "<>", "AND", "OR", "XOR")


# ----------------------------------------------------------------------
# expression normal form
# ----------------------------------------------------------------------
def _flatten(op: str, expr: Expression) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == op:
        return _flatten(op, expr.left) + _flatten(op, expr.right)
    return [expr]


class _Renamer:
    """Rewrites an expression under a variable renaming while folding
    orientation freedom out of comparisons and commutative operators."""

    def __init__(self, rename: dict[str, str]) -> None:
        self.rename = rename
        self.depth = 0

    def name(self, original: str) -> str:
        return self.rename.get(original, f"?{original}")

    def text(self, expr: Expression) -> str:
        return render_expression(self.transform(expr))

    def transform(self, expr: Expression) -> Expression:
        if isinstance(expr, Variable):
            return Variable(self.name(expr.name))
        if isinstance(expr, (Literal, Parameter)):
            return expr
        if isinstance(expr, PropertyAccess):
            return PropertyAccess(self.transform(expr.subject), expr.key)
        if isinstance(expr, BinaryOp):
            return self._binary(expr)
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.transform(expr.operand))
        if isinstance(expr, FunctionCall):
            args = tuple(self.transform(a) for a in expr.args)
            return FunctionCall(expr.name, args, expr.distinct, expr.star)
        if isinstance(expr, ListLiteral):
            return ListLiteral(tuple(self.transform(i) for i in expr.items))
        if isinstance(expr, MapLiteral):
            entries = tuple(
                (key, self.transform(value))
                for key, value in sorted(expr.entries, key=lambda e: e[0])
            )
            return MapLiteral(entries)
        if isinstance(expr, IsNull):
            return IsNull(self.transform(expr.operand), expr.negated)
        if isinstance(expr, InList):
            haystack = self.transform(expr.haystack)
            if isinstance(haystack, ListLiteral):
                haystack = ListLiteral(tuple(sorted(
                    haystack.items, key=render_expression
                )))
            return InList(self.transform(expr.needle), haystack)
        if isinstance(expr, StringPredicate):
            return StringPredicate(
                expr.kind, self.transform(expr.left),
                self.transform(expr.right),
            )
        if isinstance(expr, RegexMatch):
            return RegexMatch(
                self.transform(expr.left), self.transform(expr.right)
            )
        if isinstance(expr, CaseExpression):
            return CaseExpression(
                self.transform(expr.operand) if expr.operand else None,
                tuple(
                    (self.transform(c), self.transform(r))
                    for c, r in expr.whens
                ),
                self.transform(expr.default) if expr.default else None,
            )
        if isinstance(expr, LabelPredicate):
            return LabelPredicate(
                self.transform(expr.subject), tuple(sorted(expr.labels))
            )
        if isinstance(expr, ListIndex):
            return ListIndex(
                self.transform(expr.subject), self.transform(expr.index)
            )
        if isinstance(expr, ListSlice):
            return ListSlice(
                self.transform(expr.subject),
                self.transform(expr.start) if expr.start else None,
                self.transform(expr.end) if expr.end else None,
            )
        if isinstance(expr, ListComprehension):
            scoped = f"_cv{self.depth}"
            self.depth += 1
            inner = _Renamer({**self.rename, expr.variable: scoped})
            inner.depth = self.depth
            result = ListComprehension(
                scoped,
                self.transform(expr.source),
                inner.transform(expr.predicate) if expr.predicate else None,
                inner.transform(expr.projection)
                if expr.projection else None,
            )
            self.depth -= 1
            return result
        if isinstance(expr, PatternExpression):
            return PatternExpression(self.transform_path(expr.pattern))
        if isinstance(expr, ExistsExpression):
            return ExistsExpression(self.transform(expr.operand))
        return expr

    def _binary(self, expr: BinaryOp) -> Expression:
        if expr.op in ("AND", "OR", "XOR"):
            operands = [
                self.transform(item) for item in _flatten(expr.op, expr)
            ]
            operands.sort(key=render_expression)
            result = operands[0]
            for operand in operands[1:]:
                result = BinaryOp(expr.op, result, operand)
            return result
        left = self.transform(expr.left)
        right = self.transform(expr.right)
        op = expr.op
        if op in _FLIP_COMPARISON:
            # only < and <= survive canonicalization
            op = _FLIP_COMPARISON[op]
            left, right = right, left
        elif op in ("=", "<>") and (
            render_expression(right) < render_expression(left)
        ):
            left, right = right, left
        return BinaryOp(op, left, right)

    # -- patterns -------------------------------------------------------
    def transform_node(self, node: NodePattern) -> NodePattern:
        properties = tuple(
            (key, self.transform(value))
            for key, value in sorted(node.properties, key=lambda p: p[0])
        )
        variable = self.name(node.variable) if node.variable else None
        return NodePattern(variable, tuple(sorted(node.labels)), properties)

    def transform_rel(self, rel: RelPattern) -> RelPattern:
        properties = tuple(
            (key, self.transform(value))
            for key, value in sorted(rel.properties, key=lambda p: p[0])
        )
        variable = self.name(rel.variable) if rel.variable else None
        return RelPattern(
            variable, tuple(sorted(rel.types)), rel.direction,
            properties, rel.min_hops, rel.max_hops,
        )

    def transform_path(self, pattern: PathPattern) -> PathPattern:
        elements = tuple(
            self.transform_node(e) if isinstance(e, NodePattern)
            else self.transform_rel(e)
            for e in pattern.elements
        )
        variable = self.name(pattern.variable) if pattern.variable else None
        return PathPattern(variable, elements)


# ----------------------------------------------------------------------
# variable invariants → canonical renaming
# ----------------------------------------------------------------------
def _shape_text(expr: Expression) -> str:
    """Render with every variable erased — a name-free conjunct shape."""

    class _Eraser(_Renamer):
        def name(self, original: str) -> str:
            return "?"

    return _Eraser({}).text(expr)


def _collect_variables(query: SingleQuery) -> dict[str, list]:
    """variable → [kind, sorted labels, first-occurrence index]."""
    order: dict[str, int] = {}
    kinds: dict[str, str] = {}
    labels: dict[str, set] = {}

    def seen(name: str, kind: str, new_labels=()) -> None:
        order.setdefault(name, len(order))
        kinds.setdefault(name, kind)
        labels.setdefault(name, set()).update(new_labels)

    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            for pattern in clause.patterns:
                if pattern.variable:
                    seen(pattern.variable, "path")
                for element in pattern.elements:
                    if element.variable is None:
                        continue
                    if isinstance(element, NodePattern):
                        seen(element.variable, "node", element.labels)
                    else:
                        seen(element.variable, "edge", element.types)
        elif isinstance(clause, UnwindClause):
            seen(clause.alias, "value")
        elif isinstance(clause, WithClause) and not clause.star:
            for item in clause.items:
                seen(item.column_name, "value")
        elif isinstance(clause, (CreateClause, MergeClause)):
            patterns = (
                clause.patterns if isinstance(clause, CreateClause)
                else (clause.pattern,)
            )
            for pattern in patterns:
                for element in pattern.elements:
                    if element.variable is None:
                        continue
                    kind = (
                        "node" if isinstance(element, NodePattern)
                        else "edge"
                    )
                    seen(element.variable, kind,
                         element.labels if isinstance(element, NodePattern)
                         else element.types)
    return {
        name: [kinds[name], tuple(sorted(labels[name])), order[name]]
        for name in order
    }


def _invariants(query: SingleQuery) -> dict[str, str]:
    """One refinement round of structural invariants per variable."""
    variables = _collect_variables(query)
    base: dict[str, str] = {
        name: f"{kind}|{','.join(labels)}"
        for name, (kind, labels, _idx) in variables.items()
    }

    # WHERE-shape usage: each conjunct shape tags the variables it uses
    usage: dict[str, list[str]] = {name: [] for name in base}

    def note_usage(expr: Optional[Expression]) -> None:
        if expr is None:
            return
        for conjunct in flatten_and(expr):
            shape = _shape_text(conjunct)
            for name in set(iter_variables(conjunct)):
                if name in usage:
                    usage[name].append(shape)

    # neighbour refinement over pattern edges
    neighbours: dict[str, list[str]] = {name: [] for name in base}
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            note_usage(clause.where)
            for pattern in clause.patterns:
                elements = pattern.elements
                for index, element in enumerate(elements):
                    if not isinstance(element, RelPattern):
                        continue
                    left = elements[index - 1] if index > 0 else None
                    right = (
                        elements[index + 1]
                        if index + 1 < len(elements) else None
                    )
                    edge_tag = (
                        f"{','.join(sorted(element.types))}"
                        f"*{element.min_hops}..{element.max_hops}"
                    )
                    for end, other in ((left, right), (right, left)):
                        if (
                            isinstance(end, NodePattern)
                            and end.variable in neighbours
                        ):
                            other_tag = (
                                ",".join(sorted(other.labels))
                                if isinstance(other, NodePattern) else ""
                            )
                            neighbours[end.variable].append(
                                f"{edge_tag}~{other_tag}"
                            )
                    if element.variable in neighbours:
                        end_tags = sorted(
                            ",".join(sorted(end.labels))
                            for end in (left, right)
                            if isinstance(end, NodePattern)
                        )
                        neighbours[element.variable].append(
                            "|".join(end_tags)
                        )
        elif isinstance(clause, WithClause):
            note_usage(clause.where)

    refined: dict[str, str] = {}
    for name, tag in base.items():
        refined[name] = (
            tag
            + "#" + ";".join(sorted(neighbours[name]))
            + "#" + ";".join(sorted(usage[name]))
        )
    return refined


def canonical_renaming(query: SingleQuery) -> dict[str, str]:
    """original variable name → canonical ``v0``/``v1``/... name.

    Ordering is by structural invariant, so any alpha-renaming of the
    query yields the same map image; ties fall back to first-occurrence
    order, which is also preserved under pure renaming.
    """
    variables = _collect_variables(query)
    invariants = _invariants(query)
    ordered = sorted(
        variables,
        key=lambda name: (invariants[name], variables[name][2]),
    )
    return {name: f"v{index}" for index, name in enumerate(ordered)}


# ----------------------------------------------------------------------
# clause normal form
# ----------------------------------------------------------------------
def _pattern_atoms(
    pattern: PathPattern, renamer: _Renamer, prefix: str
) -> list[str]:
    """Decompose one path into node and edge atoms.

    Edge atoms orient ``in`` edges as ``out`` (swapping endpoints) and
    sort the endpoints of undirected edges, erasing the two ways of
    writing the same structural edge.
    """
    atoms: list[str] = []
    transformed = renamer.transform_path(pattern)
    elements = transformed.elements
    if transformed.variable:
        inner = "".join(
            _endpoint_text(e) if isinstance(e, NodePattern)
            else _edge_core(e)
            for e in elements
        )
        atoms.append(f"{prefix}path({transformed.variable} = {inner})")
    for element in elements:
        if isinstance(element, NodePattern):
            atoms.append(f"{prefix}node{_endpoint_text(element)}")
    for index, element in enumerate(elements):
        if not isinstance(element, RelPattern):
            continue
        left = elements[index - 1] if index > 0 else None
        right = elements[index + 1] if index + 1 < len(elements) else None
        source = _endpoint_text(left)
        target = _endpoint_text(right)
        direction = element.direction
        if direction == "in":
            source, target = target, source
            direction = "out"
        elif direction == "any" and target < source:
            source, target = target, source
        arrow = "->" if direction == "out" else "-"
        atoms.append(
            f"{prefix}edge({source} -{_edge_core(element)}{arrow} {target})"
        )
    return atoms


def _endpoint_text(node: Optional[Union[NodePattern, RelPattern]]) -> str:
    if not isinstance(node, NodePattern):
        return "()"
    body = node.variable or "_"
    body += "".join(f":{label}" for label in node.labels)
    if node.properties:
        entries = ", ".join(
            f"{key}: {render_expression(value)}"
            for key, value in node.properties
        )
        body += " {" + entries + "}"
    return f"({body})"


def _edge_core(rel: RelPattern) -> str:
    detail = rel.variable or "_"
    if rel.types:
        detail += ":" + "|".join(rel.types)
    if rel.is_variable_length:
        detail += f"*{rel.min_hops}..{rel.max_hops}"
    if rel.properties:
        entries = ", ".join(
            f"{key}: {render_expression(value)}"
            for key, value in rel.properties
        )
        detail += " {" + entries + "}"
    return f"[{detail}]"


def _where_atoms(
    where: Optional[Expression], renamer: _Renamer
) -> list[str]:
    if where is None:
        return []
    return sorted(
        f"where({renamer.text(conjunct)})"
        for conjunct in flatten_and(where)
    )


def _canonical_single(query: SingleQuery) -> str:
    renamer = _Renamer(canonical_renaming(query))
    lines: list[str] = []
    segment: list[str] = []

    def flush() -> None:
        if segment:
            lines.extend(sorted(segment))
            segment.clear()

    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            prefix = "optional-" if clause.optional else ""
            for pattern in clause.patterns:
                segment.extend(_pattern_atoms(pattern, renamer, prefix))
            segment.extend(_where_atoms(clause.where, renamer))
        elif isinstance(clause, UnwindClause):
            flush()
            lines.append(
                f"unwind({renamer.text(clause.expression)} "
                f"AS {renamer.name(clause.alias)})"
            )
        elif isinstance(clause, WithClause):
            flush()
            if clause.star:
                items = ["*"]
            else:
                items = sorted(
                    f"{renamer.text(item.expression)} "
                    f"AS {renamer.name(item.column_name)}"
                    for item in clause.items
                )
            head = "with-distinct" if clause.distinct else "with"
            lines.append(f"{head}({'; '.join(items)})")
            lines.extend(_order_atoms(clause, renamer))
            lines.extend(_where_atoms(clause.where, renamer))
        elif isinstance(clause, ReturnClause):
            flush()
            if clause.star:
                items = ["*"]
            else:
                # aliases are the rule's output columns: keep them verbatim
                items = sorted(
                    f"{renamer.text(item.expression)}"
                    + (f" AS {item.alias}" if item.alias else "")
                    for item in clause.items
                )
            head = "return-distinct" if clause.distinct else "return"
            lines.append(f"{head}({'; '.join(items)})")
            lines.extend(_order_atoms(clause, renamer))
        elif isinstance(clause, (CreateClause, MergeClause)):
            flush()
            keyword = "create" if isinstance(clause, CreateClause) else (
                "merge"
            )
            patterns = (
                clause.patterns if isinstance(clause, CreateClause)
                else (clause.pattern,)
            )
            for pattern in patterns:
                for atom in _pattern_atoms(
                    pattern, renamer, f"{keyword}-"
                ):
                    lines.append(atom)
        else:
            flush()
            # mutation clauses keep their rendered (renamed) text
            lines.append(f"clause({type(clause).__name__})")
    flush()
    return "\n".join(lines)


def _order_atoms(clause, renamer: _Renamer) -> list[str]:
    atoms = []
    if clause.order_by:
        rendered = ", ".join(
            renamer.text(item.expression)
            + (" DESC" if item.descending else "")
            for item in clause.order_by
        )
        atoms.append(f"order({rendered})")
    if clause.skip is not None:
        atoms.append(f"skip({renamer.text(clause.skip)})")
    if clause.limit is not None:
        atoms.append(f"limit({renamer.text(clause.limit)})")
    return atoms


def canonical_form(query) -> str:
    """The human-readable normal form (one atom per line)."""
    if isinstance(query, UnionQuery):
        branches = sorted(_canonical_single(sub) for sub in query.queries)
        keyword = "union-all" if query.all else "union"
        return f"{keyword}:\n" + "\n--\n".join(branches)
    return _canonical_single(query)


def canonical_signature(query) -> str:
    """Stable semantic signature: versioned hash of the normal form."""
    form = canonical_form(query)
    digest = hashlib.sha256(form.encode("utf-8")).hexdigest()
    return f"cq1:{digest[:20]}"
