"""Dataflow analysis: variable binding, use and pattern connectivity.

Three defect families the schema linter cannot see:

* **use-before-bind** — an expression references a variable no pattern,
  UNWIND or WITH has introduced (or that a WITH projection dropped);
* **unused / shadowed variables** — a bound variable that is never read
  (noise at best, a mis-typed name at worst), or a WITH alias that
  silently rebinds an existing variable to a different value;
* **disconnected MATCH components** — patterns sharing no variables
  multiply into a cartesian product, the classic accidental blow-up.

The pass also produces the :class:`VariableTable` (variable → kind +
labels) that the type-inference pass resolves property accesses with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.cypher.ast_nodes import (
    BinaryOp,
    CaseExpression,
    CreateClause,
    DeleteClause,
    ExistsExpression,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    LabelPredicate,
    ListComprehension,
    ListIndex,
    ListLiteral,
    ListSlice,
    MapLiteral,
    MatchClause,
    MergeClause,
    NodePattern,
    PathPattern,
    PatternExpression,
    PropertyAccess,
    RegexMatch,
    RelPattern,
    RemoveClause,
    ReturnClause,
    SetClause,
    SingleQuery,
    StringPredicate,
    UnaryOp,
    UnionQuery,
    UnwindClause,
    Variable,
    WithClause,
)

PASS = "dataflow"


@dataclass(frozen=True)
class VarInfo:
    """What is known about one bound variable."""

    kind: str                        # 'node' | 'edge' | 'path' | 'value'
    labels: tuple[str, ...] = ()     # node labels or relationship types


@dataclass
class VariableTable:
    """Variable bindings accumulated over a whole query."""

    infos: dict[str, VarInfo] = field(default_factory=dict)

    def bind(self, name: str, info: VarInfo) -> None:
        existing = self.infos.get(name)
        if existing is None:
            self.infos[name] = info
        elif not existing.labels and info.labels:
            # a later, better-labelled occurrence refines the entry
            self.infos[name] = VarInfo(existing.kind, info.labels)

    def get(self, name: str) -> Optional[VarInfo]:
        return self.infos.get(name)


def iter_variables(expr: Expression, shadowed: frozenset[str] = frozenset(
)) -> Iterator[str]:
    """Yield every free variable name referenced by ``expr``."""
    if isinstance(expr, Variable):
        if expr.name not in shadowed:
            yield expr.name
    elif isinstance(expr, PropertyAccess):
        yield from iter_variables(expr.subject, shadowed)
    elif isinstance(expr, (BinaryOp, StringPredicate, RegexMatch)):
        yield from iter_variables(expr.left, shadowed)
        yield from iter_variables(expr.right, shadowed)
    elif isinstance(expr, UnaryOp):
        yield from iter_variables(expr.operand, shadowed)
    elif isinstance(expr, (IsNull, ExistsExpression)):
        yield from iter_variables(expr.operand, shadowed)
    elif isinstance(expr, InList):
        yield from iter_variables(expr.needle, shadowed)
        yield from iter_variables(expr.haystack, shadowed)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from iter_variables(arg, shadowed)
    elif isinstance(expr, ListLiteral):
        for item in expr.items:
            yield from iter_variables(item, shadowed)
    elif isinstance(expr, MapLiteral):
        for _key, value in expr.entries:
            yield from iter_variables(value, shadowed)
    elif isinstance(expr, CaseExpression):
        if expr.operand is not None:
            yield from iter_variables(expr.operand, shadowed)
        for condition, result in expr.whens:
            yield from iter_variables(condition, shadowed)
            yield from iter_variables(result, shadowed)
        if expr.default is not None:
            yield from iter_variables(expr.default, shadowed)
    elif isinstance(expr, ListIndex):
        yield from iter_variables(expr.subject, shadowed)
        yield from iter_variables(expr.index, shadowed)
    elif isinstance(expr, ListSlice):
        yield from iter_variables(expr.subject, shadowed)
        if expr.start is not None:
            yield from iter_variables(expr.start, shadowed)
        if expr.end is not None:
            yield from iter_variables(expr.end, shadowed)
    elif isinstance(expr, ListComprehension):
        yield from iter_variables(expr.source, shadowed)
        inner = shadowed | {expr.variable}
        if expr.predicate is not None:
            yield from iter_variables(expr.predicate, inner)
        if expr.projection is not None:
            yield from iter_variables(expr.projection, inner)
    elif isinstance(expr, LabelPredicate):
        yield from iter_variables(expr.subject, shadowed)
    elif isinstance(expr, PatternExpression):
        for element in expr.pattern.elements:
            if element.variable:
                yield element.variable
            for _key, value in element.properties:
                yield from iter_variables(value, shadowed)
    # Literal / Parameter: no variables


def expression_uses_star(expr: Expression) -> bool:
    """True when the expression is (or contains) ``count(*)``."""
    if isinstance(expr, FunctionCall):
        return expr.star or any(expression_uses_star(a) for a in expr.args)
    if isinstance(expr, (BinaryOp, StringPredicate, RegexMatch)):
        return expression_uses_star(expr.left) or expression_uses_star(
            expr.right
        )
    if isinstance(expr, UnaryOp):
        return expression_uses_star(expr.operand)
    return False


# ----------------------------------------------------------------------
# the pass
# ----------------------------------------------------------------------
class _UnionFind:
    """Connectivity of pattern variables for the cartesian check."""

    def __init__(self) -> None:
        self.parent: dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self.parent.setdefault(item, item)
        if parent != item:
            self.parent[item] = parent = self.find(parent)
        return parent

    def union(self, a: str, b: str) -> None:
        self.parent[self.find(a)] = self.find(b)

    def component_count(self) -> int:
        return len({self.find(item) for item in self.parent})


def analyze_dataflow(
    query: SingleQuery,
) -> tuple[list[Finding], VariableTable]:
    """Run the dataflow pass over one SingleQuery."""
    findings: list[Finding] = []
    table = VariableTable()
    bound: dict[str, VarInfo] = {}
    used: set[str] = set()
    dropped: set[str] = set()        # removed by a WITH projection
    everything_used = False          # RETURN * / WITH * / count(*) seen

    def use(expr: Expression) -> None:
        nonlocal everything_used
        for name in iter_variables(expr):
            if name in bound:
                used.add(name)
            elif name in dropped:
                findings.append(Finding(
                    PASS, "use-after-with",
                    f"variable '{name}' was dropped by an earlier WITH "
                    "projection and is no longer in scope",
                    subject=name,
                ))
            else:
                findings.append(Finding(
                    PASS, "use-before-bind",
                    f"variable '{name}' is used before any pattern, "
                    "UNWIND or WITH binds it",
                    subject=name,
                ))
        if expression_uses_star(expr):
            everything_used = True

    def bind(name: str, info: VarInfo) -> None:
        bound[name] = info
        dropped.discard(name)
        table.bind(name, info)

    def bind_pattern(pattern: PathPattern, connect: _UnionFind | None) -> None:
        pattern_vars: list[str] = []
        if pattern.variable:
            bind(pattern.variable, VarInfo("path"))
            pattern_vars.append(pattern.variable)
        for element in pattern.elements:
            if isinstance(element, NodePattern):
                if element.variable:
                    if element.variable in bound:
                        used.add(element.variable)  # join on a known var
                    bind(element.variable, VarInfo("node", element.labels))
                    pattern_vars.append(element.variable)
            elif isinstance(element, RelPattern):
                if element.variable:
                    bind(element.variable, VarInfo("edge", element.types))
                    pattern_vars.append(element.variable)
            for _key, value in element.properties:
                use(value)
        if connect is not None:
            if pattern_vars:
                first = pattern_vars[0]
                connect.find(first)
                for other in pattern_vars[1:]:
                    connect.union(first, other)
            else:
                # an all-anonymous pattern is its own component
                connect.union(f"<anon-{id(pattern)}>", f"<anon-{id(pattern)}>")

    def check_cartesian(connect: _UnionFind, clause_count: int) -> None:
        components = connect.component_count()
        if components > 1:
            findings.append(Finding(
                PASS, "cartesian-product",
                f"{components} disconnected MATCH components "
                f"(over {clause_count} MATCH clause(s)) multiply into a "
                "cartesian product",
            ))

    connect = _UnionFind()
    match_clauses = 0
    for clause in query.clauses:
        if isinstance(clause, MatchClause):
            match_clauses += 1
            for pattern in clause.patterns:
                bind_pattern(
                    pattern, None if clause.optional else connect
                )
            if clause.where is not None:
                use(clause.where)
        elif isinstance(clause, UnwindClause):
            use(clause.expression)
            bind(clause.alias, VarInfo("value"))
        elif isinstance(clause, WithClause):
            # a WITH closes the current pattern segment
            check_cartesian(connect, match_clauses)
            connect, match_clauses = _UnionFind(), 0
            for item in clause.items:
                use(item.expression)
            for order_item in clause.order_by:
                use(order_item.expression)
            if clause.skip is not None:
                use(clause.skip)
            if clause.limit is not None:
                use(clause.limit)
            if not clause.star:
                survivors: dict[str, VarInfo] = {}
                for item in clause.items:
                    name = item.column_name
                    passthrough = (
                        isinstance(item.expression, Variable)
                        and item.expression.name == name
                    )
                    if (
                        name in bound
                        and not passthrough
                        and item.alias is not None
                    ):
                        findings.append(Finding(
                            PASS, "shadowed-variable",
                            f"WITH rebinds '{name}' to a different "
                            "expression, shadowing the earlier binding",
                            subject=name,
                        ))
                    if isinstance(item.expression, Variable):
                        info = bound.get(
                            item.expression.name, VarInfo("value")
                        )
                    else:
                        info = VarInfo("value")
                    survivors[name] = info
                for name in bound:
                    if name not in survivors:
                        dropped.add(name)
                bound = {}
                for name, info in survivors.items():
                    bound[name] = info
                    table.bind(name, info)
                dropped -= set(bound)
            if clause.where is not None:
                use(clause.where)
        elif isinstance(clause, ReturnClause):
            if clause.star:
                everything_used = True
            for item in clause.items:
                use(item.expression)
            for order_item in clause.order_by:
                use(order_item.expression)
            if clause.skip is not None:
                use(clause.skip)
            if clause.limit is not None:
                use(clause.limit)
        elif isinstance(clause, (CreateClause, MergeClause)):
            patterns = (
                clause.patterns if isinstance(clause, CreateClause)
                else (clause.pattern,)
            )
            for pattern in patterns:
                bind_pattern(pattern, None)
        elif isinstance(clause, SetClause):
            for item in clause.items:
                use(Variable(item.target))
                use(item.value)
        elif isinstance(clause, RemoveClause):
            for item in clause.items:
                use(Variable(item.target))
        elif isinstance(clause, DeleteClause):
            for expression in clause.expressions:
                use(expression)

    check_cartesian(connect, match_clauses)

    if not everything_used:
        for name, info in bound.items():
            if name not in used:
                findings.append(Finding(
                    PASS, "unused-variable",
                    f"{info.kind} variable '{name}' is bound but never "
                    "used",
                    subject=name,
                ))
    return findings, table


def analyze_query_dataflow(
    query,
) -> tuple[list[Finding], VariableTable]:
    """Dataflow over a full (possibly UNION) query."""
    if isinstance(query, UnionQuery):
        findings: list[Finding] = []
        table = VariableTable()
        for sub in query.queries:
            sub_findings, sub_table = analyze_dataflow(sub)
            findings.extend(sub_findings)
            for name, info in sub_table.infos.items():
                table.bind(name, info)
        return findings, table
    return analyze_dataflow(query)
