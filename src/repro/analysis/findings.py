"""Verdicts and findings shared by every analyzer pass.

The paper triages generated Cypher by hand (§3.2, Table 6): syntax and
direction errors are corrected, hallucinations are kept and counted.
:mod:`repro.analysis` extends that taxonomy to *semantic* defects the
schema-level linter cannot see; a :class:`Finding` is one such defect and
an :class:`AnalysisReport` is the combined judgement on one query.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Verdict(enum.Enum):
    """Overall judgement on one query, ordered by severity.

    OK       — nothing to report.
    WARN     — suspicious but executable (unused variable, cartesian
               product, type-confused comparison, ...).
    TRIVIAL  — the WHERE clause is a tautology: the rule holds by
               construction and measures nothing.
    UNSAT    — the predicate set is provably unsatisfiable: the query
               cannot return a row, so executing it is pure waste.
    ERROR    — the query does not even parse; nothing semantic to say.
    """

    OK = "ok"
    WARN = "warn"
    TRIVIAL = "trivial"
    UNSAT = "unsat"
    ERROR = "error"

    @property
    def severity(self) -> int:
        return _SEVERITY[self]

    @property
    def dooms_execution(self) -> bool:
        """True when running the query provably cannot produce rows."""
        return self in (Verdict.UNSAT, Verdict.ERROR)


_SEVERITY = {
    Verdict.OK: 0,
    Verdict.WARN: 1,
    Verdict.TRIVIAL: 2,
    Verdict.UNSAT: 3,
    Verdict.ERROR: 4,
}


def worst(verdicts) -> Verdict:
    """The most severe verdict of an iterable (OK when empty)."""
    best = Verdict.OK
    for verdict in verdicts:
        if verdict.severity > best.severity:
            best = verdict
    return best


@dataclass(frozen=True)
class Finding:
    """One defect reported by one analyzer pass."""

    pass_name: str                 # 'dataflow' | 'types' | 'satisfiability'
    code: str                      # stable machine-readable code
    message: str
    severity: Verdict = Verdict.WARN
    subject: Optional[str] = None  # variable / property / expression


@dataclass
class AnalysisReport:
    """Outcome of statically analyzing one query."""

    query_text: str
    findings: list[Finding] = field(default_factory=list)
    signature: Optional[str] = None   # canonical semantic signature
    parse_failed: bool = False

    @property
    def verdict(self) -> Verdict:
        if self.parse_failed:
            return Verdict.ERROR
        return worst(finding.severity for finding in self.findings)

    @property
    def is_clean(self) -> bool:
        return self.verdict is Verdict.OK

    def by_pass(self, pass_name: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_name == pass_name]

    def codes(self) -> set[str]:
        return {finding.code for finding in self.findings}

    def has(self, code: str) -> bool:
        return code in self.codes()

    def to_dict(self) -> dict:
        """Reportable form, used by mining persistence."""
        return {
            "verdict": self.verdict.value,
            "signature": self.signature,
            "findings": [
                {
                    "pass": finding.pass_name,
                    "code": finding.code,
                    "message": finding.message,
                    "severity": finding.severity.value,
                    "subject": finding.subject,
                }
                for finding in self.findings
            ],
        }

    @classmethod
    def from_dict(cls, query_text: str, payload: dict) -> "AnalysisReport":
        """Rebuild the reportable form archived by persistence."""
        verdict = Verdict(payload.get("verdict", "ok"))
        report = cls(
            query_text=query_text,
            parse_failed=verdict is Verdict.ERROR,
            signature=payload.get("signature"),
        )
        for record in payload.get("findings", ()):
            report.findings.append(Finding(
                pass_name=record.get("pass", "unknown"),
                code=record.get("code", "unknown"),
                message=record.get("message", ""),
                severity=Verdict(record.get("severity", "warn")),
                subject=record.get("subject"),
            ))
        return report
