"""Fix synthesis: findings → ranked, analyzer-verified AST rewrites.

The passes in this package *prove* why a generated query is broken — an
UNSAT conjunct, a mis-typed literal, a use-before-bind reference, an
edge traversed against the data — but until now the pipeline could only
score the rule zero.  This module closes the loop mechanically: each
finding family maps to a small space of candidate rewrites, every
candidate is re-analyzed, and only rewrites that *provably improve* the
query survive ("Graph Repairs with LLMs" motivates ranking mechanical
candidate fixes over one-shot regeneration).

Four rewrite families, in rank order (least to most semantics-changing):

1. **flip-direction** — reverse a relationship pattern that traverses an
   edge type in a direction the data never exhibits (the reverse does);
2. **reorder-binding** — move a WHERE conjunct that references
   not-yet-bound variables to the first MATCH clause that binds them;
3. **retype-comparison** — coerce a literal compared against a property
   whose observed value classes make the comparison vacuous;
4. **drop-conjunct** — remove a conjunct implicated in an UNSAT
   contradiction (last resort: it relaxes rule semantics).

Acceptance is gated by re-verification: the rewritten query must parse,
must not be more severe than the original, and must strictly reduce the
count of the findings the rewrite targets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.analysis.analyzer import StaticAnalyzer
from repro.analysis.dataflow import analyze_query_dataflow, iter_variables
from repro.analysis.findings import AnalysisReport, Verdict
from repro.analysis.satisfiability import ClauseAnalyzer, flatten_and
from repro.analysis.typecheck import TypeChecker
from repro.cypher import CypherError, parse
from repro.cypher.ast_nodes import (
    BinaryOp,
    Expression,
    Literal,
    MatchClause,
    NodePattern,
    PropertyAccess,
    RelPattern,
    SingleQuery,
    Variable,
    WithClause,
)
from repro.cypher.render import render_expression, render_query

#: rewrite kind → rank; lower ranks are tried first
FIX_KINDS = {
    "flip-direction": 0,
    "reorder-binding": 1,
    "retype-comparison": 2,
    "drop-conjunct": 3,
}

#: pseudo finding code for linter-style direction defects (the analyzer
#: has no direction pass; the synthesizer counts bad triples itself)
DIRECTION_CODE = "wrong-direction"

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class FixCandidate:
    """One accepted rewrite, with its before/after verdicts."""

    kind: str
    description: str
    original: str
    fixed: str
    addresses: tuple[str, ...]
    verdict_before: Verdict
    verdict_after: Verdict

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "description": self.description,
            "original": self.original,
            "fixed": self.fixed,
            "addresses": list(self.addresses),
            "verdict_before": self.verdict_before.value,
            "verdict_after": self.verdict_after.value,
        }


@dataclass(frozen=True)
class _Proposal:
    kind: str
    description: str
    fixed: str
    addresses: tuple[str, ...]
    order: int                     # generation order within a kind


class FixSynthesizer:
    """Turns analyzer findings into verified rewrites of one query."""

    def __init__(
        self,
        schema: Optional[object] = None,
        analyzer: Optional[StaticAnalyzer] = None,
    ) -> None:
        self.schema = schema
        if analyzer is None:
            graph_schema = schema if hasattr(schema, "node_profiles") else (
                None
            )
            analyzer = StaticAnalyzer(graph_schema)
        self.analyzer = analyzer
        #: cumulative event counts, drained into obs by callers (this
        #: module sits below the obs layer and must not import it)
        self.counters: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def synthesize(
        self,
        query_text: str,
        report: Optional[AnalysisReport] = None,
    ) -> list[FixCandidate]:
        """Ranked, re-verified fix candidates for one query."""
        if report is None:
            report = self.analyzer.analyze(query_text)
        try:
            query = parse(query_text)
        except CypherError:
            return []                # nothing mechanical fixes a parse error
        if not isinstance(query, SingleQuery):
            return []                # UNION rewrites are out of scope
        proposals = (
            self._propose_direction_flips(query)
            + self._propose_binding_reorders(query)
            + self._propose_retypes(query)
            + self._propose_conjunct_drops(query)
        )
        accepted: list[FixCandidate] = []
        for proposal in sorted(
            proposals, key=lambda p: (FIX_KINDS[p.kind], p.order)
        ):
            self._count("candidates", proposal.kind)
            candidate = self._admit(query_text, report, proposal)
            if candidate is None:
                self._count("rejected", proposal.kind)
            else:
                self._count("accepted", proposal.kind)
                accepted.append(candidate)
        return accepted

    def repair(
        self,
        query_text: str,
        target_codes: frozenset[str] = frozenset(),
        max_rounds: int = 5,
    ) -> Optional[FixCandidate]:
        """Iteratively apply the best candidate until the query is sound.

        Success means the final query parses, is not doomed (UNSAT /
        ERROR), has no wrong-direction triples, and carries none of the
        extra ``target_codes`` findings.  Returns a composite candidate
        covering the whole original → final rewrite, or None.
        """
        original_report = self.analyzer.analyze(query_text)
        current, current_report = query_text, original_report
        steps: list[FixCandidate] = []
        for _round in range(max_rounds):
            if not self._needs_repair(current, current_report, target_codes):
                break
            candidates = self.synthesize(current, current_report)
            candidates = [c for c in candidates if c.fixed != current]
            if not candidates:
                break
            best = candidates[0]
            steps.append(best)
            current = best.fixed
            current_report = self.analyzer.analyze(current)
        if not steps or self._needs_repair(
            current, current_report, target_codes
        ):
            return None
        addresses = tuple(dict.fromkeys(
            code for step in steps for code in step.addresses
        ))
        return FixCandidate(
            kind=steps[0].kind if len(steps) == 1 else "composite",
            description="; ".join(step.description for step in steps),
            original=query_text,
            fixed=current,
            addresses=addresses,
            verdict_before=original_report.verdict,
            verdict_after=current_report.verdict,
        )

    def drain_counters(self) -> dict[tuple[str, str], int]:
        """Return and reset accumulated (event, kind) counts."""
        drained, self.counters = self.counters, {}
        return drained

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _needs_repair(
        self,
        query_text: str,
        report: AnalysisReport,
        target_codes: frozenset[str],
    ) -> bool:
        if report.verdict.dooms_execution:
            return True
        if self._bad_triple_count(query_text) > 0:
            return True
        return bool(target_codes & report.codes())

    def _admit(
        self,
        query_text: str,
        report: AnalysisReport,
        proposal: _Proposal,
    ) -> Optional[FixCandidate]:
        if proposal.fixed == query_text:
            return None
        after = self.analyzer.analyze(proposal.fixed)
        if after.parse_failed:
            return None
        if after.verdict.severity > report.verdict.severity:
            return None
        before_count = self._metric(query_text, report, proposal.addresses)
        after_count = self._metric(proposal.fixed, after, proposal.addresses)
        if after_count >= before_count:
            return None              # the rewrite did not help: reject
        return FixCandidate(
            kind=proposal.kind,
            description=proposal.description,
            original=query_text,
            fixed=proposal.fixed,
            addresses=proposal.addresses,
            verdict_before=report.verdict,
            verdict_after=after.verdict,
        )

    def _metric(
        self, query_text: str, report: AnalysisReport, codes: tuple[str, ...]
    ) -> int:
        count = sum(1 for f in report.findings if f.code in codes)
        if DIRECTION_CODE in codes:
            count += self._bad_triple_count(query_text)
        return count

    def _count(self, event: str, kind: str) -> None:
        key = (event, kind)
        self.counters[key] = self.counters.get(key, 0) + 1

    # ------------------------------------------------------------------
    # family 1: flip-direction
    # ------------------------------------------------------------------
    def _bad_triples(self, query: SingleQuery) -> list[tuple[int, int, int]]:
        """(clause, pattern, element) indices of wrongly-directed edges."""
        if not hasattr(self.schema, "edge_connects"):
            return []
        bad: list[tuple[int, int, int]] = []
        for ci, clause in enumerate(query.clauses):
            if not isinstance(clause, MatchClause):
                continue
            for pi, pattern in enumerate(clause.patterns):
                elements = pattern.elements
                for ei in range(1, len(elements), 2):
                    rel = elements[ei]
                    if not isinstance(rel, RelPattern):
                        continue
                    left = elements[ei - 1]
                    right = elements[ei + 1]
                    if self._triple_is_backward(left, rel, right):
                        bad.append((ci, pi, ei))
        return bad

    def _bad_triple_count(self, query_text: str) -> int:
        try:
            query = parse(query_text)
        except CypherError:
            return 0
        if not isinstance(query, SingleQuery):
            return 0
        return len(self._bad_triples(query))

    def _triple_is_backward(
        self, left: NodePattern, rel: RelPattern, right: NodePattern
    ) -> bool:
        """Mirror of the linter's direction check: True when the written
        direction never occurs in the data but the reverse does."""
        if rel.direction == "any" or not rel.types:
            return False
        if not isinstance(left, NodePattern) or not isinstance(
            right, NodePattern
        ):
            return False
        if not left.labels or not right.labels:
            return False
        for rel_type in rel.types:
            if rel.direction == "out":
                src_labels, dst_labels = left.labels, right.labels
            else:
                src_labels, dst_labels = right.labels, left.labels
            forward = any(
                self.schema.edge_connects(src, rel_type, dst)
                for src in src_labels
                for dst in dst_labels
            )
            if forward:
                continue
            backward = any(
                self.schema.edge_connects(dst, rel_type, src)
                for src in src_labels
                for dst in dst_labels
            )
            if backward:
                return True
        return False

    def _propose_direction_flips(
        self, query: SingleQuery
    ) -> list[_Proposal]:
        proposals: list[_Proposal] = []
        for order, (ci, pi, ei) in enumerate(self._bad_triples(query)):
            clause = query.clauses[ci]
            pattern = clause.patterns[pi]
            rel = pattern.elements[ei]
            flipped = replace(
                rel, direction="in" if rel.direction == "out" else "out"
            )
            elements = list(pattern.elements)
            elements[ei] = flipped
            new_pattern = replace(pattern, elements=tuple(elements))
            patterns = list(clause.patterns)
            patterns[pi] = new_pattern
            new_clause = replace(clause, patterns=tuple(patterns))
            types = "|".join(rel.types)
            proposals.append(_Proposal(
                kind="flip-direction",
                description=(
                    f"reversed :{types} — the written direction never "
                    "occurs in the data"
                ),
                fixed=render_query(self._swap_clause(query, ci, new_clause)),
                addresses=(DIRECTION_CODE,),
                order=order,
            ))
        return proposals

    # ------------------------------------------------------------------
    # family 2: reorder-binding
    # ------------------------------------------------------------------
    def _propose_binding_reorders(
        self, query: SingleQuery
    ) -> list[_Proposal]:
        """Move conjuncts referencing unbound variables to the first
        later MATCH clause that binds them.  Conservative: only handled
        for queries made of MATCH clauses plus a trailing RETURN."""
        match_indices = [
            index for index, clause in enumerate(query.clauses)
            if isinstance(clause, MatchClause)
        ]
        if not match_indices or any(
            isinstance(clause, WithClause) for clause in query.clauses
        ):
            return []
        bound_after: dict[int, set[str]] = {}
        bound: set[str] = set()
        for index in match_indices:
            clause = query.clauses[index]
            for pattern in clause.patterns:
                if pattern.variable:
                    bound.add(pattern.variable)
                for element in pattern.elements:
                    if element.variable:
                        bound.add(element.variable)
            bound_after[index] = set(bound)

        moves: dict[int, list[Expression]] = {}     # destination → conjuncts
        keeps: dict[int, list[Expression]] = {}
        moved_names: list[str] = []
        for index in match_indices:
            clause = query.clauses[index]
            if clause.where is None:
                continue
            keeps[index] = []
            for conjunct in flatten_and(clause.where):
                names = set(iter_variables(conjunct))
                if names <= bound_after[index]:
                    keeps[index].append(conjunct)
                    continue
                destination = next(
                    (
                        later for later in match_indices
                        if later > index and names <= bound_after[later]
                    ),
                    None,
                )
                if destination is None:
                    keeps[index].append(conjunct)   # truly unbound: give up
                    continue
                moves.setdefault(destination, []).append(conjunct)
                moved_names.extend(sorted(names - bound_after[index]))
        if not moves:
            return []
        clauses = list(query.clauses)
        for index in match_indices:
            clause = clauses[index]
            assert isinstance(clause, MatchClause)
            conjuncts = keeps.get(
                index,
                flatten_and(clause.where) if clause.where is not None else [],
            )
            conjuncts = conjuncts + moves.get(index, [])
            clauses[index] = replace(clause, where=_and_join(conjuncts))
        fixed = replace(query, clauses=tuple(clauses))
        names = ", ".join(dict.fromkeys(moved_names))
        return [_Proposal(
            kind="reorder-binding",
            description=(
                f"moved predicate(s) on {names} after the clause binding "
                "them"
            ),
            fixed=render_query(fixed),
            addresses=("use-before-bind",),
            order=0,
        )]

    # ------------------------------------------------------------------
    # family 3: retype-comparison
    # ------------------------------------------------------------------
    def _propose_retypes(self, query: SingleQuery) -> list[_Proposal]:
        if not hasattr(self.schema, "node_profiles"):
            return []
        _findings, table = analyze_query_dataflow(query)
        checker = TypeChecker(self.schema, table)
        proposals: list[_Proposal] = []
        order = 0
        for ci, clause in enumerate(query.clauses):
            where = getattr(clause, "where", None)
            if isinstance(clause, (MatchClause, WithClause)) and (
                where is not None
            ):
                conjuncts = flatten_and(where)
                for index, conjunct in enumerate(conjuncts):
                    coerced = self._coerce_comparison(conjunct, checker)
                    if coerced is None:
                        continue
                    rebuilt = list(conjuncts)
                    rebuilt[index] = coerced
                    new_clause = replace(clause, where=_and_join(rebuilt))
                    proposals.append(_Proposal(
                        kind="retype-comparison",
                        description=(
                            "re-typed literal in "
                            f"{render_expression(conjunct)!r} to match the "
                            "property's observed value class"
                        ),
                        fixed=render_query(
                            self._swap_clause(query, ci, new_clause)
                        ),
                        addresses=("type-confused-comparison",),
                        order=order,
                    ))
                    order += 1
            if isinstance(clause, MatchClause):
                proposals.extend(self._retype_pattern_maps(
                    query, ci, clause, checker, order
                ))
                order += len(proposals)
        return proposals

    def _retype_pattern_maps(
        self,
        query: SingleQuery,
        ci: int,
        clause: MatchClause,
        checker: TypeChecker,
        base_order: int,
    ) -> list[_Proposal]:
        proposals: list[_Proposal] = []
        for pi, pattern in enumerate(clause.patterns):
            for ei, element in enumerate(pattern.elements):
                if element.variable is None or not element.properties:
                    continue
                for key, value in element.properties:
                    if not isinstance(value, Literal):
                        continue
                    declared = checker.classes(PropertyAccess(
                        Variable(element.variable), key
                    ))
                    given = checker.classes(value)
                    if declared is None or given is None or (
                        declared & given
                    ):
                        continue
                    new_value = _coerce_literal(value.value, declared)
                    if new_value is None:
                        continue
                    properties = tuple(
                        (k, Literal(new_value) if k == key else v)
                        for k, v in element.properties
                    )
                    new_element = replace(element, properties=properties)
                    elements = list(pattern.elements)
                    elements[ei] = new_element
                    new_pattern = replace(
                        pattern, elements=tuple(elements)
                    )
                    patterns = list(clause.patterns)
                    patterns[pi] = new_pattern
                    new_clause = replace(clause, patterns=tuple(patterns))
                    proposals.append(_Proposal(
                        kind="retype-comparison",
                        description=(
                            f"re-typed pattern value of "
                            f"{element.variable}.{key} to match the "
                            "property's observed value class"
                        ),
                        fixed=render_query(
                            self._swap_clause(query, ci, new_clause)
                        ),
                        addresses=("type-confused-comparison",),
                        order=base_order + len(proposals),
                    ))
        return proposals

    def _coerce_comparison(
        self, conjunct: Expression, checker: TypeChecker
    ) -> Optional[Expression]:
        if not isinstance(conjunct, BinaryOp) or (
            conjunct.op not in _COMPARISON_OPS
        ):
            return None
        for prop_side, lit_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(prop_side, PropertyAccess) or not isinstance(
                lit_side, Literal
            ):
                continue
            declared = checker.classes(prop_side)
            given = checker.classes(lit_side)
            if declared is None or given is None or declared & given:
                continue
            new_value = _coerce_literal(lit_side.value, declared)
            if new_value is None:
                continue
            if lit_side is conjunct.right:
                return BinaryOp(conjunct.op, prop_side, Literal(new_value))
            return BinaryOp(conjunct.op, Literal(new_value), prop_side)
        return None

    # ------------------------------------------------------------------
    # family 4: drop-conjunct
    # ------------------------------------------------------------------
    def _propose_conjunct_drops(
        self, query: SingleQuery
    ) -> list[_Proposal]:
        proposals: list[_Proposal] = []
        order = 0
        for ci, clause in enumerate(query.clauses):
            if isinstance(clause, MatchClause) and clause.optional:
                continue
            where = getattr(clause, "where", None)
            if not isinstance(clause, (MatchClause, WithClause)) or (
                where is None
            ):
                continue
            analyzer = ClauseAnalyzer()
            if isinstance(clause, MatchClause):
                for pattern in clause.patterns:
                    for element in pattern.elements:
                        if element.variable:
                            for key, value in element.properties:
                                analyzer.add_pattern_equality(
                                    element.variable, key, value
                                )
            analyzer.add_predicate(where)
            reasons = analyzer.contradictions()
            if not reasons:
                continue
            implicated = {
                subject for subject, domain in analyzer.domains.items()
                if domain.contradiction() is not None
            }
            conjuncts = flatten_and(where)
            if len(conjuncts) > 8:
                continue
            ranked = sorted(
                range(len(conjuncts)),
                key=lambda i: (
                    0 if self._mentions(conjuncts[i], implicated) else 1,
                    i,
                ),
            )
            for index in ranked:
                remaining = [
                    c for j, c in enumerate(conjuncts) if j != index
                ]
                new_clause = replace(clause, where=_and_join(remaining))
                proposals.append(_Proposal(
                    kind="drop-conjunct",
                    description=(
                        "dropped conjunct "
                        f"{render_expression(conjuncts[index])!r} "
                        "implicated in an unsatisfiable WHERE clause"
                    ),
                    fixed=render_query(
                        self._swap_clause(query, ci, new_clause)
                    ),
                    addresses=("unsatisfiable-predicate",),
                    order=order,
                ))
                order += 1
        return proposals

    @staticmethod
    def _mentions(conjunct: Expression, subjects: set[str]) -> bool:
        text = render_expression(conjunct)
        return any(subject in text for subject in subjects)

    # ------------------------------------------------------------------
    @staticmethod
    def _swap_clause(query: SingleQuery, index: int, clause) -> SingleQuery:
        clauses = list(query.clauses)
        clauses[index] = clause
        return replace(query, clauses=tuple(clauses))


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _and_join(conjuncts: list[Expression]) -> Optional[Expression]:
    if not conjuncts:
        return None
    joined = conjuncts[0]
    for conjunct in conjuncts[1:]:
        joined = BinaryOp("AND", joined, conjunct)
    return joined


_TRUTHY = {"true": True, "false": False}


def _coerce_literal(value: object, targets: frozenset[str]) -> Optional[
    object
]:
    """Coerce a literal into one of the target classes, or None."""
    for target in ("number", "string", "boolean"):
        if target not in targets:
            continue
        if target == "number":
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, str):
                try:
                    return int(value)
                except ValueError:
                    try:
                        return float(value)
                    except ValueError:
                        continue
        elif target == "string":
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, (int, float)):
                rendered = repr(value)
                return rendered
        elif target == "boolean":
            if isinstance(value, str) and value.lower() in _TRUTHY:
                return _TRUTHY[value.lower()]
            if isinstance(value, int) and not isinstance(value, bool) and (
                value in (0, 1)
            ):
                return bool(value)
    return None
