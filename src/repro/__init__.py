"""repro — reproduction of *Graph Consistency Rule Mining with LLMs: an
Exploratory Study* (EDBT 2025).

The package implements the paper's full pipeline offline:

* :mod:`repro.graph` — property-graph store (Neo4j substitute)
* :mod:`repro.cypher` — Cypher-subset interpreter
* :mod:`repro.encoding` — incident encoder + sliding windows
* :mod:`repro.rag` — embeddings, vector store, retrieval
* :mod:`repro.llm` — simulated LLaMA-3 / Mixtral with fault injection
* :mod:`repro.rules` — consistency-rule model and Cypher translation
* :mod:`repro.metrics` — support / coverage / confidence
* :mod:`repro.correction` — the paper's §4.4 correction protocol
* :mod:`repro.mining` — sliding-window and RAG pipelines
* :mod:`repro.baselines` — AMIE-style and profiler baselines
* :mod:`repro.datasets` — WWC2019 / Cybersecurity / Twitter generators
* :mod:`repro.experiments` — regenerate every table in the paper
"""

__version__ = "1.0.0"
