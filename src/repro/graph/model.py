"""Core property-graph data model.

A property graph (Bonifati et al., *Querying Graphs*, 2018) is a directed
multigraph in which nodes carry a set of *labels* and both nodes and edges
carry *properties* — key/value pairs over a small set of primitive types.
This module defines the immutable element types; :mod:`repro.graph.store`
provides the indexed container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.graph.errors import InvalidPropertyError

#: Primitive property value types supported by the graph (mirrors Neo4j's
#: storable types minus spatial values).  Dates are stored as ISO-8601
#: strings; the Cypher layer compares them lexicographically, which is
#: order-preserving for ISO-8601.
PRIMITIVES = (str, int, float, bool)

PropertyValue = Any  # primitive or homogeneous list of primitives
Properties = Mapping[str, PropertyValue]


def validate_property_value(key: str, value: PropertyValue) -> PropertyValue:
    """Validate a property value, returning it unchanged if acceptable.

    Acceptable values are primitives (str, int, float, bool), ``None`` and
    flat lists of primitives.  Anything else raises
    :class:`~repro.graph.errors.InvalidPropertyError`.
    """
    if value is None or isinstance(value, PRIMITIVES):
        return value
    if isinstance(value, (list, tuple)):
        items = list(value)
        for item in items:
            if not isinstance(item, PRIMITIVES):
                raise InvalidPropertyError(key, value)
        return items
    raise InvalidPropertyError(key, value)


def _clean_properties(properties: Properties | None) -> dict[str, PropertyValue]:
    if not properties:
        return {}
    return {
        key: validate_property_value(key, value)
        for key, value in properties.items()
    }


@dataclass(frozen=True)
class Node:
    """A graph node: an id, a set of labels and a property map."""

    id: str
    labels: frozenset[str]
    properties: dict[str, PropertyValue] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        node_id: str,
        labels: Iterable[str] | str,
        properties: Properties | None = None,
    ) -> "Node":
        """Build a node, normalising labels and validating properties."""
        if isinstance(labels, str):
            labels = [labels]
        return cls(
            id=str(node_id),
            labels=frozenset(labels),
            properties=_clean_properties(properties),
        )

    def has_label(self, label: str) -> bool:
        return label in self.labels

    def get(self, key: str, default: PropertyValue = None) -> PropertyValue:
        return self.properties.get(key, default)

    def with_properties(self, updates: Properties) -> "Node":
        """Return a copy of this node with ``updates`` merged in."""
        merged = dict(self.properties)
        merged.update(_clean_properties(updates))
        return Node(id=self.id, labels=self.labels, properties=merged)

    def without_property(self, key: str) -> "Node":
        """Return a copy of this node with ``key`` removed (if present)."""
        remaining = {k: v for k, v in self.properties.items() if k != key}
        return Node(id=self.id, labels=self.labels, properties=remaining)

    def sorted_labels(self) -> list[str]:
        return sorted(self.labels)


@dataclass(frozen=True)
class Edge:
    """A directed, typed edge with properties.

    ``label`` is the relationship type (Neo4j allows exactly one per
    relationship, and all Cypher queries in the study use single types).
    """

    id: str
    label: str
    src: str
    dst: str
    properties: dict[str, PropertyValue] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        edge_id: str,
        label: str,
        src: str,
        dst: str,
        properties: Properties | None = None,
    ) -> "Edge":
        """Build an edge, validating its properties."""
        return cls(
            id=str(edge_id),
            label=str(label),
            src=str(src),
            dst=str(dst),
            properties=_clean_properties(properties),
        )

    def get(self, key: str, default: PropertyValue = None) -> PropertyValue:
        return self.properties.get(key, default)

    def with_properties(self, updates: Properties) -> "Edge":
        """Return a copy of this edge with ``updates`` merged in."""
        merged = dict(self.properties)
        merged.update(_clean_properties(updates))
        return Edge(
            id=self.id, label=self.label, src=self.src, dst=self.dst,
            properties=merged,
        )

    def other_end(self, node_id: str) -> str:
        """Return the endpoint opposite ``node_id``."""
        if node_id == self.src:
            return self.dst
        if node_id == self.dst:
            return self.src
        raise ValueError(f"node {node_id!r} is not an endpoint of edge {self.id!r}")
