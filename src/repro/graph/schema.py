"""Schema inference over property graphs.

The prompts in the study include "information about the property graph
including nodes, edge labels, and properties" (§3.2).  This module derives
that information from the data: per-label property statistics, property type
profiles, and the (source label, edge label, target label) triples actually
present — the graph's *endpoint signature*.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.graph.store import PropertyGraph


def _type_name(value: object) -> str:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "list"
    return type(value).__name__


@dataclass
class PropertyProfile:
    """Observed statistics for one property key under one label."""

    key: str
    present: int = 0
    types: Counter = field(default_factory=Counter)
    distinct_sample: set = field(default_factory=set)

    #: cap on the distinct-value sample kept for uniqueness estimation
    SAMPLE_CAP = 100_000

    def observe(self, value: object) -> None:
        self.present += 1
        self.types[_type_name(value)] += 1
        if len(self.distinct_sample) < self.SAMPLE_CAP:
            try:
                self.distinct_sample.add(value)
            except TypeError:
                self.distinct_sample.add(repr(value))

    @property
    def dominant_type(self) -> str:
        if not self.types:
            return "unknown"
        return self.types.most_common(1)[0][0]

    def completeness(self, total: int) -> float:
        """Fraction of elements under the label that carry this key."""
        return self.present / total if total else 0.0

    def uniqueness(self) -> float:
        """Distinct values / occurrences (1.0 means candidate key)."""
        return len(self.distinct_sample) / self.present if self.present else 0.0


@dataclass
class LabelProfile:
    """Schema profile for a node or edge label."""

    label: str
    count: int = 0
    properties: dict[str, PropertyProfile] = field(default_factory=dict)

    def observe(self, properties: dict) -> None:
        self.count += 1
        for key, value in properties.items():
            profile = self.properties.get(key)
            if profile is None:
                profile = self.properties[key] = PropertyProfile(key)
            profile.observe(value)

    def property_keys(self) -> list[str]:
        return sorted(self.properties)

    def mandatory_keys(self, threshold: float = 1.0) -> list[str]:
        """Keys present on at least ``threshold`` of elements."""
        return sorted(
            key
            for key, profile in self.properties.items()
            if profile.completeness(self.count) >= threshold
        )

    def candidate_keys(self, min_uniqueness: float = 1.0) -> list[str]:
        """Keys that are complete and (near-)unique across the label."""
        return sorted(
            key
            for key, profile in self.properties.items()
            if profile.completeness(self.count) >= 1.0
            and profile.uniqueness() >= min_uniqueness
        )


@dataclass(frozen=True)
class EndpointSignature:
    """One (source label, edge label, target label) triple with its count."""

    src_label: str
    edge_label: str
    dst_label: str
    count: int


@dataclass
class GraphSchema:
    """Inferred schema of a property graph."""

    node_profiles: dict[str, LabelProfile]
    edge_profiles: dict[str, LabelProfile]
    endpoints: list[EndpointSignature]

    def node_labels(self) -> list[str]:
        return sorted(self.node_profiles)

    def edge_labels(self) -> list[str]:
        return sorted(self.edge_profiles)

    def node_property_keys(self, label: str) -> list[str]:
        profile = self.node_profiles.get(label)
        return profile.property_keys() if profile else []

    def edge_property_keys(self, label: str) -> list[str]:
        profile = self.edge_profiles.get(label)
        return profile.property_keys() if profile else []

    def has_node_property(self, label: str, key: str) -> bool:
        profile = self.node_profiles.get(label)
        return bool(profile and key in profile.properties)

    def has_edge_property(self, label: str, key: str) -> bool:
        profile = self.edge_profiles.get(label)
        return bool(profile and key in profile.properties)

    def endpoint_signatures(
        self, edge_label: str | None = None
    ) -> list[EndpointSignature]:
        if edge_label is None:
            return list(self.endpoints)
        return [sig for sig in self.endpoints if sig.edge_label == edge_label]

    def edge_connects(
        self, src_label: str, edge_label: str, dst_label: str
    ) -> bool:
        """True if the triple occurs in the data (in this direction)."""
        return any(
            sig.src_label == src_label and sig.dst_label == dst_label
            for sig in self.endpoint_signatures(edge_label)
        )

    def describe(self) -> str:
        """Render the schema as the plain-text summary used in prompts."""
        lines = ["Node labels and properties:"]
        for label in self.node_labels():
            keys = ", ".join(self.node_property_keys(label)) or "(none)"
            lines.append(f"  {label}: {keys}")
        lines.append("Edge labels and properties:")
        for label in self.edge_labels():
            keys = ", ".join(self.edge_property_keys(label)) or "(none)"
            lines.append(f"  {label}: {keys}")
        lines.append("Connections (source)-[edge]->(target):")
        for sig in self.endpoints:
            lines.append(
                f"  ({sig.src_label})-[:{sig.edge_label}]->({sig.dst_label})"
                f" x{sig.count}"
            )
        return "\n".join(lines)


def infer_schema(graph: PropertyGraph) -> GraphSchema:
    """Scan the graph once and build its :class:`GraphSchema`."""
    node_profiles: dict[str, LabelProfile] = {}
    for node in graph.nodes():
        for label in node.sorted_labels():
            profile = node_profiles.get(label)
            if profile is None:
                profile = node_profiles[label] = LabelProfile(label)
            profile.observe(node.properties)

    edge_profiles: dict[str, LabelProfile] = {}
    endpoint_counts: dict[tuple[str, str, str], int] = defaultdict(int)
    for edge in graph.edges():
        profile = edge_profiles.get(edge.label)
        if profile is None:
            profile = edge_profiles[edge.label] = LabelProfile(edge.label)
        profile.observe(edge.properties)
        src_labels = graph.node(edge.src).sorted_labels() or [""]
        dst_labels = graph.node(edge.dst).sorted_labels() or [""]
        for src_label in src_labels:
            for dst_label in dst_labels:
                endpoint_counts[(src_label, edge.label, dst_label)] += 1

    endpoints = [
        EndpointSignature(src, label, dst, count)
        for (src, label, dst), count in sorted(endpoint_counts.items())
    ]
    return GraphSchema(
        node_profiles=node_profiles,
        edge_profiles=edge_profiles,
        endpoints=endpoints,
    )
