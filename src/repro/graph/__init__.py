"""Property-graph substrate: data model, indexed store, schema, IO, stats."""

from repro.graph.errors import (
    DanglingEdgeError,
    DuplicateElementError,
    ElementNotFoundError,
    GraphError,
    InvalidPropertyError,
)
from repro.graph.io import (
    build_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graph.model import Edge, Node
from repro.graph.schema import (
    EndpointSignature,
    GraphSchema,
    LabelProfile,
    PropertyProfile,
    infer_schema,
)
from repro.graph.statistics import GraphStatistics, compute_statistics
from repro.graph.store import PropertyGraph

__all__ = [
    "DanglingEdgeError",
    "DuplicateElementError",
    "Edge",
    "ElementNotFoundError",
    "EndpointSignature",
    "GraphError",
    "GraphSchema",
    "GraphStatistics",
    "InvalidPropertyError",
    "LabelProfile",
    "Node",
    "PropertyGraph",
    "PropertyProfile",
    "build_graph",
    "compute_statistics",
    "graph_from_dict",
    "graph_to_dict",
    "infer_schema",
    "load_graph",
    "save_graph",
]
