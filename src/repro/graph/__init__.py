"""Property-graph substrate: data model, indexed store, schema, IO, stats."""

from repro.graph.changelog import (
    DeltaKind,
    GraphChangeLog,
    GraphDelta,
    compact_deltas,
)
from repro.graph.columnar import (
    ColumnarArtifactError,
    ColumnarGraph,
    compile_graph,
)
from repro.graph.errors import (
    DanglingEdgeError,
    DuplicateElementError,
    ElementNotFoundError,
    GraphError,
    InvalidPropertyError,
)
from repro.graph.io import (
    build_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graph.model import Edge, Node
from repro.graph.schema import (
    EndpointSignature,
    GraphSchema,
    LabelProfile,
    PropertyProfile,
    infer_schema,
)
from repro.graph.statistics import (
    EdgeLabelStats,
    GraphCatalog,
    GraphStatistics,
    PropertySketch,
    build_catalog,
    catalog_from_columnar,
    compute_statistics,
)
from repro.graph.store import PropertyGraph

__all__ = [
    "ColumnarArtifactError",
    "ColumnarGraph",
    "DanglingEdgeError",
    "DeltaKind",
    "DuplicateElementError",
    "Edge",
    "EdgeLabelStats",
    "ElementNotFoundError",
    "EndpointSignature",
    "GraphCatalog",
    "GraphChangeLog",
    "GraphDelta",
    "GraphError",
    "GraphSchema",
    "GraphStatistics",
    "InvalidPropertyError",
    "LabelProfile",
    "Node",
    "PropertyGraph",
    "PropertyProfile",
    "PropertySketch",
    "build_catalog",
    "build_graph",
    "catalog_from_columnar",
    "compact_deltas",
    "compile_graph",
    "compute_statistics",
    "graph_from_dict",
    "graph_to_dict",
    "infer_schema",
    "load_graph",
    "save_graph",
]
