"""Typed mutation deltas and the bounded graph change log.

:class:`~repro.graph.store.PropertyGraph` emits a :class:`GraphDelta` for
every mutation; :class:`GraphChangeLog` subscribes to that stream and keeps
a bounded, epoch-stamped history so downstream consumers (incremental rule
maintenance, dirty-window re-encoding) can ask "what changed since epoch
N?" instead of re-reading the whole graph.

The log is a ring buffer: when ``capacity`` is exceeded the oldest deltas
fall off and the log records the highest epoch it lost.  Consumers must
check :meth:`GraphChangeLog.complete_since` before trusting
:meth:`GraphChangeLog.since` — an incomplete answer means the only sound
move is a full recompute.

Compaction collapses superseded deltas while preserving the *net* effect
of the history (the only thing delta consumers here depend on — both rule
maintenance and window invalidation re-read final graph state):

* add followed by remove of a subject born inside the log cancels
  entirely (including any property deltas in between);
* property deltas merge into the preceding add, or into each other
  (union of touched keys);
* property deltas before a remove are dropped — the remove supersedes.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.store import PropertyGraph


class DeltaKind(Enum):
    """The six mutation shapes a property graph can undergo."""

    NODE_ADDED = "node_added"
    NODE_REMOVED = "node_removed"
    NODE_PROPS = "node_props"
    EDGE_ADDED = "edge_added"
    EDGE_REMOVED = "edge_removed"
    EDGE_PROPS = "edge_props"

    @property
    def is_node(self) -> bool:
        return self in (
            DeltaKind.NODE_ADDED, DeltaKind.NODE_REMOVED, DeltaKind.NODE_PROPS
        )

    @property
    def is_edge(self) -> bool:
        return not self.is_node


@dataclass(frozen=True)
class GraphDelta:
    """One typed mutation, stamped with the epoch that first includes it.

    ``labels`` carries the node's labels (node deltas) or the endpoint
    labels are irrelevant and it is empty (edge deltas); ``edge_label`` /
    ``src`` / ``dst`` are populated for edge deltas only.  ``keys`` lists
    the property keys the mutation touched (all keys for adds/removes).
    """

    kind: DeltaKind
    epoch: int
    subject_id: str
    labels: tuple[str, ...] = ()
    edge_label: str | None = None
    src: str | None = None
    dst: str | None = None
    keys: tuple[str, ...] = ()

    @property
    def subject_key(self) -> tuple[str, str]:
        """Identity for compaction: node and edge id spaces are disjoint."""
        return ("node" if self.kind.is_node else "edge", self.subject_id)


def _fold_subject(deltas: list[GraphDelta]) -> list[GraphDelta]:
    """Compact one subject's chronological delta sequence (see module doc)."""
    out: list[GraphDelta] = []
    for delta in deltas:
        if delta.kind in (DeltaKind.NODE_ADDED, DeltaKind.EDGE_ADDED):
            out.append(delta)
        elif delta.kind in (DeltaKind.NODE_PROPS, DeltaKind.EDGE_PROPS):
            if out:
                prev = out[-1]
                merged_keys = tuple(dict.fromkeys(prev.keys + delta.keys))
                # later epoch keeps the merged delta visible to since();
                # add-kind survives the merge (subject is still "new")
                out[-1] = replace(
                    prev, keys=merged_keys, epoch=max(prev.epoch, delta.epoch)
                )
            else:
                out.append(delta)
        else:  # NODE_REMOVED / EDGE_REMOVED
            if out and out[0].kind in (
                DeltaKind.NODE_ADDED, DeltaKind.EDGE_ADDED
            ):
                # born and deceased inside the log: net effect is nothing
                out = []
            else:
                out = [delta]
    return out


def compact_deltas(deltas: list[GraphDelta]) -> list[GraphDelta]:
    """Collapse superseded deltas, preserving chronological order."""
    by_subject: dict[tuple[str, str], list[GraphDelta]] = {}
    positions: dict[int, int] = {}
    for index, delta in enumerate(deltas):
        by_subject.setdefault(delta.subject_key, []).append(delta)
        positions[id(delta)] = index

    retained: list[tuple[int, GraphDelta]] = []
    for subject_deltas in by_subject.values():
        last_position = positions[id(subject_deltas[-1])]
        folded = _fold_subject(subject_deltas)
        for delta in folded:
            # merged deltas lose their original identity; order them by
            # the subject's last activity so causality is never inverted
            position = positions.get(id(delta), last_position)
            retained.append((position, delta))
    retained.sort(key=lambda pair: pair[0])
    return [delta for _, delta in retained]


class GraphChangeLog:
    """Bounded, thread-safe subscriber recording a graph's delta stream."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("changelog capacity must be >= 1")
        self.capacity = capacity
        self._deltas: deque[GraphDelta] = deque()
        self._lock = threading.Lock()
        self._dropped = 0
        #: highest epoch any dropped delta carried; since(epoch) is only
        #: complete for epoch >= this watermark
        self._lost_through_epoch = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, graph: "PropertyGraph") -> "GraphChangeLog":
        """Subscribe to ``graph``'s mutation stream; returns self."""
        graph.subscribe(self.record)
        return self

    def detach(self, graph: "PropertyGraph") -> None:
        graph.unsubscribe(self.record)

    def record(self, delta: GraphDelta) -> None:
        """Append one delta, evicting the oldest past capacity."""
        with self._lock:
            self._deltas.append(delta)
            while len(self._deltas) > self.capacity:
                lost = self._deltas.popleft()
                self._dropped += 1
                self._lost_through_epoch = max(
                    self._lost_through_epoch, lost.epoch
                )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Deltas lost to the ring-buffer bound since construction."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self) -> Iterator[GraphDelta]:
        with self._lock:
            return iter(list(self._deltas))

    def deltas(self) -> list[GraphDelta]:
        with self._lock:
            return list(self._deltas)

    def since(self, epoch: int) -> list[GraphDelta]:
        """All recorded deltas with ``delta.epoch > epoch``."""
        with self._lock:
            return [d for d in self._deltas if d.epoch > epoch]

    def complete_since(self, epoch: int) -> bool:
        """Whether :meth:`since` covers *every* mutation after ``epoch``.

        False once the ring buffer has dropped a delta newer than
        ``epoch`` — the caller must fall back to a full recompute.
        """
        return self._lost_through_epoch <= epoch

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Collapse superseded deltas in place; returns how many went away."""
        with self._lock:
            before = len(self._deltas)
            self._deltas = deque(compact_deltas(list(self._deltas)))
            return before - len(self._deltas)

    def clear(self, through_epoch: int | None = None) -> int:
        """Drop deltas at or below ``through_epoch`` (all when None).

        Deliberate clearing is *not* data loss: the caller is asserting it
        has consumed that prefix, so the completeness watermark does not
        move.
        """
        with self._lock:
            if through_epoch is None:
                removed = len(self._deltas)
                self._deltas.clear()
                return removed
            before = len(self._deltas)
            self._deltas = deque(
                d for d in self._deltas if d.epoch > through_epoch
            )
            return before - len(self._deltas)
