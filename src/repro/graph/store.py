"""Indexed in-memory property-graph store.

This is the reproduction's substitute for Neo4j: a directed multigraph with
secondary indexes on node labels, edge labels and adjacency, sufficient to
back the Cypher interpreter in :mod:`repro.cypher` with index-backed scans.

Mutation is node/edge-at-a-time (the study never needs transactions); all
read paths return stable, deterministic orderings so that experiments are
bit-for-bit reproducible.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.graph.errors import (
    DanglingEdgeError,
    DuplicateElementError,
    ElementNotFoundError,
)
from repro.graph.model import Edge, Node, Properties


class PropertyGraph:
    """A directed property multigraph with label and adjacency indexes."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._edges: dict[str, Edge] = {}
        # label -> ordered set of node ids (dict used as ordered set)
        self._nodes_by_label: dict[str, dict[str, None]] = defaultdict(dict)
        self._edges_by_label: dict[str, dict[str, None]] = defaultdict(dict)
        # node id -> ordered set of incident edge ids
        self._out_edges: dict[str, dict[str, None]] = defaultdict(dict)
        self._in_edges: dict[str, dict[str, None]] = defaultdict(dict)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        labels: Iterable[str] | str,
        properties: Properties | None = None,
    ) -> Node:
        """Create and index a node; raises if the id already exists."""
        node = Node.create(node_id, labels, properties)
        if node.id in self._nodes:
            raise DuplicateElementError("node", node.id)
        self._nodes[node.id] = node
        for label in node.labels:
            self._nodes_by_label[label][node.id] = None
        return node

    def add_edge(
        self,
        edge_id: str,
        label: str,
        src: str,
        dst: str,
        properties: Properties | None = None,
    ) -> Edge:
        """Create and index an edge; both endpoints must already exist."""
        edge = Edge.create(edge_id, label, src, dst, properties)
        if edge.id in self._edges:
            raise DuplicateElementError("edge", edge.id)
        for endpoint in (edge.src, edge.dst):
            if endpoint not in self._nodes:
                raise DanglingEdgeError(edge.id, endpoint)
        self._edges[edge.id] = edge
        self._edges_by_label[edge.label][edge.id] = None
        self._out_edges[edge.src][edge.id] = None
        self._in_edges[edge.dst][edge.id] = None
        return edge

    def update_node(self, node_id: str, properties: Properties) -> Node:
        """Merge ``properties`` into an existing node."""
        node = self.node(node_id)
        updated = node.with_properties(properties)
        self._nodes[node_id] = updated
        return updated

    def remove_node_property(self, node_id: str, key: str) -> Node:
        """Drop a property from an existing node (no-op if absent)."""
        node = self.node(node_id)
        updated = node.without_property(key)
        self._nodes[node_id] = updated
        return updated

    def update_edge(self, edge_id: str, properties: Properties) -> Edge:
        """Merge ``properties`` into an existing edge."""
        edge = self.edge(edge_id)
        updated = edge.with_properties(properties)
        self._edges[edge_id] = updated
        return updated

    def remove_edge(self, edge_id: str) -> None:
        """Delete an edge and de-index it."""
        edge = self.edge(edge_id)
        del self._edges[edge_id]
        self._edges_by_label[edge.label].pop(edge_id, None)
        self._out_edges[edge.src].pop(edge_id, None)
        self._in_edges[edge.dst].pop(edge_id, None)

    def remove_node(self, node_id: str) -> None:
        """Delete a node along with all of its incident edges."""
        node = self.node(node_id)
        incident = list(self._out_edges.get(node_id, ())) + list(
            self._in_edges.get(node_id, ())
        )
        for edge_id in incident:
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._nodes[node_id]
        for label in node.labels:
            self._nodes_by_label[label].pop(node_id, None)
        self._out_edges.pop(node_id, None)
        self._in_edges.pop(node_id, None)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ElementNotFoundError("node", node_id) from None

    def edge(self, edge_id: str) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise ElementNotFoundError("edge", edge_id) from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: str) -> bool:
        return edge_id in self._edges

    # ------------------------------------------------------------------
    # scans (all deterministic: insertion order)
    # ------------------------------------------------------------------
    def nodes(self, label: str | None = None) -> Iterator[Node]:
        """Iterate nodes, optionally restricted to one label (index scan)."""
        if label is None:
            yield from self._nodes.values()
        else:
            for node_id in self._nodes_by_label.get(label, ()):
                yield self._nodes[node_id]

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        """Iterate edges, optionally restricted to one label (index scan)."""
        if label is None:
            yield from self._edges.values()
        else:
            for edge_id in self._edges_by_label.get(label, ()):
                yield self._edges[edge_id]

    def out_edges(self, node_id: str, label: str | None = None) -> Iterator[Edge]:
        """Edges leaving ``node_id``, optionally filtered by label."""
        for edge_id in self._out_edges.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def in_edges(self, node_id: str, label: str | None = None) -> Iterator[Edge]:
        """Edges entering ``node_id``, optionally filtered by label."""
        for edge_id in self._in_edges.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def incident_edges(self, node_id: str, label: str | None = None) -> Iterator[Edge]:
        """All edges touching ``node_id`` in either direction."""
        yield from self.out_edges(node_id, label)
        yield from self.in_edges(node_id, label)

    def degree(self, node_id: str) -> int:
        return len(self._out_edges.get(node_id, ())) + len(
            self._in_edges.get(node_id, ())
        )

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    def node_labels(self) -> list[str]:
        """All node labels in use, sorted."""
        return sorted(
            label for label, ids in self._nodes_by_label.items() if ids
        )

    def edge_labels(self) -> list[str]:
        """All edge labels in use, sorted."""
        return sorted(
            label for label, ids in self._edges_by_label.items() if ids
        )

    def node_count(self, label: str | None = None) -> int:
        if label is None:
            return len(self._nodes)
        return len(self._nodes_by_label.get(label, ()))

    def edge_count(self, label: str | None = None) -> int:
        if label is None:
            return len(self._edges)
        return len(self._edges_by_label.get(label, ()))

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(name={self.name!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._edges)})"
        )
