"""Indexed in-memory property-graph store.

This is the reproduction's substitute for Neo4j: a directed multigraph with
secondary indexes on node labels, edge labels, adjacency and — for the
query planner — per-(label, property) hash indexes, sufficient to back the
Cypher interpreter in :mod:`repro.cypher` with index-backed scans.

Mutation is node/edge-at-a-time (the study never needs transactions); all
read paths return stable, deterministic orderings so that experiments are
bit-for-bit reproducible.  Every mutation bumps a monotonic *epoch*, which
the planner's statistics catalog and plan cache use for invalidation.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import replace as _replace_delta
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.graph.changelog import DeltaKind, GraphChangeLog, GraphDelta
from repro.graph.errors import (
    DanglingEdgeError,
    DuplicateElementError,
    ElementNotFoundError,
)
from repro.graph.model import Edge, Node, Properties

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.columnar import ColumnarGraph
    from repro.graph.statistics import GraphCatalog

#: process-unique tokens so two graphs never share a plan-cache key, even
#: if one is garbage-collected and the other reuses its memory address
_GRAPH_TOKENS = itertools.count(1)

#: small-delta floor below which incremental CSR maintenance is always
#: worth trying, regardless of graph size
_INCREMENTAL_MIN = 64


def _metric_inc(name: str, value: int = 1) -> None:
    # the graph layer stays import-clean of obs; the registry is a
    # process-global sink, so binding it per call is enough
    from repro import obs

    obs.inc(name, value)


def property_index_key(value: object) -> object | None:
    """Normalize a property value into a hash-index key.

    Cypher equality treats ``2`` and ``2.0`` as equal but ``true`` and
    ``1`` as different, while Python's dict hashing conflates all three;
    the type tag keeps the index faithful to Cypher semantics.  ``None``
    (no index entry — a null property never equals anything) is returned
    for null and for unindexable values (lists, NaN).
    """
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        if value != value:  # NaN never equals itself
            return None
        return ("n", float(value))
    if isinstance(value, str):
        return ("s", value)
    return None


class PropertyGraph:
    """A directed property multigraph with label, adjacency and property
    indexes."""

    def __init__(self, name: str = "graph", *, columnar: bool = True) -> None:
        self.name = name
        #: escape hatch: ``columnar=False`` keeps every read on the
        #: legacy dict-of-dicts paths (matcher, catalog) for this graph
        self.columnar_enabled = columnar
        self._nodes: dict[str, Node] = {}
        self._edges: dict[str, Edge] = {}
        # label -> ordered set of node ids (dict used as ordered set)
        self._nodes_by_label: dict[str, dict[str, None]] = defaultdict(dict)
        self._edges_by_label: dict[str, dict[str, None]] = defaultdict(dict)
        # node id -> ordered set of incident edge ids
        self._out_edges: dict[str, dict[str, None]] = defaultdict(dict)
        self._in_edges: dict[str, dict[str, None]] = defaultdict(dict)
        # (label, property key) -> index key -> ordered set of node ids
        self._property_index: dict[
            tuple[str, str], dict[object, dict[str, None]]
        ] = defaultdict(lambda: defaultdict(dict))
        self._token = next(_GRAPH_TOKENS)
        self._epoch = 0
        self._catalog_cache: tuple[int, "GraphCatalog"] | None = None
        self._observers: list[Callable[[GraphDelta], None]] = []
        self._batch_depth = 0
        self._batch_dirty = False
        self._pending_deltas: list[GraphDelta] = []
        self._columnar_cache: "ColumnarGraph" | None = None
        self._columnar_log: GraphChangeLog | None = None

    # ------------------------------------------------------------------
    # versioning
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; any write increments it."""
        return self._epoch

    def fingerprint(self) -> tuple[int, int]:
        """A process-unique (graph, version) key for plan/stat caches."""
        return (self._token, self._epoch)

    def _touch(self) -> None:
        if self._batch_depth:
            # inside batch(): defer the epoch bump, but drop any catalog
            # built this epoch — it no longer reflects graph contents
            self._batch_dirty = True
            self._catalog_cache = None
        else:
            self._epoch += 1

    # ------------------------------------------------------------------
    # mutation observers
    # ------------------------------------------------------------------
    def subscribe(self, observer: Callable[[GraphDelta], None]) -> None:
        """Register ``observer`` to receive a delta for every mutation."""
        if observer not in self._observers:
            self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[GraphDelta], None]) -> None:
        # equality, not identity: a bound method like ``changelog.record``
        # is a fresh object on every attribute access
        self._observers = [o for o in self._observers if o != observer]

    def _emit(self, kind: DeltaKind, subject_id: str, **fields: object) -> None:
        if not self._observers:
            return
        delta = GraphDelta(
            kind=kind, epoch=self._epoch, subject_id=subject_id, **fields
        )
        if self._batch_depth:
            # stamped with the committing epoch once the batch flushes
            self._pending_deltas.append(delta)
            return
        for observer in list(self._observers):
            observer(delta)

    @contextmanager
    def batch(self) -> Iterator["PropertyGraph"]:
        """Coalesce a burst of mutations into a single epoch bump.

        N inserts normally cost N catalog/plan-cache invalidations; inside
        ``with graph.batch():`` the epoch advances once, at exit, and the
        buffered deltas flush to observers stamped with that committing
        epoch.  Reentrant — nested batches flush with the outermost exit.

        Mid-batch reads see the mutated contents but the *pre-batch*
        epoch/fingerprint, so derived statistics may lag until exit.
        Mutations already applied are kept even if the body raises (the
        store is not transactional); the flush still happens so observers
        never miss a delta.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                if self._batch_dirty:
                    self._batch_dirty = False
                    self._epoch += 1
                pending, self._pending_deltas = self._pending_deltas, []
                for delta in pending:
                    stamped = _replace_delta(delta, epoch=self._epoch)
                    for observer in list(self._observers):
                        observer(stamped)

    def columnar(self) -> "ColumnarGraph":
        """The CSR snapshot of the current contents, cached per epoch.

        Small mutation batches since the cached snapshot are applied
        incrementally from the private change log; large batches, ring
        buffer loss, or any inconsistency fall back to a full recompile
        (see :mod:`repro.graph.columnar`).  Mid-batch, or when the graph
        was built with ``columnar=False``, an uncached throwaway
        snapshot is compiled instead.
        """
        from repro.graph.columnar import compile_graph

        if not self.columnar_enabled or (
            self._batch_depth and self._batch_dirty
        ):
            return compile_graph(self)
        cached = self._columnar_cache
        if cached is not None and cached.epoch == self._epoch:
            return cached
        if self._columnar_log is None:
            self._columnar_log = GraphChangeLog().attach(self)
        log = self._columnar_log
        snapshot = None
        if cached is not None and log.complete_since(cached.epoch):
            deltas = log.since(cached.epoch)
            budget = max(
                _INCREMENTAL_MIN,
                (len(self._nodes) + len(self._edges)) // 4,
            )
            if len(deltas) + cached.overlay_ops <= budget:
                try:
                    snapshot = cached.apply_deltas(self, deltas)
                except Exception:
                    snapshot = None  # recompile below
                else:
                    _metric_inc("graph.csr.incremental_updates")
        if snapshot is None:
            snapshot = compile_graph(self)
            _metric_inc("graph.csr.compiles")
        self._columnar_cache = snapshot
        log.clear(through_epoch=self._epoch)
        return snapshot

    def adopt_columnar(self, snapshot: "ColumnarGraph") -> None:
        """Install a pre-compiled snapshot (a deserialized artifact) as
        the columnar cache for the current epoch, so the first query
        skips compilation entirely."""
        snapshot.graph_token, snapshot.epoch = self.fingerprint()
        self._columnar_cache = snapshot
        if self.columnar_enabled and self._columnar_log is None:
            self._columnar_log = GraphChangeLog().attach(self)

    def invalidate_columnar(self) -> None:
        """Drop the cached CSR snapshot, change log and catalog.

        The next ``columnar()``/``catalog()`` call rebuilds from
        scratch.  Used to release snapshot memory, and by the perf gate
        to profile from a cold cache regardless of what the process ran
        earlier (the dataset registry shares graph instances).
        """
        if self._columnar_log is not None:
            self._columnar_log.detach(self)
            self._columnar_log = None
        self._columnar_cache = None
        self._catalog_cache = None

    def catalog(self) -> "GraphCatalog":
        """The planner-grade statistics catalog, cached per epoch.

        With the columnar core enabled the catalog is derived from the
        CSR snapshot's interned counters in O(distinct values) — and
        when that snapshot was itself maintained incrementally from the
        change log, so was the catalog, replacing the O(graph) rescan
        watch mode used to trigger on every debounce tick.
        """
        cached = self._catalog_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        if self.columnar_enabled and not self._batch_depth:
            from repro.graph.statistics import catalog_from_columnar

            try:
                snapshot = self.columnar()
            except Exception:
                snapshot = None  # legacy rescan below
            if snapshot is not None:
                catalog = catalog_from_columnar(snapshot)
                if snapshot.origin == "incremental":
                    _metric_inc("graph.catalog.incremental_updates")
                self._catalog_cache = (self._epoch, catalog)
                return catalog
        from repro.graph.statistics import build_catalog

        catalog = build_catalog(self)
        self._catalog_cache = (self._epoch, catalog)
        return catalog

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        labels: Iterable[str] | str,
        properties: Properties | None = None,
    ) -> Node:
        """Create and index a node; raises if the id already exists."""
        node = Node.create(node_id, labels, properties)
        if node.id in self._nodes:
            raise DuplicateElementError("node", node.id)
        self._nodes[node.id] = node
        for label in node.labels:
            self._nodes_by_label[label][node.id] = None
        self._index_node_properties(node)
        self._touch()
        self._emit(
            DeltaKind.NODE_ADDED,
            node.id,
            labels=tuple(sorted(node.labels)),
            keys=tuple(sorted(node.properties)),
        )
        return node

    def add_edge(
        self,
        edge_id: str,
        label: str,
        src: str,
        dst: str,
        properties: Properties | None = None,
    ) -> Edge:
        """Create and index an edge; both endpoints must already exist."""
        edge = Edge.create(edge_id, label, src, dst, properties)
        if edge.id in self._edges:
            raise DuplicateElementError("edge", edge.id)
        for endpoint in (edge.src, edge.dst):
            if endpoint not in self._nodes:
                raise DanglingEdgeError(edge.id, endpoint)
        self._edges[edge.id] = edge
        self._edges_by_label[edge.label][edge.id] = None
        self._out_edges[edge.src][edge.id] = None
        self._in_edges[edge.dst][edge.id] = None
        self._touch()
        self._emit(
            DeltaKind.EDGE_ADDED,
            edge.id,
            edge_label=edge.label,
            src=edge.src,
            dst=edge.dst,
            keys=tuple(sorted(edge.properties)),
        )
        return edge

    def update_node(self, node_id: str, properties: Properties) -> Node:
        """Merge ``properties`` into an existing node."""
        node = self.node(node_id)
        self._deindex_node_properties(node, properties.keys())
        updated = node.with_properties(properties)
        self._nodes[node_id] = updated
        self._index_node_properties(updated, properties.keys())
        self._touch()
        self._emit(
            DeltaKind.NODE_PROPS,
            node_id,
            labels=tuple(sorted(updated.labels)),
            keys=tuple(sorted(properties.keys())),
        )
        return updated

    def remove_node_property(self, node_id: str, key: str) -> Node:
        """Drop a property from an existing node (no-op if absent)."""
        node = self.node(node_id)
        self._deindex_node_properties(node, (key,))
        updated = node.without_property(key)
        self._nodes[node_id] = updated
        self._touch()
        self._emit(
            DeltaKind.NODE_PROPS,
            node_id,
            labels=tuple(sorted(updated.labels)),
            keys=(key,),
        )
        return updated

    def update_edge(self, edge_id: str, properties: Properties) -> Edge:
        """Merge ``properties`` into an existing edge."""
        edge = self.edge(edge_id)
        updated = edge.with_properties(properties)
        self._edges[edge_id] = updated
        self._touch()
        self._emit(
            DeltaKind.EDGE_PROPS,
            edge_id,
            edge_label=updated.label,
            src=updated.src,
            dst=updated.dst,
            keys=tuple(sorted(properties.keys())),
        )
        return updated

    def remove_edge(self, edge_id: str) -> None:
        """Delete an edge and de-index it."""
        edge = self.edge(edge_id)
        del self._edges[edge_id]
        self._edges_by_label[edge.label].pop(edge_id, None)
        self._out_edges[edge.src].pop(edge_id, None)
        self._in_edges[edge.dst].pop(edge_id, None)
        self._touch()
        self._emit(
            DeltaKind.EDGE_REMOVED,
            edge_id,
            edge_label=edge.label,
            src=edge.src,
            dst=edge.dst,
            keys=tuple(sorted(edge.properties)),
        )

    def remove_node(self, node_id: str) -> None:
        """Delete a node along with all of its incident edges."""
        node = self.node(node_id)
        incident = list(self._out_edges.get(node_id, ())) + list(
            self._in_edges.get(node_id, ())
        )
        for edge_id in incident:
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._nodes[node_id]
        for label in node.labels:
            self._nodes_by_label[label].pop(node_id, None)
        self._out_edges.pop(node_id, None)
        self._in_edges.pop(node_id, None)
        self._deindex_node_properties(node, node.properties.keys())
        self._touch()
        self._emit(
            DeltaKind.NODE_REMOVED,
            node_id,
            labels=tuple(sorted(node.labels)),
            keys=tuple(sorted(node.properties)),
        )

    # ------------------------------------------------------------------
    # property-index maintenance
    # ------------------------------------------------------------------
    def _index_node_properties(
        self, node: Node, keys: Iterable[str] | None = None
    ) -> None:
        for key in (node.properties.keys() if keys is None else keys):
            if key not in node.properties:
                continue
            index_key = property_index_key(node.properties[key])
            if index_key is None:
                continue
            for label in node.labels:
                self._property_index[(label, key)][index_key][node.id] = None

    def _deindex_node_properties(
        self, node: Node, keys: Iterable[str]
    ) -> None:
        for key in keys:
            if key not in node.properties:
                continue
            index_key = property_index_key(node.properties[key])
            if index_key is None:
                continue
            for label in node.labels:
                bucket = self._property_index.get((label, key))
                if bucket is None:
                    continue
                entries = bucket.get(index_key)
                if entries is not None:
                    entries.pop(node.id, None)
                    if not entries:
                        del bucket[index_key]

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ElementNotFoundError("node", node_id) from None

    def edge(self, edge_id: str) -> Edge:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise ElementNotFoundError("edge", edge_id) from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def has_edge(self, edge_id: str) -> bool:
        return edge_id in self._edges

    # ------------------------------------------------------------------
    # scans (all deterministic: insertion order)
    # ------------------------------------------------------------------
    def nodes(self, label: str | None = None) -> Iterator[Node]:
        """Iterate nodes, optionally restricted to one label (index scan)."""
        if label is None:
            yield from self._nodes.values()
        else:
            for node_id in self._nodes_by_label.get(label, ()):
                yield self._nodes[node_id]

    def nodes_where(
        self, label: str, key: str, value: object
    ) -> Iterator[Node]:
        """Nodes with ``label`` whose property ``key`` equals ``value``.

        Backed by the hash property index: O(matches), not O(label).
        Unindexable values (null, lists, NaN) yield nothing — in Cypher a
        null property never satisfies an equality predicate, and list
        equality is handled by the matcher's scan path instead.
        """
        index_key = property_index_key(value)
        if index_key is None:
            return
        bucket = self._property_index.get((label, key))
        if bucket is None:
            return
        for node_id in bucket.get(index_key, ()):
            yield self._nodes[node_id]

    def count_where(self, label: str, key: str, value: object) -> int:
        """Number of nodes :meth:`nodes_where` would yield (O(1))."""
        index_key = property_index_key(value)
        if index_key is None:
            return 0
        bucket = self._property_index.get((label, key))
        if bucket is None:
            return 0
        return len(bucket.get(index_key, ()))

    def edges(self, label: str | None = None) -> Iterator[Edge]:
        """Iterate edges, optionally restricted to one label (index scan)."""
        if label is None:
            yield from self._edges.values()
        else:
            for edge_id in self._edges_by_label.get(label, ()):
                yield self._edges[edge_id]

    def out_edges(self, node_id: str, label: str | None = None) -> Iterator[Edge]:
        """Edges leaving ``node_id``, optionally filtered by label."""
        for edge_id in self._out_edges.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def in_edges(self, node_id: str, label: str | None = None) -> Iterator[Edge]:
        """Edges entering ``node_id``, optionally filtered by label."""
        for edge_id in self._in_edges.get(node_id, ()):
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def incident_edges(self, node_id: str, label: str | None = None) -> Iterator[Edge]:
        """All edges touching ``node_id``; a self-loop is yielded once."""
        out = self._out_edges.get(node_id, ())
        yield from self.out_edges(node_id, label)
        for edge_id in self._in_edges.get(node_id, ()):
            if edge_id in out:
                continue  # self-loop, already yielded from the out set
            edge = self._edges[edge_id]
            if label is None or edge.label == label:
                yield edge

    def degree(self, node_id: str) -> int:
        """Number of distinct incident edges (a self-loop counts once)."""
        out = self._out_edges.get(node_id, {})
        incoming = self._in_edges.get(node_id, {})
        return len(out) + sum(
            1 for edge_id in incoming if edge_id not in out
        )

    # ------------------------------------------------------------------
    # vocabulary
    # ------------------------------------------------------------------
    def node_labels(self) -> list[str]:
        """All node labels in use, sorted."""
        return sorted(
            label for label, ids in self._nodes_by_label.items() if ids
        )

    def edge_labels(self) -> list[str]:
        """All edge labels in use, sorted."""
        return sorted(
            label for label, ids in self._edges_by_label.items() if ids
        )

    def node_count(self, label: str | None = None) -> int:
        if label is None:
            return len(self._nodes)
        return len(self._nodes_by_label.get(label, ()))

    def edge_count(self, label: str | None = None) -> int:
        if label is None:
            return len(self._edges)
        return len(self._edges_by_label.get(label, ()))

    def order(self) -> int:
        """Graph-theoretic order — the number of nodes, O(1)."""
        return len(self._nodes)

    def size(self) -> int:
        """Graph-theoretic size — the number of edges, O(1)."""
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(name={self.name!r}, nodes={len(self._nodes)}, "
            f"edges={len(self._edges)})"
        )
