"""Exceptions raised by the property-graph substrate."""

from __future__ import annotations


class GraphError(Exception):
    """Base class for all property-graph errors."""


class DuplicateElementError(GraphError):
    """An element with the same id already exists in the graph."""

    def __init__(self, kind: str, element_id: str) -> None:
        super().__init__(f"{kind} with id {element_id!r} already exists")
        self.kind = kind
        self.element_id = element_id


class ElementNotFoundError(GraphError):
    """A node or edge id was looked up but does not exist."""

    def __init__(self, kind: str, element_id: str) -> None:
        super().__init__(f"{kind} with id {element_id!r} does not exist")
        self.kind = kind
        self.element_id = element_id


class DanglingEdgeError(GraphError):
    """An edge refers to a node id that is not present in the graph."""

    def __init__(self, edge_id: str, node_id: str) -> None:
        super().__init__(
            f"edge {edge_id!r} refers to missing node {node_id!r}"
        )
        self.edge_id = edge_id
        self.node_id = node_id


class InvalidPropertyError(GraphError):
    """A property value is not one of the supported primitive types."""

    def __init__(self, key: str, value: object) -> None:
        super().__init__(
            f"property {key!r} has unsupported value type {type(value).__name__}"
        )
        self.key = key
        self.value = value
