"""Descriptive statistics over property graphs.

Two consumers share this module:

* :func:`compute_statistics` drives the paper's Table 1 (node/edge and
  label counts plus degree extremes);
* :func:`build_catalog` produces the planner-grade
  :class:`GraphCatalog` — per-label cardinalities, per-(label, property)
  distinct-value counts with most-common-value sketches, and per-edge-label
  fan-out/fan-in averages — that the cost-based query planner in
  :mod:`repro.cypher.planner` uses for cardinality estimation.

The catalog is immutable; :meth:`repro.graph.store.PropertyGraph.catalog`
caches one per mutation epoch so writes invalidate it automatically.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.graph.store import PropertyGraph, property_index_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.columnar import ColumnarGraph

#: most-common-value sketch width per (label, property) pair
MCV_WIDTH = 8


@dataclass(frozen=True)
class GraphStatistics:
    """The Table 1 row for one dataset, plus a few extras."""

    name: str
    nodes: int
    edges: int
    node_labels: int
    edge_labels: int
    node_label_counts: dict[str, int]
    edge_label_counts: dict[str, int]
    max_degree: int
    avg_degree: float

    def as_table1_row(self) -> tuple[str, int, int, int, int]:
        """The exact columns of the paper's Table 1."""
        return (self.name, self.nodes, self.edges, self.node_labels,
                self.edge_labels)


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph`` in one pass."""
    node_label_counts = {
        label: graph.node_count(label) for label in graph.node_labels()
    }
    edge_label_counts = {
        label: graph.edge_count(label) for label in graph.edge_labels()
    }
    degrees = [graph.degree(node.id) for node in graph.nodes()]
    max_degree = max(degrees, default=0)
    avg_degree = sum(degrees) / len(degrees) if degrees else 0.0
    return GraphStatistics(
        name=graph.name,
        nodes=graph.node_count(),
        edges=graph.edge_count(),
        node_labels=len(node_label_counts),
        edge_labels=len(edge_label_counts),
        max_degree=max_degree,
        avg_degree=avg_degree,
        node_label_counts=node_label_counts,
        edge_label_counts=edge_label_counts,
    )


# ----------------------------------------------------------------------
# planner catalog
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PropertySketch:
    """Value distribution of one (node label, property key) pair.

    ``top`` holds the most-common normalized values with their exact
    counts (a classic MCV list); equality selectivity for values outside
    the list falls back to a uniform spread of the remaining rows over
    the remaining distinct values.
    """

    present: int            # nodes of the label that have the property
    distinct: int           # distinct indexable values observed
    top: tuple[tuple[object, int], ...]  # ((index_key, count), ...) desc

    def estimate_eq(self, value: object) -> float:
        """Estimated rows for ``property = value`` within the label."""
        if self.present == 0 or self.distinct == 0:
            return 0.0
        key = property_index_key(value)
        if key is None:
            return 0.0  # null/list equality never hits the index
        for top_key, count in self.top:
            if top_key == key:
                return float(count)
        remaining_rows = self.present - sum(c for _, c in self.top)
        remaining_distinct = self.distinct - len(self.top)
        if remaining_distinct <= 0 or remaining_rows <= 0:
            # every observed value is in the sketch; an unseen value
            # matches nothing, but stay >0 so plans still order sanely
            return 0.5
        return remaining_rows / remaining_distinct


@dataclass(frozen=True)
class EdgeLabelStats:
    """Fan-out/fan-in shape of one edge label."""

    count: int          # total edges with this label
    distinct_src: int   # distinct source nodes
    distinct_dst: int   # distinct destination nodes

    @property
    def avg_out(self) -> float:
        """Average out-fan from a node that has any such edge."""
        return self.count / self.distinct_src if self.distinct_src else 0.0

    @property
    def avg_in(self) -> float:
        """Average in-fan to a node that has any such edge."""
        return self.count / self.distinct_dst if self.distinct_dst else 0.0


@dataclass(frozen=True)
class GraphCatalog:
    """Planner-grade statistics snapshot of one graph epoch."""

    node_count: int
    edge_count: int
    label_counts: dict[str, int] = field(default_factory=dict)
    property_sketches: dict[tuple[str, str], PropertySketch] = field(
        default_factory=dict
    )
    edge_stats: dict[str, EdgeLabelStats] = field(default_factory=dict)

    # -- node-side estimates ------------------------------------------
    def label_count(self, label: str) -> int:
        return self.label_counts.get(label, 0)

    def estimate_label_scan(self, labels: tuple[str, ...]) -> float:
        """Estimated rows for a node pattern with ``labels``.

        The label index serves the first label; additional labels apply
        as independent selectivities against the total node count.
        """
        if not labels:
            return float(self.node_count)
        estimate = float(self.label_count(labels[0]))
        for label in labels[1:]:
            estimate *= self.label_selectivity(label)
        return estimate

    def label_selectivity(self, label: str) -> float:
        if self.node_count == 0:
            return 0.0
        return self.label_count(label) / self.node_count

    def estimate_property_eq(
        self, label: str, key: str, value: object
    ) -> float:
        """Estimated rows for ``(:label {key: value})``."""
        sketch = self.property_sketches.get((label, key))
        if sketch is None:
            return 0.0
        return sketch.estimate_eq(value)

    def property_selectivity(
        self, label: str, key: str, value: object
    ) -> float:
        """Fraction of ``label`` nodes matching ``key = value``."""
        count = self.label_count(label)
        if count == 0:
            return 0.0
        return min(1.0, self.estimate_property_eq(label, key, value) / count)

    # -- edge-side estimates ------------------------------------------
    def avg_fanout(self, types: tuple[str, ...], direction: str) -> float:
        """Average branching factor for expanding one relationship step.

        ``direction`` follows :class:`repro.cypher.ast_nodes.RelPattern`:
        ``"out"``, ``"in"`` or ``"any"`` (which sums both directions).
        Untyped patterns aggregate every edge label.
        """
        stats = (
            [self.edge_stats[t] for t in types if t in self.edge_stats]
            if types
            else list(self.edge_stats.values())
        )
        if not stats:
            return 0.0
        out_fan = sum(s.avg_out for s in stats)
        in_fan = sum(s.avg_in for s in stats)
        if direction == "out":
            return out_fan
        if direction == "in":
            return in_fan
        return out_fan + in_fan

    def edge_label_count(self, types: tuple[str, ...]) -> int:
        if not types:
            return self.edge_count
        return sum(
            self.edge_stats[t].count for t in types if t in self.edge_stats
        )


def build_catalog(graph: PropertyGraph) -> GraphCatalog:
    """Build the planner catalog in one pass over nodes and edges."""
    label_counts = {
        label: graph.node_count(label) for label in graph.node_labels()
    }

    value_counts: dict[tuple[str, str], Counter] = defaultdict(Counter)
    for node in graph.nodes():
        for key, value in node.properties.items():
            index_key = property_index_key(value)
            if index_key is None:
                continue
            for label in node.labels:
                value_counts[(label, key)][index_key] += 1
    sketches = {
        pair: PropertySketch(
            present=sum(counts.values()),
            distinct=len(counts),
            top=tuple(counts.most_common(MCV_WIDTH)),
        )
        for pair, counts in value_counts.items()
    }

    edge_sources: dict[str, set[str]] = defaultdict(set)
    edge_targets: dict[str, set[str]] = defaultdict(set)
    edge_counts: Counter = Counter()
    for edge in graph.edges():
        edge_counts[edge.label] += 1
        edge_sources[edge.label].add(edge.src)
        edge_targets[edge.label].add(edge.dst)
    edge_stats = {
        label: EdgeLabelStats(
            count=count,
            distinct_src=len(edge_sources[label]),
            distinct_dst=len(edge_targets[label]),
        )
        for label, count in edge_counts.items()
    }

    return GraphCatalog(
        node_count=graph.node_count(),
        edge_count=graph.edge_count(),
        label_counts=label_counts,
        property_sketches=sketches,
        edge_stats=edge_stats,
    )


def catalog_from_columnar(snapshot: "ColumnarGraph") -> GraphCatalog:
    """Derive the planner catalog from a columnar snapshot.

    The snapshot already maintains per-(label, key) value counters and
    per-edge-type endpoint counters, so this costs O(distinct values)
    instead of :func:`build_catalog`'s O(nodes + edges) rescan.  The
    counters are accumulated in node-insertion order, so MCV sketches
    tie-break identically to the full rebuild on freshly compiled
    snapshots.
    """
    label_counts = {
        snapshot.labels[code]: size
        for code, size in snapshot.label_sizes.items()
        if size > 0
    }
    sketches = {
        (snapshot.labels[lc], snapshot.pkeys[kc]): PropertySketch(
            present=sum(counts.values()),
            distinct=len(counts),
            top=tuple(counts.most_common(MCV_WIDTH)),
        )
        for (lc, kc), counts in snapshot.pair_counts.items()
        if counts
    }
    edge_stats = {
        snapshot.etypes[tc]: EdgeLabelStats(
            count=count,
            distinct_src=len(snapshot.etype_src.get(tc, ())),
            distinct_dst=len(snapshot.etype_dst.get(tc, ())),
        )
        for tc, count in snapshot.etype_counts.items()
        if count > 0
    }
    return GraphCatalog(
        node_count=snapshot.node_count(),
        edge_count=snapshot.edge_count(),
        label_counts=label_counts,
        property_sketches=sketches,
        edge_stats=edge_stats,
    )
