"""Descriptive statistics over property graphs (drives Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.store import PropertyGraph


@dataclass(frozen=True)
class GraphStatistics:
    """The Table 1 row for one dataset, plus a few extras."""

    name: str
    nodes: int
    edges: int
    node_labels: int
    edge_labels: int
    node_label_counts: dict[str, int]
    edge_label_counts: dict[str, int]
    max_degree: int
    avg_degree: float

    def as_table1_row(self) -> tuple[str, int, int, int, int]:
        """The exact columns of the paper's Table 1."""
        return (self.name, self.nodes, self.edges, self.node_labels,
                self.edge_labels)


def compute_statistics(graph: PropertyGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph`` in one pass."""
    node_label_counts = {
        label: graph.node_count(label) for label in graph.node_labels()
    }
    edge_label_counts = {
        label: graph.edge_count(label) for label in graph.edge_labels()
    }
    degrees = [graph.degree(node.id) for node in graph.nodes()]
    max_degree = max(degrees, default=0)
    avg_degree = sum(degrees) / len(degrees) if degrees else 0.0
    return GraphStatistics(
        name=graph.name,
        nodes=graph.node_count(),
        edges=graph.edge_count(),
        node_labels=len(node_label_counts),
        edge_labels=len(edge_label_counts),
        node_label_counts=node_label_counts,
        edge_label_counts=edge_label_counts,
        max_degree=max_degree,
        avg_degree=avg_degree,
    )
