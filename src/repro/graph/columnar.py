"""Columnar CSR snapshots of a property graph.

:class:`ColumnarGraph` is an immutable, int-id compressed-sparse-row view
of one :class:`~repro.graph.store.PropertyGraph` epoch, built for the
matcher's hot path: label/type dictionaries are interned to small ints,
adjacency lives in contiguous ``array`` slices (``'q'`` offsets, ``'I'``
edge ids — no numpy dependency), node properties are stored in columns,
and every (label, key) pair keeps a sorted value index for seed lookups.
String ids appear only at the boundary (``node_index`` / ``edge_index``
plus the original :class:`~repro.graph.model.Node` / ``Edge`` objects per
dense id), so public APIs keep returning the same objects as the store.

Adjacency is kept twice per direction: ``eids`` in store insertion order
(the exact order the legacy matcher observes) and ``typed_eids`` grouped
by edge-type code with per-node segment offsets, so a single-type
expansion is one contiguous slice with zero per-edge filtering while
untyped expansion preserves legacy ordering bit-for-bit.

Snapshots are copy-on-write: :meth:`ColumnarGraph.apply_deltas` clones
the container spine (C-level copies) and layers small mutations on top —
appended nodes/edges, per-node ``extras`` adjacency, dead-id tombstone
sets — so a handful of deltas never forces an O(graph) recompile.  The
store falls back to :func:`compile_graph` past a budget or when the
change log lost history.

:func:`to_payload` / :func:`from_payload` serialise a fully compiled
snapshot (JSON-safe, sha256 checksummed) so dataset snapshots can ship
the CSR to gateway workers, which then skip recompilation.
"""

from __future__ import annotations

import base64
import hashlib
import json
import sys
from array import array
from bisect import bisect_left, bisect_right
from collections import Counter
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.graph.changelog import DeltaKind, compact_deltas
from repro.graph.errors import GraphError
from repro.graph.model import Edge, Node
from repro.graph.store import property_index_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.changelog import GraphDelta
    from repro.graph.store import PropertyGraph

__all__ = [
    "ARTIFACT_VERSION",
    "ColumnarArtifactError",
    "ColumnarGraph",
    "compile_graph",
    "from_payload",
    "to_payload",
]

ARTIFACT_VERSION = 1

#: sentinel for "single relationship type unknown to this snapshot"
NO_TYPE = -1


class ColumnarArtifactError(GraphError):
    """A serialized CSR artifact is corrupt or does not fit the graph."""


class _Adjacency:
    """One direction's CSR: insertion-order row plus type segments.

    ``eids[offsets[n]:offsets[n+1]]`` is node ``n``'s full row in store
    insertion order; ``typed_eids`` holds the same row grouped by type
    code, delimited by the ``seg_*`` arrays.  ``extras`` overlays edges
    added after compilation as ``nid -> [(type_code, eid), ...]``.
    """

    __slots__ = (
        "offsets", "eids", "typed_eids",
        "seg_bounds", "seg_types", "seg_starts", "extras",
    )

    def __init__(
        self,
        offsets: array,
        eids: array,
        typed_eids: array,
        seg_bounds: array,
        seg_types: array,
        seg_starts: array,
        extras: dict[int, list[tuple[int, int]]] | None = None,
    ) -> None:
        self.offsets = offsets
        self.eids = eids
        self.typed_eids = typed_eids
        self.seg_bounds = seg_bounds
        self.seg_types = seg_types
        self.seg_starts = seg_starts
        self.extras = {} if extras is None else extras

    def clone(self) -> "_Adjacency":
        # base arrays are immutable once compiled; only extras are copied
        return _Adjacency(
            self.offsets, self.eids, self.typed_eids,
            self.seg_bounds, self.seg_types, self.seg_starts,
            {nid: list(entries) for nid, entries in self.extras.items()},
        )

    def typed_range(self, nid: int, type_code: int) -> tuple[int, int]:
        """[start, end) into ``typed_eids`` of ``nid``'s ``type_code`` row."""
        lo = self.seg_bounds[nid]
        hi = self.seg_bounds[nid + 1]
        for i in range(lo, hi):
            if self.seg_types[i] == type_code:
                start = self.seg_starts[i]
                end = (
                    self.seg_starts[i + 1] if i + 1 < hi
                    else self.offsets[nid + 1]
                )
                return start, end
        return 0, 0


def _build_adjacency(rows: list[list[tuple[int, int]]]) -> _Adjacency:
    offsets = array("q", [0])
    eids = array("I")
    typed_eids = array("I")
    seg_bounds = array("q", [0])
    seg_types = array("I")
    seg_starts = array("q")
    for row in rows:
        for _tc, eid in row:
            eids.append(eid)
        # stable sort: within a type, store insertion order is preserved
        row.sort(key=lambda entry: entry[0])
        previous = None
        for tc, eid in row:
            if tc != previous:
                seg_types.append(tc)
                seg_starts.append(len(typed_eids))
                previous = tc
            typed_eids.append(eid)
        offsets.append(len(eids))
        seg_bounds.append(len(seg_types))
    return _Adjacency(
        offsets, eids, typed_eids, seg_bounds, seg_types, seg_starts
    )


class ColumnarGraph:
    """Immutable int-id CSR snapshot of one graph epoch (see module doc)."""

    __slots__ = (
        # interned dictionaries
        "labels", "label_code", "etypes", "etype_code", "pkeys", "pkey_code",
        # nodes
        "node_ids", "node_index", "node_objs", "node_label_codes",
        "label_members", "label_sizes",
        # columnar properties + value indexes
        "node_cols", "sorted_index", "pair_counts",
        # edges
        "edge_ids", "edge_index", "edge_objs",
        "edge_types", "edge_src", "edge_dst", "edge_cols",
        "etype_counts", "etype_src", "etype_dst",
        # adjacency
        "out_adj", "in_adj",
        # overlay
        "dead_nodes", "dead_edges", "base_node_count", "overlay_ops",
        # provenance
        "graph_token", "epoch", "origin", "revision",
    )

    def __init__(self) -> None:
        self.labels: list[str] = []
        self.label_code: dict[str, int] = {}
        self.etypes: list[str] = []
        self.etype_code: dict[str, int] = {}
        self.pkeys: list[str] = []
        self.pkey_code: dict[str, int] = {}
        self.node_ids: list[str] = []
        self.node_index: dict[str, int] = {}
        self.node_objs: list[Node] = []
        self.node_label_codes: list[tuple[int, ...]] = []
        self.label_members: dict[int, list[int]] = {}
        self.label_sizes: dict[int, int] = {}
        self.node_cols: dict[int, list] = {}
        self.sorted_index: dict[tuple[int, int], tuple[list, list[int]]] = {}
        self.pair_counts: dict[tuple[int, int], Counter] = {}
        self.edge_ids: list[str] = []
        self.edge_index: dict[str, int] = {}
        self.edge_objs: list[Edge] = []
        self.edge_types = array("I")
        self.edge_src = array("I")
        self.edge_dst = array("I")
        self.edge_cols: dict[int, list] = {}
        self.etype_counts: dict[int, int] = {}
        self.etype_src: dict[int, Counter] = {}
        self.etype_dst: dict[int, Counter] = {}
        self.out_adj = _build_adjacency([])
        self.in_adj = _build_adjacency([])
        self.dead_nodes: set[int] = set()
        self.dead_edges: set[int] = set()
        self.base_node_count = 0
        self.overlay_ops = 0
        self.graph_token = 0
        self.epoch = 0
        self.origin = "full"
        self.revision = 0

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _intern(self, table: list[str], codes: dict[str, int], name: str) -> int:
        code = codes.get(name)
        if code is None:
            code = len(table)
            table.append(name)
            codes[name] = code
        return code

    def _intern_label(self, name: str) -> int:
        return self._intern(self.labels, self.label_code, name)

    def _intern_etype(self, name: str) -> int:
        return self._intern(self.etypes, self.etype_code, name)

    def _intern_pkey(self, name: str) -> int:
        return self._intern(self.pkeys, self.pkey_code, name)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Live node count (tombstoned nodes excluded)."""
        return len(self.node_index)

    def edge_count(self) -> int:
        return len(self.edge_index)

    def node_int(self, node_id: str) -> int | None:
        return self.node_index.get(node_id)

    def node_prop(self, nid: int, key: str) -> object:
        code = self.pkey_code.get(key)
        if code is None:
            return None
        col = self.node_cols.get(code)
        if col is None or nid >= len(col):
            return None
        return col[nid]

    def edge_prop(self, eid: int, key: str) -> object:
        code = self.pkey_code.get(key)
        if code is None:
            return None
        col = self.edge_cols.get(code)
        if col is None or eid >= len(col):
            return None
        return col[eid]

    def has_labels(self, nid: int, label_codes: Sequence[int]) -> bool:
        own = self.node_label_codes[nid]
        for code in label_codes:
            if code not in own:
                return False
        return True

    def label_candidates(self, label: str) -> Iterator[int]:
        """Dense ids of live nodes carrying ``label``, insertion order."""
        code = self.label_code.get(label)
        if code is None:
            return
        dead = self.dead_nodes
        for nid in self.label_members.get(code, ()):
            if nid not in dead:
                yield nid

    def all_candidates(self) -> Iterator[int]:
        dead = self.dead_nodes
        for nid in range(len(self.node_ids)):
            if nid not in dead:
                yield nid

    def index_candidates(self, label: str, key: str, index_key: object) -> Iterator[int]:
        """Dense ids whose normalized ``key`` value equals ``index_key``."""
        lc = self.label_code.get(label)
        kc = self.pkey_code.get(key)
        if lc is None or kc is None:
            return
        entry = self.sorted_index.get((lc, kc))
        if entry is None:
            return
        keys, nids = entry
        lo = bisect_left(keys, index_key)
        hi = bisect_right(keys, index_key)
        for i in range(lo, hi):
            yield nids[i]

    def single_type_code(self, type_name: str) -> int:
        """Type code for a one-type expansion (NO_TYPE when unknown)."""
        code = self.etype_code.get(type_name)
        return NO_TYPE if code is None else code

    def adjacency(
        self, nid: int, type_code: int | None, out: bool
    ) -> Iterator[tuple[int, int]]:
        """(edge, neighbour) dense-id pairs leaving/entering ``nid``.

        ``type_code`` None iterates the full row in store insertion
        order (the caller filters, mirroring the legacy matcher);
        :data:`NO_TYPE` yields nothing; any other code walks exactly the
        contiguous typed slice.
        """
        if type_code == NO_TYPE:
            return
        adj = self.out_adj if out else self.in_adj
        other = self.edge_dst if out else self.edge_src
        dead = self.dead_edges
        if nid < self.base_node_count:
            if type_code is None:
                eids = adj.eids
                start = adj.offsets[nid]
                end = adj.offsets[nid + 1]
            else:
                eids = adj.typed_eids
                start, end = adj.typed_range(nid, type_code)
            if dead:
                for i in range(start, end):
                    eid = eids[i]
                    if eid not in dead:
                        yield eid, other[eid]
            else:
                for i in range(start, end):
                    eid = eids[i]
                    yield eid, other[eid]
        extras = adj.extras.get(nid)
        if extras:
            for tc, eid in extras:
                if type_code is not None and tc != type_code:
                    continue
                if eid not in dead:
                    yield eid, other[eid]

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def _clone(self) -> "ColumnarGraph":
        snap = ColumnarGraph.__new__(ColumnarGraph)
        snap.labels = list(self.labels)
        snap.label_code = dict(self.label_code)
        snap.etypes = list(self.etypes)
        snap.etype_code = dict(self.etype_code)
        snap.pkeys = list(self.pkeys)
        snap.pkey_code = dict(self.pkey_code)
        snap.node_ids = list(self.node_ids)
        snap.node_index = dict(self.node_index)
        snap.node_objs = list(self.node_objs)
        snap.node_label_codes = list(self.node_label_codes)
        snap.label_members = {
            code: list(members) for code, members in self.label_members.items()
        }
        snap.label_sizes = dict(self.label_sizes)
        snap.node_cols = {code: list(col) for code, col in self.node_cols.items()}
        snap.sorted_index = dict(self.sorted_index)
        snap.pair_counts = {
            pair: Counter(counts) for pair, counts in self.pair_counts.items()
        }
        snap.edge_ids = list(self.edge_ids)
        snap.edge_index = dict(self.edge_index)
        snap.edge_objs = list(self.edge_objs)
        snap.edge_types = array("I", self.edge_types)
        snap.edge_src = array("I", self.edge_src)
        snap.edge_dst = array("I", self.edge_dst)
        snap.edge_cols = {code: list(col) for code, col in self.edge_cols.items()}
        snap.etype_counts = dict(self.etype_counts)
        snap.etype_src = {
            code: Counter(counts) for code, counts in self.etype_src.items()
        }
        snap.etype_dst = {
            code: Counter(counts) for code, counts in self.etype_dst.items()
        }
        snap.out_adj = self.out_adj.clone()
        snap.in_adj = self.in_adj.clone()
        snap.dead_nodes = set(self.dead_nodes)
        snap.dead_edges = set(self.dead_edges)
        snap.base_node_count = self.base_node_count
        snap.overlay_ops = self.overlay_ops
        snap.graph_token = self.graph_token
        snap.epoch = self.epoch
        snap.origin = self.origin
        snap.revision = self.revision
        return snap

    def apply_deltas(
        self, graph: "PropertyGraph", deltas: Sequence["GraphDelta"]
    ) -> "ColumnarGraph":
        """A new snapshot with ``deltas`` layered on top of this one.

        ``graph`` must be the post-delta state (subjects of surviving add
        deltas are resolved against it); raises on any inconsistency, in
        which case the caller recompiles from scratch.
        """
        snap = self._clone()
        dirty_pairs: set[tuple[int, int]] = set()
        compacted = compact_deltas(list(deltas))
        for delta in compacted:
            kind = delta.kind
            if kind is DeltaKind.NODE_ADDED:
                snap._overlay_node_added(graph, delta, dirty_pairs)
            elif kind is DeltaKind.NODE_REMOVED:
                snap._overlay_node_removed(delta, dirty_pairs)
            elif kind is DeltaKind.NODE_PROPS:
                snap._overlay_node_props(graph, delta, dirty_pairs)
            elif kind is DeltaKind.EDGE_ADDED:
                snap._overlay_edge_added(graph, delta)
            elif kind is DeltaKind.EDGE_REMOVED:
                snap._overlay_edge_removed(delta)
            else:  # EDGE_PROPS
                snap._overlay_edge_props(graph, delta)
        snap._rebuild_sorted_indexes(dirty_pairs)
        snap.overlay_ops += len(compacted)
        snap.origin = "incremental"
        snap.revision += 1
        snap.graph_token, snap.epoch = graph.fingerprint()
        return snap

    def _col_set(self, cols: dict[int, list], code: int, row: int, value: object) -> None:
        col = cols.get(code)
        if col is None:
            col = cols[code] = []
        if len(col) <= row:
            col.extend([None] * (row + 1 - len(col)))
        col[row] = value

    def _overlay_node_added(
        self, graph: "PropertyGraph", delta: "GraphDelta",
        dirty_pairs: set[tuple[int, int]],
    ) -> None:
        node = graph.node(delta.subject_id)
        nid = len(self.node_ids)
        self.node_ids.append(node.id)
        self.node_objs.append(node)
        self.node_index[node.id] = nid
        lcodes = tuple(self._intern_label(l) for l in sorted(node.labels))
        self.node_label_codes.append(lcodes)
        for lc in lcodes:
            self.label_members.setdefault(lc, []).append(nid)
            self.label_sizes[lc] = self.label_sizes.get(lc, 0) + 1
        for key, value in node.properties.items():
            kc = self._intern_pkey(key)
            self._col_set(self.node_cols, kc, nid, value)
            index_key = property_index_key(value)
            if index_key is None:
                continue
            for lc in lcodes:
                pair = (lc, kc)
                self.pair_counts.setdefault(pair, Counter())[index_key] += 1
                dirty_pairs.add(pair)

    def _overlay_node_removed(
        self, delta: "GraphDelta", dirty_pairs: set[tuple[int, int]]
    ) -> None:
        nid = self.node_index.pop(delta.subject_id)
        self.dead_nodes.add(nid)
        lcodes = self.node_label_codes[nid]
        for lc in lcodes:
            self.label_sizes[lc] = self.label_sizes.get(lc, 0) - 1
        for kc, col in self.node_cols.items():
            value = col[nid] if nid < len(col) else None
            index_key = property_index_key(value)
            if index_key is None:
                continue
            for lc in lcodes:
                pair = (lc, kc)
                self._uncount(pair, index_key)
                dirty_pairs.add(pair)

    def _overlay_node_props(
        self, graph: "PropertyGraph", delta: "GraphDelta",
        dirty_pairs: set[tuple[int, int]],
    ) -> None:
        nid = self.node_index[delta.subject_id]
        node = graph.node(delta.subject_id)
        self.node_objs[nid] = node
        lcodes = self.node_label_codes[nid]
        for key in delta.keys:
            kc = self._intern_pkey(key)
            col = self.node_cols.get(kc)
            old = col[nid] if col is not None and nid < len(col) else None
            new = node.properties.get(key)
            self._col_set(self.node_cols, kc, nid, new)
            old_key = property_index_key(old)
            new_key = property_index_key(new)
            if old_key == new_key:
                continue
            for lc in lcodes:
                pair = (lc, kc)
                if old_key is not None:
                    self._uncount(pair, old_key)
                if new_key is not None:
                    self.pair_counts.setdefault(pair, Counter())[new_key] += 1
                dirty_pairs.add(pair)

    def _uncount(self, pair: tuple[int, int], index_key: object) -> None:
        counts = self.pair_counts.get(pair)
        if counts is None:
            return
        counts[index_key] -= 1
        if counts[index_key] <= 0:
            del counts[index_key]

    def _overlay_edge_added(
        self, graph: "PropertyGraph", delta: "GraphDelta"
    ) -> None:
        edge = graph.edge(delta.subject_id)
        eid = len(self.edge_ids)
        src = self.node_index[edge.src]
        dst = self.node_index[edge.dst]
        tc = self._intern_etype(edge.label)
        self.edge_ids.append(edge.id)
        self.edge_objs.append(edge)
        self.edge_index[edge.id] = eid
        self.edge_types.append(tc)
        self.edge_src.append(src)
        self.edge_dst.append(dst)
        for key, value in edge.properties.items():
            self._col_set(self.edge_cols, self._intern_pkey(key), eid, value)
        self.out_adj.extras.setdefault(src, []).append((tc, eid))
        self.in_adj.extras.setdefault(dst, []).append((tc, eid))
        self.etype_counts[tc] = self.etype_counts.get(tc, 0) + 1
        self.etype_src.setdefault(tc, Counter())[edge.src] += 1
        self.etype_dst.setdefault(tc, Counter())[edge.dst] += 1

    def _overlay_edge_removed(self, delta: "GraphDelta") -> None:
        eid = self.edge_index.pop(delta.subject_id)
        edge = self.edge_objs[eid]
        tc = self.edge_types[eid]
        self.dead_edges.add(eid)
        for adj, nid in (
            (self.out_adj, self.edge_src[eid]),
            (self.in_adj, self.edge_dst[eid]),
        ):
            extras = adj.extras.get(nid)
            if extras:
                adj.extras[nid] = [e for e in extras if e[1] != eid]
        self.etype_counts[tc] = self.etype_counts.get(tc, 0) - 1
        for counter, endpoint in (
            (self.etype_src.get(tc), edge.src),
            (self.etype_dst.get(tc), edge.dst),
        ):
            if counter is not None:
                counter[endpoint] -= 1
                if counter[endpoint] <= 0:
                    del counter[endpoint]

    def _overlay_edge_props(
        self, graph: "PropertyGraph", delta: "GraphDelta"
    ) -> None:
        eid = self.edge_index[delta.subject_id]
        edge = graph.edge(delta.subject_id)
        self.edge_objs[eid] = edge
        for key in delta.keys:
            self._col_set(
                self.edge_cols, self._intern_pkey(key), eid,
                edge.properties.get(key),
            )

    def _rebuild_sorted_indexes(
        self, dirty_pairs: set[tuple[int, int]]
    ) -> None:
        for pair in dirty_pairs:
            counts = self.pair_counts.get(pair)
            if not counts:
                self.pair_counts.pop(pair, None)
                self.sorted_index.pop(pair, None)
                continue
            lc, kc = pair
            col = self.node_cols.get(kc, ())
            width = len(col)
            dead = self.dead_nodes
            entries = []
            for nid in self.label_members.get(lc, ()):
                if nid in dead:
                    continue
                value = col[nid] if nid < width else None
                index_key = property_index_key(value)
                if index_key is not None:
                    entries.append((index_key, nid))
            entries.sort()
            self.sorted_index[pair] = (
                [entry[0] for entry in entries],
                [entry[1] for entry in entries],
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarGraph(nodes={self.node_count()}, "
            f"edges={self.edge_count()}, origin={self.origin!r}, "
            f"overlay_ops={self.overlay_ops})"
        )


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def compile_graph(graph: "PropertyGraph") -> ColumnarGraph:
    """Compile a full columnar snapshot of ``graph``'s current contents."""
    snap = ColumnarGraph()
    pair_entries: dict[tuple[int, int], list[tuple[object, int]]] = {}

    for node in graph.nodes():
        nid = len(snap.node_ids)
        snap.node_ids.append(node.id)
        snap.node_objs.append(node)
        snap.node_index[node.id] = nid
        lcodes = tuple(snap._intern_label(l) for l in sorted(node.labels))
        snap.node_label_codes.append(lcodes)
        for lc in lcodes:
            snap.label_members.setdefault(lc, []).append(nid)
            snap.label_sizes[lc] = snap.label_sizes.get(lc, 0) + 1
        for key, value in node.properties.items():
            kc = snap._intern_pkey(key)
            snap._col_set(snap.node_cols, kc, nid, value)
            index_key = property_index_key(value)
            if index_key is None:
                continue
            for lc in lcodes:
                pair = (lc, kc)
                snap.pair_counts.setdefault(pair, Counter())[index_key] += 1
                pair_entries.setdefault(pair, []).append((index_key, nid))

    for pair, entries in pair_entries.items():
        entries.sort()
        snap.sorted_index[pair] = (
            [entry[0] for entry in entries],
            [entry[1] for entry in entries],
        )

    n = len(snap.node_ids)
    out_rows: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    in_rows: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for edge in graph.edges():
        eid = len(snap.edge_ids)
        tc = snap._intern_etype(edge.label)
        src = snap.node_index[edge.src]
        dst = snap.node_index[edge.dst]
        snap.edge_ids.append(edge.id)
        snap.edge_objs.append(edge)
        snap.edge_index[edge.id] = eid
        snap.edge_types.append(tc)
        snap.edge_src.append(src)
        snap.edge_dst.append(dst)
        out_rows[src].append((tc, eid))
        in_rows[dst].append((tc, eid))
        snap.etype_counts[tc] = snap.etype_counts.get(tc, 0) + 1
        snap.etype_src.setdefault(tc, Counter())[edge.src] += 1
        snap.etype_dst.setdefault(tc, Counter())[edge.dst] += 1
        for key, value in edge.properties.items():
            snap._col_set(snap.edge_cols, snap._intern_pkey(key), eid, value)

    snap.out_adj = _build_adjacency(out_rows)
    snap.in_adj = _build_adjacency(in_rows)
    snap.base_node_count = n
    snap.graph_token, snap.epoch = graph.fingerprint()
    return snap


# ----------------------------------------------------------------------
# serialization (dataset snapshot artifacts)
# ----------------------------------------------------------------------
def _encode_array(arr: array) -> dict[str, str]:
    return {
        "tc": arr.typecode,
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def _decode_array(payload: object, typecode: str) -> array:
    if not isinstance(payload, dict) or payload.get("tc") != typecode:
        raise ColumnarArtifactError("malformed CSR array payload")
    arr = array(typecode)
    try:
        arr.frombytes(base64.b64decode(payload["data"]))
    except (KeyError, TypeError, ValueError) as error:
        raise ColumnarArtifactError(
            f"undecodable CSR array payload: {error}"
        ) from error
    return arr


def _encode_adjacency(adj: _Adjacency) -> dict[str, object]:
    return {
        "offsets": _encode_array(adj.offsets),
        "eids": _encode_array(adj.eids),
        "typed_eids": _encode_array(adj.typed_eids),
        "seg_bounds": _encode_array(adj.seg_bounds),
        "seg_types": _encode_array(adj.seg_types),
        "seg_starts": _encode_array(adj.seg_starts),
    }


def _decode_adjacency(payload: object) -> _Adjacency:
    if not isinstance(payload, dict):
        raise ColumnarArtifactError("malformed CSR adjacency payload")
    return _Adjacency(
        _decode_array(payload.get("offsets"), "q"),
        _decode_array(payload.get("eids"), "I"),
        _decode_array(payload.get("typed_eids"), "I"),
        _decode_array(payload.get("seg_bounds"), "q"),
        _decode_array(payload.get("seg_types"), "I"),
        _decode_array(payload.get("seg_starts"), "q"),
    )


def _checksum(body: dict[str, object]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def to_payload(snapshot: ColumnarGraph) -> dict[str, object]:
    """Serialize a fully compiled snapshot as a JSON-safe dict."""
    if snapshot.overlay_ops or snapshot.dead_nodes or snapshot.dead_edges:
        raise ColumnarArtifactError(
            "only fully compiled snapshots can be serialized"
        )
    body: dict[str, object] = {
        "version": ARTIFACT_VERSION,
        "byteorder": sys.byteorder,
        "labels": list(snapshot.labels),
        "etypes": list(snapshot.etypes),
        "pkeys": list(snapshot.pkeys),
        "node_ids": list(snapshot.node_ids),
        "node_label_codes": [list(t) for t in snapshot.node_label_codes],
        "node_cols": {
            str(code): list(col) for code, col in snapshot.node_cols.items()
        },
        "edge_ids": list(snapshot.edge_ids),
        "edge_types": _encode_array(snapshot.edge_types),
        "edge_src": _encode_array(snapshot.edge_src),
        "edge_dst": _encode_array(snapshot.edge_dst),
        "edge_cols": {
            str(code): list(col) for code, col in snapshot.edge_cols.items()
        },
        "out": _encode_adjacency(snapshot.out_adj),
        "in": _encode_adjacency(snapshot.in_adj),
        "sorted_index": [
            [lc, kc, [[list(key), nid] for key, nid in zip(keys, nids)]]
            for (lc, kc), (keys, nids) in snapshot.sorted_index.items()
        ],
        "pair_counts": [
            [lc, kc, [[list(key), count] for key, count in counts.items()]]
            for (lc, kc), counts in snapshot.pair_counts.items()
        ],
        "etype_counts": sorted(snapshot.etype_counts.items()),
        "etype_src": [
            [tc, sorted(counts.items())]
            for tc, counts in snapshot.etype_src.items()
        ],
        "etype_dst": [
            [tc, sorted(counts.items())]
            for tc, counts in snapshot.etype_dst.items()
        ],
    }
    body["checksum"] = _checksum(
        {key: value for key, value in body.items() if key != "checksum"}
    )
    return body


def from_payload(
    payload: object, graph: "PropertyGraph"
) -> ColumnarGraph:
    """Rebuild a snapshot from :func:`to_payload` output, validated
    against ``graph`` (which must hold the same nodes and edges)."""
    if not isinstance(payload, dict):
        raise ColumnarArtifactError("CSR artifact is not a mapping")
    checksum = payload.get("checksum")
    body = {key: value for key, value in payload.items() if key != "checksum"}
    if checksum != _checksum(body):
        raise ColumnarArtifactError("CSR artifact checksum mismatch")
    if body.get("version") != ARTIFACT_VERSION:
        raise ColumnarArtifactError(
            f"CSR artifact version {body.get('version')!r} unsupported"
        )
    if body.get("byteorder") != sys.byteorder:
        raise ColumnarArtifactError("CSR artifact byte order mismatch")

    snap = ColumnarGraph()
    try:
        snap.labels = list(body["labels"])
        snap.label_code = {name: i for i, name in enumerate(snap.labels)}
        snap.etypes = list(body["etypes"])
        snap.etype_code = {name: i for i, name in enumerate(snap.etypes)}
        snap.pkeys = list(body["pkeys"])
        snap.pkey_code = {name: i for i, name in enumerate(snap.pkeys)}
        snap.node_ids = list(body["node_ids"])
        snap.node_label_codes = [
            tuple(codes) for codes in body["node_label_codes"]
        ]
        snap.node_cols = {
            int(code): list(col) for code, col in body["node_cols"].items()
        }
        snap.edge_ids = list(body["edge_ids"])
        snap.edge_cols = {
            int(code): list(col) for code, col in body["edge_cols"].items()
        }
        snap.sorted_index = {
            (lc, kc): (
                [tuple(key) for key, _nid in entries],
                [nid for _key, nid in entries],
            )
            for lc, kc, entries in body["sorted_index"]
        }
        snap.pair_counts = {
            (lc, kc): Counter({tuple(key): count for key, count in counts})
            for lc, kc, counts in body["pair_counts"]
        }
        snap.etype_counts = {tc: count for tc, count in body["etype_counts"]}
        snap.etype_src = {
            tc: Counter(dict(counts)) for tc, counts in body["etype_src"]
        }
        snap.etype_dst = {
            tc: Counter(dict(counts)) for tc, counts in body["etype_dst"]
        }
    except (KeyError, TypeError, ValueError) as error:
        raise ColumnarArtifactError(
            f"malformed CSR artifact: {error}"
        ) from error
    snap.edge_types = _decode_array(body.get("edge_types"), "I")
    snap.edge_src = _decode_array(body.get("edge_src"), "I")
    snap.edge_dst = _decode_array(body.get("edge_dst"), "I")
    snap.out_adj = _decode_adjacency(body.get("out"))
    snap.in_adj = _decode_adjacency(body.get("in"))

    n = len(snap.node_ids)
    e = len(snap.edge_ids)
    if graph.node_count() != n or graph.edge_count() != e:
        raise ColumnarArtifactError("CSR artifact does not match the graph")
    if (
        len(snap.node_label_codes) != n
        or len(snap.edge_types) != e
        or len(snap.edge_src) != e
        or len(snap.edge_dst) != e
        or len(snap.out_adj.offsets) != n + 1
        or len(snap.in_adj.offsets) != n + 1
        or len(snap.out_adj.eids) != e
        or len(snap.in_adj.eids) != e
    ):
        raise ColumnarArtifactError("CSR artifact has inconsistent shapes")
    try:
        snap.node_objs = [graph.node(node_id) for node_id in snap.node_ids]
        snap.edge_objs = [graph.edge(edge_id) for edge_id in snap.edge_ids]
    except GraphError as error:
        raise ColumnarArtifactError(
            f"CSR artifact references unknown elements: {error}"
        ) from error
    snap.node_index = {node_id: i for i, node_id in enumerate(snap.node_ids)}
    snap.edge_index = {edge_id: i for i, edge_id in enumerate(snap.edge_ids)}
    for nid, lcodes in enumerate(snap.node_label_codes):
        for lc in lcodes:
            snap.label_members.setdefault(lc, []).append(nid)
            snap.label_sizes[lc] = snap.label_sizes.get(lc, 0) + 1
    snap.base_node_count = n
    snap.origin = "artifact"
    return snap
