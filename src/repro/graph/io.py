"""Serialization for property graphs.

Two formats:

* **JSON** — a faithful round-trip format (nodes, edges, labels, properties),
  the reproduction's equivalent of a Neo4j dump.
* **edge list / node list dicts** — convenient programmatic bulk loading used
  by the dataset generators.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.graph.store import PropertyGraph

FORMAT_VERSION = 1


def graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Render a graph as a JSON-serialisable dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [
            {
                "id": node.id,
                "labels": node.sorted_labels(),
                "properties": node.properties,
            }
            for node in graph.nodes()
        ],
        "edges": [
            {
                "id": edge.id,
                "label": edge.label,
                "src": edge.src,
                "dst": edge.dst,
                "properties": edge.properties,
            }
            for edge in graph.edges()
        ],
    }


def graph_from_dict(payload: Mapping[str, Any]) -> PropertyGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version: {version}")
    graph = PropertyGraph(name=payload.get("name", "graph"))
    for node in payload.get("nodes", ()):
        graph.add_node(node["id"], node.get("labels", ()), node.get("properties"))
    for edge in payload.get("edges", ()):
        graph.add_edge(
            edge["id"], edge["label"], edge["src"], edge["dst"],
            edge.get("properties"),
        )
    return graph


def save_graph(graph: PropertyGraph, path: str | Path) -> None:
    """Write a graph to a JSON file."""
    payload = graph_to_dict(graph)
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=False))


def load_graph(path: str | Path) -> PropertyGraph:
    """Read a graph from a JSON file produced by :func:`save_graph`."""
    with open(path) as handle:
        payload = json.load(handle)
    return graph_from_dict(payload)


def build_graph(
    name: str,
    nodes: Iterable[Mapping[str, Any]],
    edges: Iterable[Mapping[str, Any]],
) -> PropertyGraph:
    """Bulk-build a graph from node/edge record dicts.

    Node records need ``id`` and ``labels``; edge records need ``id``,
    ``label``, ``src`` and ``dst``.  Both accept an optional ``properties``
    mapping.
    """
    graph = PropertyGraph(name=name)
    for record in nodes:
        graph.add_node(
            record["id"], record["labels"], record.get("properties")
        )
    for record in edges:
        graph.add_edge(
            record["id"], record["label"], record["src"], record["dst"],
            record.get("properties"),
        )
    return graph
