"""Relational schema and instance model for the §5 bridge.

"Although our approach is primarily designed for property graphs, it is
also applicable to flat relational data.  Relational data can be seen as
a graph structure, especially when organized following key-foreign key
relationships."

This module defines a minimal relational model — tables with typed
columns, primary keys and foreign keys, plus row storage — that
:mod:`repro.relational.convert` turns into a property graph the mining
pipelines consume unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass(frozen=True)
class ForeignKey:
    """One FK: ``column`` references ``target_table`` (its PK)."""

    column: str
    target_table: str
    relationship: str | None = None   # edge label override

    def edge_label(self) -> str:
        if self.relationship:
            return self.relationship
        return f"REFS_{self.target_table.upper()}"


@dataclass
class Table:
    """A named table with a primary key and optional foreign keys."""

    name: str
    columns: tuple[str, ...]
    primary_key: str
    foreign_keys: tuple[ForeignKey, ...] = ()
    rows: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.primary_key not in self.columns:
            raise ValueError(
                f"primary key {self.primary_key!r} is not a column of "
                f"{self.name!r}"
            )
        for fk in self.foreign_keys:
            if fk.column not in self.columns:
                raise ValueError(
                    f"foreign key column {fk.column!r} is not a column "
                    f"of {self.name!r}"
                )

    def insert(self, row: Mapping[str, object]) -> None:
        """Add a row; unknown columns are rejected, missing ones null."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise ValueError(
                f"unknown column(s) {sorted(unknown)} for table "
                f"{self.name!r}"
            )
        self.rows.append({
            column: row.get(column) for column in self.columns
        })

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.insert(row)


@dataclass
class RelationalDatabase:
    """A set of tables with referential structure."""

    name: str
    tables: dict[str, Table] = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise ValueError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def validate_references(self) -> list[str]:
        """Dangling FK values, as human-readable problem strings."""
        problems: list[str] = []
        for table in self.tables.values():
            for fk in table.foreign_keys:
                target = self.tables.get(fk.target_table)
                if target is None:
                    problems.append(
                        f"{table.name}.{fk.column} references missing "
                        f"table {fk.target_table!r}"
                    )
                    continue
                known = {
                    row[target.primary_key] for row in target.rows
                }
                for row in table.rows:
                    value = row.get(fk.column)
                    if value is not None and value not in known:
                        problems.append(
                            f"{table.name}.{fk.column}={value!r} has no "
                            f"match in {fk.target_table}"
                        )
        return problems
