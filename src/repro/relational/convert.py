"""Relational → property-graph conversion, and rule → SQL rendering.

Rows become nodes labelled by their table name; foreign keys become
edges; after that, the mining pipelines run unchanged.  Mined rules can
be rendered back as SQL constraint DDL with :func:`rule_to_sql`, closing
the loop the paper sketches in §5.
"""

from __future__ import annotations

from repro.graph.store import PropertyGraph
from repro.relational.model import RelationalDatabase
from repro.rules.model import ConsistencyRule, RuleKind


def database_to_graph(database: RelationalDatabase) -> PropertyGraph:
    """Convert a relational database into a property graph.

    Node id = ``<table>:<pk value>``; null-valued columns are simply
    absent (graph properties have no NULL), which is exactly how
    missing-property rules expect the data.  FK columns are kept as node
    properties *and* materialised as edges, mirroring how graph imports
    of relational data usually behave.
    """
    graph = PropertyGraph(name=database.name)
    # nodes first
    for table in database.tables.values():
        for row in table.rows:
            key = row[table.primary_key]
            if key is None:
                raise ValueError(
                    f"row in {table.name!r} has a NULL primary key"
                )
            properties = {
                column: value for column, value in row.items()
                if value is not None
            }
            graph.add_node(f"{table.name}:{key}", table.name, properties)
    # then FK edges
    edge_counter = 0
    for table in database.tables.values():
        for fk in table.foreign_keys:
            for row in table.rows:
                value = row.get(fk.column)
                if value is None:
                    continue
                src = f"{table.name}:{row[table.primary_key]}"
                dst = f"{fk.target_table}:{value}"
                if not graph.has_node(dst):
                    continue  # dangling reference: no edge, rule-visible
                edge_counter += 1
                graph.add_edge(
                    f"fk{edge_counter}", fk.edge_label(), src, dst
                )
    return graph


def rule_to_sql(rule: ConsistencyRule) -> str | None:
    """Render a mined rule as SQL constraint DDL, where expressible.

    Returns None for rule kinds with no direct SQL counterpart (e.g.
    multi-hop patterns).
    """
    if rule.kind is RuleKind.PROPERTY_EXISTS and rule.label:
        clauses = ", ".join(
            f"ALTER COLUMN {key} SET NOT NULL" for key in rule.properties
        )
        return f"ALTER TABLE {rule.label} {clauses};"
    if rule.kind is RuleKind.UNIQUENESS and rule.label:
        key = rule.properties[0]
        return (
            f"ALTER TABLE {rule.label} ADD CONSTRAINT "
            f"uq_{rule.label}_{key} UNIQUE ({key});"
        )
    if rule.kind is RuleKind.VALUE_DOMAIN and rule.label:
        key = rule.properties[0]
        values = ", ".join(_sql_literal(v) for v in rule.allowed_values)
        return (
            f"ALTER TABLE {rule.label} ADD CONSTRAINT "
            f"ck_{rule.label}_{key} CHECK ({key} IN ({values}));"
        )
    if rule.kind is RuleKind.VALUE_FORMAT and rule.label:
        key = rule.properties[0]
        return (
            f"ALTER TABLE {rule.label} ADD CONSTRAINT "
            f"ck_{rule.label}_{key}_format CHECK "
            f"({key} ~ '{rule.pattern_regex}');"
        )
    if rule.kind is RuleKind.MANDATORY_EDGE and rule.label:
        # participation constraints need triggers/assertions in SQL;
        # emit the standard FK NOT NULL reading when the edge came from
        # a foreign key
        edge = rule.edge_label or ""
        if edge.startswith("REFS_"):
            target = edge[len("REFS_"):].title()
            return (
                f"-- every {rule.label} row must reference {target}: "
                f"declare the FK column NOT NULL"
            )
        return None
    return None


def _sql_literal(value: object) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)
