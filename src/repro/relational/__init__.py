"""Relational-data bridge: tables ↔ property graphs ↔ SQL constraints."""

from repro.relational.convert import database_to_graph, rule_to_sql
from repro.relational.model import (
    ForeignKey,
    RelationalDatabase,
    Table,
)

__all__ = [
    "ForeignKey",
    "RelationalDatabase",
    "Table",
    "database_to_graph",
    "rule_to_sql",
]
