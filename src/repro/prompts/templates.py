"""Prompt templates (Figure 3).

Two rule-generation prompts — *zero-shot* and *few-shot* — plus the
Cypher-generation prompt used in the pipeline's second step.  Section
markers (``### Graph data:`` …) give the simulated LLM the same structure
a real chat prompt would have and let :mod:`repro.llm.prompt_io` recover
the encoded graph text from inside the prompt.
"""

from __future__ import annotations

GRAPH_SECTION = "### Graph data:"
EXAMPLES_SECTION = "### Examples of consistency rules:"
TASK_SECTION = "### Task:"
RULE_SECTION = "### Rule:"
SCHEMA_SECTION = "### Property graph information:"
FEEDBACK_SECTION = "### Feedback on the previous attempt:"

#: marker sentence distinguishing the rule-revision task from Cypher
#: generation (both carry a rule section; only one asks for a new rule)
CORRECTION_TASK = "Revise the rule"

_RULES_TASK = (
    "Generate consistency rules for this property graph, in terms of "
    "graph functional dependency and graph entity dependency rules. "
    "Focus on constraints that should always hold: required properties, "
    "key/uniqueness constraints, label and relationship structure, value "
    "domains and temporal ordering. State each rule as exactly one "
    "sentence on its own line."
)

ZERO_SHOT_TEMPLATE = f"""You are an expert in property graph data quality.
Below is a property graph encoded as text.

{GRAPH_SECTION}
{{graph}}

{TASK_SECTION}
{_RULES_TASK}
"""

FEW_SHOT_TEMPLATE = f"""You are an expert in property graph data quality.
Below is a property graph encoded as text.

{GRAPH_SECTION}
{{graph}}

{EXAMPLES_SECTION}
{{examples}}

{TASK_SECTION}
{_RULES_TASK}
Follow the style of the examples above.
"""

CYPHER_TEMPLATE = f"""You are an expert in the Cypher query language.

{RULE_SECTION}
{{rule}}

{SCHEMA_SECTION}
{{schema}}

{TASK_SECTION}
Write the Cypher query matching the rule in natural language. The query
should count the elements that satisfy the rule and return the count as
'support'. Return only the query.
"""


def zero_shot_prompt(graph_text: str) -> str:
    """Zero-shot rule-generation prompt over ``graph_text``."""
    return ZERO_SHOT_TEMPLATE.format(graph=graph_text)


def few_shot_prompt(graph_text: str, examples: str) -> str:
    """Few-shot rule-generation prompt with example rules included."""
    return FEW_SHOT_TEMPLATE.format(graph=graph_text, examples=examples)


CORRECTION_TEMPLATE = f"""You are an expert in property graph data quality.
A consistency rule was mined, but checking it failed; the analyzer
findings are below.

{RULE_SECTION}
{{rule}}

{SCHEMA_SECTION}
{{schema}}

{FEEDBACK_SECTION}
{{feedback}}

{TASK_SECTION}
{CORRECTION_TASK} so it avoids every problem in the feedback while
staying as close as possible to the original intent. State the revised
rule as exactly one sentence on its own line.
"""


def cypher_prompt(
    rule_text: str, schema_summary: str, feedback: str | None = None
) -> str:
    """Second-step prompt: translate one NL rule into Cypher.

    ``feedback`` (analyzer findings from a failed earlier attempt) is
    appended as its own section — the refine loop's regeneration hint.
    """
    prompt = CYPHER_TEMPLATE.format(rule=rule_text, schema=schema_summary)
    if feedback:
        prompt += f"\n{FEEDBACK_SECTION}\n{feedback}\n"
    return prompt


def correction_prompt(
    rule_text: str, schema_summary: str, feedback: str
) -> str:
    """Rule-revision prompt: fix the rule the feedback complains about."""
    return CORRECTION_TEMPLATE.format(
        rule=rule_text, schema=schema_summary, feedback=feedback,
    )
