"""Few-shot rule examples (Figure 3b).

The paper's few-shot prompt supplies generic example consistency rules so
the LLM sees the *form* expected of it.  Examples are domain-neutral (a
generic library graph) so they never leak dataset-specific vocabulary —
the same hygiene the authors needed.

Each example is tagged with its rule kind: the simulated LLM uses the
kinds (not the content) to bias its proposal mix, reproducing the paper's
observation that few-shot prompting raises confidence without changing
the *type* of rules generated (§4.5).
"""

from __future__ import annotations

from repro.rules.model import RuleKind

#: (rule kind, example sentence) pairs shown in the few-shot prompt.
FEW_SHOT_EXAMPLES: tuple[tuple[RuleKind, str], ...] = (
    (
        RuleKind.PROPERTY_EXISTS,
        "Each Book node should have a title and isbn property.",
    ),
    (
        RuleKind.UNIQUENESS,
        "Each Book node should have a unique isbn property.",
    ),
    (
        RuleKind.ENDPOINT,
        "Every WROTE relationship should connect an Author node to a "
        "Book node.",
    ),
    (
        RuleKind.VALUE_DOMAIN,
        "The format property of Book nodes should only be 'hardcover' "
        "or 'paperback'.",
    ),
    (
        RuleKind.MANDATORY_EDGE,
        "Every Book node must have an incoming WROTE relationship from "
        "an Author node.",
    ),
    (
        RuleKind.TEMPORAL_ORDER,
        "For every CITES relationship, the Paper node's published must "
        "be later than the Paper node's published.",
    ),
)


def examples_text() -> str:
    """The example block inserted into the few-shot prompt."""
    return "\n".join(sentence for _kind, sentence in FEW_SHOT_EXAMPLES)


def example_kinds() -> tuple[RuleKind, ...]:
    """Rule kinds represented in the examples (used to bias proposals)."""
    return tuple(kind for kind, _sentence in FEW_SHOT_EXAMPLES)
