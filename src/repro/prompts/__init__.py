"""Prompt templates and few-shot examples."""

from repro.prompts.examples import (
    FEW_SHOT_EXAMPLES,
    example_kinds,
    examples_text,
)
from repro.prompts.templates import (
    CYPHER_TEMPLATE,
    EXAMPLES_SECTION,
    FEW_SHOT_TEMPLATE,
    GRAPH_SECTION,
    RULE_SECTION,
    SCHEMA_SECTION,
    TASK_SECTION,
    ZERO_SHOT_TEMPLATE,
    cypher_prompt,
    few_shot_prompt,
    zero_shot_prompt,
)

__all__ = [
    "CYPHER_TEMPLATE",
    "EXAMPLES_SECTION",
    "FEW_SHOT_EXAMPLES",
    "FEW_SHOT_TEMPLATE",
    "GRAPH_SECTION",
    "RULE_SECTION",
    "SCHEMA_SECTION",
    "TASK_SECTION",
    "ZERO_SHOT_TEMPLATE",
    "cypher_prompt",
    "example_kinds",
    "examples_text",
    "few_shot_prompt",
    "zero_shot_prompt",
]
