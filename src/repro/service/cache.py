"""Content-addressed on-disk cache of mining results.

Entries are keyed by the job's content address (see
:func:`repro.service.jobs.cache_key`): graph fingerprint + code
fingerprint + full pipeline config.  A repeated request — even from a
fresh process — is a cache hit; any change to the graph, the pipeline
code or a config knob produces a different address and therefore a
guaranteed miss.  Payloads are the JSON archive format of
:mod:`repro.mining.persistence`, so cached runs survive across versions
exactly as long as the archive format does, and a newer-format entry is
rejected loudly rather than mis-read.

Writes are atomic (tmp file + rename) so a crashed worker can never
leave a half-written entry that poisons later runs; unreadable or
corrupt entries degrade to a miss.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro import obs
from repro.mining.persistence import (
    FORMAT_VERSION,
    UnsupportedFormatError,
    run_from_dict,
    run_to_dict,
)
from repro.mining.result import MiningRun


@dataclass
class CacheStats:
    """Hit/miss/store accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Sharded ``<digest[:2]>/<digest>.json`` store of MiningRun records."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[MiningRun]:
        """Fetch a cached run, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("key") != key:
                raise ValueError("cache entry key mismatch")
            run = run_from_dict(payload["run"])
        except FileNotFoundError:
            self._miss(key)
            return None
        except UnsupportedFormatError:
            # a newer library wrote this entry; leave it for that
            # library and treat it as a miss here
            self._miss(key)
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # corrupt entry: drop it so it cannot poison later lookups
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.stats.evictions += 1
            self._miss(key)
            return None
        with self._lock:
            self.stats.hits += 1
        obs.inc("service.cache.hits")
        return run

    def put(
        self,
        key: str,
        run: MiningRun,
        meta: Optional[dict[str, object]] = None,
    ) -> Path:
        """Store a run atomically under its content address."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": FORMAT_VERSION,
            "key": key,
            "meta": dict(meta or {}),
            "run": run_to_dict(run),
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, path)
        with self._lock:
            self.stats.stores += 1
        obs.inc("service.cache.stores")
        return path

    def _miss(self, key: str) -> None:
        with self._lock:
            self.stats.misses += 1
        obs.inc("service.cache.misses")

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Every key currently stored on disk."""
        return sorted(
            entry.stem
            for shard in self.cache_dir.iterdir() if shard.is_dir()
            for entry in shard.glob("*.json")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()
