"""Content-addressed on-disk cache of mining results.

Entries are keyed by the job's content address (see
:func:`repro.service.jobs.cache_key`): graph fingerprint + code
fingerprint + full pipeline config.  A repeated request — even from a
fresh process — is a cache hit; any change to the graph, the pipeline
code or a config knob produces a different address and therefore a
guaranteed miss.  Payloads are the JSON archive format of
:mod:`repro.mining.persistence`, so cached runs survive across versions
exactly as long as the archive format does, and a newer-format entry is
rejected loudly rather than mis-read.

The cache is shared by *processes*, not just threads: the gateway's
worker fleet points every worker at one directory.  Hardening for that:

* writes go to a **uniquely named** temp file (pid + thread id) in the
  target directory and land via ``os.replace``, so two workers storing
  the same key concurrently can never interleave bytes — the last
  complete write wins atomically;
* a **per-key file lock** (``fcntl.flock`` where available, always
  backed by striped in-process locks) serialises same-key writers and
  the corrupt-entry eviction path across processes;
* ``get`` is **corruption-tolerant**: truncated, non-JSON, non-object
  or wrong-key payloads degrade to a miss (and evict the entry) instead
  of raising into the serving path.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

try:  # POSIX only; on other platforms the striped locks still apply
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro import obs
from repro.mining.persistence import (
    FORMAT_VERSION,
    UnsupportedFormatError,
    run_from_dict,
    run_to_dict,
)
from repro.mining.result import MiningRun

_LOCK_STRIPES = 16


@dataclass
class CacheStats:
    """Hit/miss/store accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class ResultCache:
    """Sharded ``<digest[:2]>/<digest>.json`` store of MiningRun records."""

    def __init__(
        self,
        cache_dir: str | Path,
        lock_files: bool = True,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.lock_files = lock_files and fcntl is not None
        #: LRU bound on stored entries (None = unbounded, the historical
        #: behaviour); watch-mode churn mints a fresh graph fingerprint
        #: per mutation batch, so an unbounded cache grows forever
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(_LOCK_STRIPES)]

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def lock_path_for(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.lock"

    @contextmanager
    def _key_lock(self, key: str) -> Iterator[None]:
        """Serialise same-key mutators across threads *and* processes.

        The striped in-process lock always applies (it also keeps two
        threads of one process from contending on the flock, which is
        per-process state on POSIX); the advisory file lock extends the
        exclusion to sibling worker processes when the platform has it.
        """
        stripe = self._stripes[zlib.crc32(key.encode()) % _LOCK_STRIPES]
        with stripe:
            if not self.lock_files:
                yield
                return
            lock_path = self.lock_path_for(key)
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            try:
                handle = open(lock_path, "a+")
            except OSError:
                yield  # degraded: in-process exclusion only
                return
            try:
                fcntl.flock(handle, fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(handle, fcntl.LOCK_UN)
            finally:
                handle.close()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[MiningRun]:
        """Fetch a cached run, or None on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            if payload.get("key") != key:
                raise ValueError("cache entry key mismatch")
            run = run_from_dict(payload["run"])
        except FileNotFoundError:
            self._miss(key)
            return None
        except UnsupportedFormatError:
            # a newer library wrote this entry; leave it for that
            # library and treat it as a miss here
            self._miss(key)
            return None
        except (ValueError, KeyError, TypeError, AttributeError, OSError):
            # corrupt/truncated entry: evict it under the key lock so a
            # concurrent writer's fresh replacement is never deleted
            self._evict_corrupt(key, path)
            self._miss(key)
            return None
        if self.max_entries is not None:
            try:  # recency signal for the LRU bound; best-effort
                os.utime(path)
            except OSError:
                pass
        with self._lock:
            self.stats.hits += 1
        obs.inc("service.cache.hits")
        return run

    def _evict_corrupt(self, key: str, path: Path) -> None:
        with self._key_lock(key):
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self.stats.evictions += 1
        obs.inc("service.cache.evictions")

    def put(
        self,
        key: str,
        run: MiningRun,
        meta: Optional[dict[str, object]] = None,
    ) -> Path:
        """Store a run atomically under its content address."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format_version": FORMAT_VERSION,
            "key": key,
            "meta": dict(meta or {}),
            "run": run_to_dict(run),
        }
        text = json.dumps(payload, indent=1)
        tmp = path.parent / (
            f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        with self._key_lock(key):
            try:
                tmp.write_text(text)
                os.replace(tmp, path)
            finally:
                try:
                    tmp.unlink()
                except OSError:
                    pass
        with self._lock:
            self.stats.stores += 1
        obs.inc("service.cache.stores")
        self._evict_lru(protect=key)
        return path

    def _evict_lru(self, protect: str) -> None:
        """Drop least-recently-used entries beyond ``max_entries``.

        The just-written ``protect`` key is never a victim (its mtime
        may tie with a concurrent writer's).  Eviction races between
        sibling processes are benign: a double unlink is a no-op, and
        losing an entry only costs a future recompute.
        """
        if self.max_entries is None:
            return
        entries: list[tuple[float, str, Path]] = []
        for shard in self.cache_dir.iterdir():
            if not shard.is_dir() or shard.name.startswith("."):
                continue
            for entry in shard.glob("*.json"):
                if entry.name.startswith(".") or entry.stem == protect:
                    continue
                try:
                    entries.append((entry.stat().st_mtime, entry.stem, entry))
                except OSError:
                    continue  # concurrently evicted by a sibling
        excess = (len(entries) + 1) - self.max_entries
        if excess <= 0:
            return
        entries.sort()  # oldest mtime first; key breaks ties stably
        for _mtime, victim_key, victim in entries[:excess]:
            with self._key_lock(victim_key):
                try:
                    victim.unlink()
                except OSError:
                    continue
            with self._lock:
                self.stats.evictions += 1
            obs.inc("service.cache.evictions", reason="lru")

    def _miss(self, key: str) -> None:
        with self._lock:
            self.stats.misses += 1
        obs.inc("service.cache.misses")

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Every key currently stored on disk."""
        return sorted(
            entry.stem
            for shard in self.cache_dir.iterdir()
            if shard.is_dir() and not shard.name.startswith(".")
            for entry in shard.glob("*.json")
            if not entry.name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()
