"""Client facade: the in-process mining job service.

:class:`MiningService` turns the experiment grid into schedulable work::

    with MiningService(cache_dir="~/.repro-cache", workers=4) as service:
        job_id = service.submit("wwc2019", "llama3", "rag", "zero_shot")
        run = service.result(job_id)        # blocks until DONE
        print(service.stats()["cache"])     # hit rate, stores, ...

Submission is idempotent: a job's id is the content address of its
(graph, code, config) triple, so submitting the same cell twice yields
the same id and at most one mining run.  Results persist in the on-disk
:class:`~repro.service.cache.ResultCache`, so a fresh process re-serving
an already-mined cell answers from cache without touching a pipeline.
Transient LLM failures are retried with exponential backoff per the
:class:`~repro.service.workers.RetryPolicy`; everything is instrumented
through :mod:`repro.obs` (queue depth, cache hit/miss, retries, job
latency histograms).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Optional

from repro import obs
from repro.datasets.base import Dataset
from repro.datasets.registry import DATASET_NAMES, load
from repro.llm.profiles import MODEL_NAMES
from repro.mining.pipeline import PROMPT_MODES, BasePipeline, PipelineContext
from repro.mining.ragpipe import RAGPipeline
from repro.mining.result import MiningRun
from repro.mining.runner import METHODS
from repro.mining.sliding import SlidingWindowPipeline
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobSpec, JobState, cache_key, graph_fingerprint
from repro.service.queue import JobQueue, QueueFull
from repro.service.workers import RetryPolicy, WorkerPool, call_with_retry

__all__ = [
    "JobFailedError",
    "MiningService",
    "ServiceDraining",
    "UnknownJobError",
]


class UnknownJobError(KeyError):
    """No job with that id was ever submitted to this service."""


class ServiceDraining(RuntimeError):
    """The service is shutting down and refuses new submissions."""


class JobFailedError(RuntimeError):
    """The awaited job finished FAILED or CANCELLED."""

    def __init__(self, job: Job) -> None:
        super().__init__(
            f"job {job.job_id[:12]} ({'/'.join(job.spec.cell())}) "
            f"finished {job.state.value}"
            + (f": {job.error}" if job.error else "")
        )
        self.job = job


class MiningService:
    """Scheduler + worker pool + content-addressed result cache."""

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        workers: int = 2,
        queue_depth: int = 64,
        retry_policy: RetryPolicy | None = None,
        loader: Callable[[str], Dataset] | None = None,
        base_seed: int = 0,
        window_size: int = 8000,
        overlap: int = 500,
        rag_chunk_tokens: int = 512,
        rag_top_k: int = 16,
        llm_middleware: Callable[[object], object] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.retry_policy = retry_policy or RetryPolicy()
        self.loader = loader or load
        self.base_seed = base_seed
        self.window_size = window_size
        self.overlap = overlap
        self.rag_chunk_tokens = rag_chunk_tokens
        self.rag_top_k = rag_top_k
        self.llm_middleware = llm_middleware
        self._sleep = sleep
        self._clock = clock
        self.cache = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        self.queue = JobQueue(maxsize=queue_depth)
        self.pool = WorkerPool(self.queue, self._execute, workers=workers)
        self._jobs: dict[str, Job] = {}
        self._contexts: dict[str, PipelineContext] = {}
        self._fingerprints: dict[str, str] = {}
        self._pipelines: dict[tuple, BasePipeline] = {}
        self._lock = threading.Lock()         # job table + state moves
        self._build_lock = threading.Lock()   # context/pipeline builds
        self._started = False
        self._draining = False
        self._running = 0                     # jobs currently executing

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MiningService":
        if not self._started:
            self._started = True
            self.pool.start()
        return self

    @property
    def draining(self) -> bool:
        """True once shutdown started; submissions are refused."""
        with self._lock:
            return self._draining

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> bool:
        """Graceful drain: refuse new jobs, let in-flight work finish.

        New :meth:`submit` calls raise :class:`ServiceDraining` from the
        moment this is called; already-queued jobs are still executed.
        With ``wait`` the call blocks until the workers exit or the
        ``timeout`` deadline passes.  Returns True when every worker
        exited within the deadline (an unbounded or un-waited shutdown
        reports whether workers are already gone).
        """
        with self._lock:
            self._draining = True
        self.queue.close()
        if wait and self._started:
            self.pool.join(timeout=timeout)
        return self.pool.alive == 0

    def drain(self, deadline_seconds: float | None = None) -> bool:
        """SIGTERM-style drain: alias of a waited :meth:`shutdown`."""
        return self.shutdown(wait=True, timeout=deadline_seconds)

    def __enter__(self) -> "MiningService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # ------------------------------------------------------------------
    # dataset / pipeline plumbing
    # ------------------------------------------------------------------
    def _dataset(self, name: str) -> Dataset:
        return self.loader(name.lower())

    def _graph_fingerprint(self, dataset: str) -> str:
        key = dataset.lower()
        with self._build_lock:
            if key not in self._fingerprints:
                self._fingerprints[key] = graph_fingerprint(
                    self._dataset(key).graph
                )
            return self._fingerprints[key]

    def _context(self, dataset: str) -> PipelineContext:
        key = dataset.lower()
        if key not in self._contexts:
            self._contexts[key] = PipelineContext.build(self._dataset(key))
        return self._contexts[key]

    def _pipeline(self, spec: JobSpec) -> BasePipeline:
        key = (
            spec.dataset.lower(), spec.method, spec.base_seed,
            spec.window_size, spec.overlap,
            spec.rag_chunk_tokens, spec.rag_top_k,
        )
        with self._build_lock:
            pipeline = self._pipelines.get(key)
            if pipeline is None:
                context = self._context(spec.dataset)
                if spec.method == "sliding_window":
                    pipeline = SlidingWindowPipeline(
                        context, window_size=spec.window_size,
                        overlap=spec.overlap, base_seed=spec.base_seed,
                    )
                else:
                    pipeline = RAGPipeline(
                        context, chunk_tokens=spec.rag_chunk_tokens,
                        top_k=spec.rag_top_k, base_seed=spec.base_seed,
                    )
                pipeline.llm_middleware = self.llm_middleware
                # pre-build windows / vector index under the lock so
                # concurrent mine() calls only ever read shared state
                pipeline.warm()
                self._pipelines[key] = pipeline
            return pipeline

    def _spec(
        self, dataset: str, model: str, method: str, prompt_mode: str,
        **overrides: object,
    ) -> JobSpec:
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; one of {METHODS}")
        if prompt_mode not in PROMPT_MODES:
            raise ValueError(
                f"unknown prompt mode {prompt_mode!r}; one of {PROMPT_MODES}"
            )
        defaults = {
            "base_seed": self.base_seed,
            "window_size": self.window_size,
            "overlap": self.overlap,
            "rag_chunk_tokens": self.rag_chunk_tokens,
            "rag_top_k": self.rag_top_k,
        }
        unknown = set(overrides) - set(defaults)
        if unknown:
            raise TypeError(f"unknown spec overrides: {sorted(unknown)}")
        defaults.update(overrides)
        return JobSpec(
            dataset=dataset.lower(), model=model.lower(),
            method=method, prompt_mode=prompt_mode, **defaults,
        )

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(
        self,
        dataset: str,
        model: str,
        method: str,
        prompt_mode: str,
        priority: int = 0,
        block: bool = True,
        timeout: Optional[float] = None,
        trace_tags: Optional[dict] = None,
        **overrides: object,
    ) -> str:
        """Submit one grid cell; returns its content-addressed job id.

        Re-submitting an identical cell returns the existing job's id
        without queueing new work; a cell already present in the on-disk
        cache completes immediately as a DONE cache-hit job.  When the
        queue is at capacity the call blocks (``block``/``timeout``
        control backpressure behaviour; :class:`QueueFull` on refusal).
        ``trace_tags`` are stamped onto the job's ``service.job`` span.
        """
        if self.draining:
            raise ServiceDraining(
                "service is draining; new submissions are refused"
            )
        self.start()
        spec = self._spec(dataset, model, method, prompt_mode, **overrides)
        job_id = cache_key(spec, self._graph_fingerprint(spec.dataset))
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return job_id
        job = Job(
            spec=spec, job_id=job_id, priority=priority,
            submitted_at=self._clock(),
            # snapshot the caller's tracing position: the worker thread
            # attaches it so the job's spans join the submitter's tree
            trace_ctx=obs.capture(),
            trace_tags=dict(trace_tags) if trace_tags else {},
        )
        cached = self.cache.get(job_id) if self.cache is not None else None
        if cached is not None:
            job.result = cached
            job.cache_hit = True
            job.state = JobState.DONE
            job.finished_at = job.submitted_at
            job.done.set()
            with self._lock:
                self._jobs[job_id] = job
            obs.inc("service.jobs_submitted")
            obs.inc("service.jobs_completed", cache_hit=True)
            return job_id
        with self._lock:
            self._jobs[job_id] = job
        try:
            self.queue.put(job, priority=priority, block=block, timeout=timeout)
        except QueueFull:
            with self._lock:
                self._jobs.pop(job_id, None)
            raise
        obs.inc("service.jobs_submitted")
        return job_id

    def submit_grid(
        self,
        datasets: tuple[str, ...] | list[str] | None = None,
        models: tuple[str, ...] | list[str] | None = None,
        methods: tuple[str, ...] | list[str] | None = None,
        prompt_modes: tuple[str, ...] | list[str] | None = None,
        priority: int = 0,
    ) -> list[str]:
        """Submit a grid slice; returns job ids in submission order."""
        ids = []
        for dataset in datasets or DATASET_NAMES:
            for prompt_mode in prompt_modes or PROMPT_MODES:
                for method in methods or METHODS:
                    for model in models or MODEL_NAMES:
                        ids.append(self.submit(
                            dataset, model, method, prompt_mode,
                            priority=priority,
                        ))
        return ids

    def _job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def status(self, job_id: str) -> dict[str, object]:
        """A plain-dict snapshot of one job's lifecycle."""
        return self._job(job_id).snapshot()

    def result(self, job_id: str, timeout: Optional[float] = None) -> MiningRun:
        """Block until the job finishes; return its MiningRun."""
        job = self._job(job_id)
        if not job.done.wait(timeout=timeout):
            raise TimeoutError(
                f"job {job_id[:12]} still {job.state.value} after {timeout}s"
            )
        if job.state is not JobState.DONE:
            raise JobFailedError(job)
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; running jobs cannot be recalled."""
        job = self._job(job_id)
        with self._lock:
            if job.state is not JobState.QUEUED:
                return False
            job.state = JobState.CANCELLED
            job.finished_at = self._clock()
        job.done.set()
        obs.inc("service.jobs_cancelled")
        return True

    def stats(self) -> dict[str, object]:
        """Service-level accounting for dashboards and the CLI."""
        with self._lock:
            jobs = list(self._jobs.values())
        by_state: dict[str, int] = {state.value: 0 for state in JobState}
        for job in jobs:
            by_state[job.state.value] += 1
        cache_stats = self.cache.stats if self.cache is not None else None
        return {
            "jobs": by_state,
            "submitted": len(jobs),
            "cache_hits": sum(1 for job in jobs if job.cache_hit),
            "retries": sum(job.retries for job in jobs),
            "attempts": sum(job.attempts for job in jobs),
            "queue_depth": self.queue.depth,
            "queue_max_depth": self.queue.max_depth_seen,
            "workers": self.pool.alive,
            "cache": (
                {
                    "hits": cache_stats.hits,
                    "misses": cache_stats.misses,
                    "stores": cache_stats.stores,
                    "evictions": cache_stats.evictions,
                    "hit_rate": cache_stats.hit_rate,
                }
                if cache_stats is not None else None
            ),
        }

    def telemetry(self) -> dict[str, object]:
        """The live ``/jobs`` payload: queue depth, per-state job
        counts and worker utilization (see :mod:`repro.obs.server`)."""
        with self._lock:
            jobs = list(self._jobs.values())
            running = self._running
        by_state: dict[str, int] = {state.value: 0 for state in JobState}
        for job in jobs:
            by_state[job.state.value] += 1
        workers = self.pool.worker_count
        return {
            "queue": {
                "depth": self.queue.depth,
                "max_depth_seen": self.queue.max_depth_seen,
                "capacity": self.queue.maxsize,
                "closed": self.queue.closed,
            },
            "jobs": by_state,
            "submitted": len(jobs),
            "workers": {
                "total": workers,
                "alive": self.pool.alive,
                "busy": running,
                "utilization": running / workers if workers else 0.0,
            },
        }

    def mine(
        self, dataset: str, model: str, method: str, prompt_mode: str,
        timeout: Optional[float] = None, **overrides: object,
    ) -> MiningRun:
        """Submit-and-wait convenience for synchronous callers."""
        job_id = self.submit(dataset, model, method, prompt_mode, **overrides)
        return self.result(job_id, timeout=timeout)

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------
    def _execute(self, job: Job) -> None:
        with self._lock:
            if job.state is not JobState.QUEUED:
                return  # cancelled while waiting in the heap
            job.state = JobState.RUNNING
            job.started_at = self._clock()
            self._running += 1
        context = job.trace_ctx if job.trace_ctx is not None else (
            obs.EMPTY_CONTEXT
        )
        with context.attach():
            self._execute_attached(job)

    def _execute_attached(self, job: Job) -> None:
        spec = job.spec
        obs.observe("service.job_wait_seconds", job.wait_seconds)

        def attempt() -> MiningRun:
            job.attempts += 1
            with obs.span(
                "service.attempt",
                job_id=job.job_id[:12], attempt=job.attempts,
            ):
                pipeline = self._pipeline(spec)
                return pipeline.mine(spec.model, spec.prompt_mode)

        def on_retry(attempts: int, pause: float, error: BaseException) -> None:
            job.retries += 1
            obs.inc("service.retries")
            obs.observe("service.retry_backoff_seconds", pause)

        try:
            with obs.span(
                "service.job",
                job_id=job.job_id[:12],
                dataset=spec.dataset, model=spec.model,
                method=spec.method, prompt_mode=spec.prompt_mode,
            ) as sp:
                for tag, value in job.trace_tags.items():
                    sp.set_attribute(tag, value)
                run = call_with_retry(
                    attempt, self.retry_policy,
                    sleep=self._sleep, clock=self._clock,
                    on_retry=on_retry,
                )
                sp.set_attribute("attempts", job.attempts)
                sp.set_attribute("rules", run.rule_count)
            if self.cache is not None:
                self.cache.put(
                    job.job_id, run,
                    meta={"cell": list(spec.cell()),
                          "attempts": job.attempts},
                )
            job.result = run
            job.state = JobState.DONE
            obs.inc("service.jobs_completed", cache_hit=False)
        except Exception as error:
            job.error = f"{type(error).__name__}: {error}"
            job.state = JobState.FAILED
            obs.inc("service.jobs_failed", error=type(error).__name__)
        finally:
            job.finished_at = self._clock()
            with self._lock:
                self._running -= 1
            obs.observe("service.job_seconds", job.run_seconds)
            job.done.set()
